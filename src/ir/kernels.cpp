#include <cstddef>
#include "ir/kernels.hpp"

#include "support/str.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace cgra {
namespace {

std::vector<std::int64_t> RandomStream(Rng& rng, int n, int lo = -100, int hi = 100) {
  std::vector<std::int64_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.NextInt(lo, hi);
  return v;
}

ExecInput MakeStreams(std::uint64_t seed, int iterations, int n_streams,
                      int lo = -100, int hi = 100) {
  Rng rng(seed);
  ExecInput in;
  in.iterations = iterations;
  for (int s = 0; s < n_streams; ++s) {
    in.streams.push_back(RandomStream(rng, iterations, lo, hi));
  }
  return in;
}

}  // namespace

Kernel MakeDotProduct(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "dot_product";
  k.description = "acc += a[i]*b[i]; the paper's Fig. 3 running example";
  const OpId a = k.dfg.AddInput(0, "a");
  const OpId b = k.dfg.AddInput(1, "b");
  const OpId mul = k.dfg.AddBinary(Opcode::kMul, a, b, "mul");
  // acc(i) = mul(i) + acc(i-1): the carried add of Fig. 3.
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "acc";
  add.operands = {Operand{mul, 0, 0}, Operand{kNoOp, 1, 0}};
  const OpId acc = k.dfg.AddOp([&] {
    Op tmp = add;
    return tmp;
  }());
  k.dfg.mutable_op(acc).operands[1].producer = acc;  // self loop, distance 1
  k.dfg.AddOutput(acc, 0, "out");
  k.input = MakeStreams(seed, iterations, 2);
  return k;
}

Kernel MakeVecAdd(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "vecadd";
  k.description = "c[i] = a[i] + b[i]";
  const OpId a = k.dfg.AddInput(0, "a");
  const OpId b = k.dfg.AddInput(1, "b");
  const OpId sum = k.dfg.AddBinary(Opcode::kAdd, a, b, "sum");
  k.dfg.AddOutput(sum, 0, "c");
  k.input = MakeStreams(seed, iterations, 2);
  return k;
}

Kernel MakeSaxpy(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "saxpy";
  k.description = "y[i] = 7*x[i] + y0[i]";
  const OpId x = k.dfg.AddInput(0, "x");
  const OpId y0 = k.dfg.AddInput(1, "y0");
  const OpId a = k.dfg.AddConst(7, "a");
  const OpId ax = k.dfg.AddBinary(Opcode::kMul, a, x, "ax");
  const OpId y = k.dfg.AddBinary(Opcode::kAdd, ax, y0, "y");
  k.dfg.AddOutput(y, 0, "out");
  k.input = MakeStreams(seed, iterations, 2);
  return k;
}

Kernel MakeFir4(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "fir4";
  k.description = "y[i] = 5x[i] + 3x[i-1] - 2x[i-2] + x[i-3]";
  const OpId x = k.dfg.AddInput(0, "x");
  const OpId c0 = k.dfg.AddConst(5, "c0");
  const OpId c1 = k.dfg.AddConst(3, "c1");
  const OpId c2 = k.dfg.AddConst(-2, "c2");
  const OpId t0 = k.dfg.AddBinary(Opcode::kMul, c0, x, "t0");
  const OpId t1 = k.dfg.AddBinary(Opcode::kMul, Operand{c1, 0, 0},
                                  Operand{x, 1, 0}, "t1");
  const OpId t2 = k.dfg.AddBinary(Opcode::kMul, Operand{c2, 0, 0},
                                  Operand{x, 2, 0}, "t2");
  const OpId s0 = k.dfg.AddBinary(Opcode::kAdd, t0, t1, "s0");
  const OpId s1 = k.dfg.AddBinary(Opcode::kAdd, Operand{t2, 0, 0},
                                  Operand{x, 3, 0}, "s1");
  const OpId y = k.dfg.AddBinary(Opcode::kAdd, s0, s1, "y");
  k.dfg.AddOutput(y, 0, "out");
  k.input = MakeStreams(seed, iterations, 1);
  return k;
}

Kernel MakeIir1(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "iir1";
  k.description = "y[i] = 3*x[i] + 2*y[i-1] (tight recurrence)";
  const OpId x = k.dfg.AddInput(0, "x");
  const OpId c3 = k.dfg.AddConst(3, "c3");
  const OpId c2 = k.dfg.AddConst(2, "c2");
  const OpId t = k.dfg.AddBinary(Opcode::kMul, c3, x, "t");
  Op fb;
  fb.opcode = Opcode::kMul;
  fb.name = "fb";
  fb.operands = {Operand{c2, 0, 0}, Operand{kNoOp, 1, 0}};
  const OpId fbm = k.dfg.AddOp(std::move(fb));
  const OpId y = k.dfg.AddBinary(Opcode::kAdd, t, fbm, "y");
  k.dfg.mutable_op(fbm).operands[1].producer = y;  // y[i-1]
  k.dfg.AddOutput(y, 0, "out");
  k.input = MakeStreams(seed, iterations, 1, -20, 20);
  return k;
}

Kernel MakeMovingAvg3(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "mavg3";
  k.description = "y[i] = (x[i] + x[i-1] + x[i-2]) / 3";
  const OpId x = k.dfg.AddInput(0, "x");
  const OpId c3 = k.dfg.AddConst(3, "c3");
  const OpId s0 = k.dfg.AddBinary(Opcode::kAdd, Operand{x, 0, 0},
                                  Operand{x, 1, 0}, "s0");
  const OpId s1 = k.dfg.AddBinary(Opcode::kAdd, Operand{s0, 0, 0},
                                  Operand{x, 2, 0}, "s1");
  const OpId y = k.dfg.AddBinary(Opcode::kDiv, s1, c3, "y");
  k.dfg.AddOutput(y, 0, "out");
  k.input = MakeStreams(seed, iterations, 1);
  return k;
}

Kernel MakeSobelRow(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "sobel_gx";
  k.description = "Gx of 3x3 Sobel over three row streams";
  const OpId r0 = k.dfg.AddInput(0, "r0");
  const OpId r1 = k.dfg.AddInput(1, "r1");
  const OpId r2 = k.dfg.AddInput(2, "r2");
  const OpId two = k.dfg.AddConst(2, "two");
  // Right column (current), left column (two iterations ago).
  const OpId m1r = k.dfg.AddBinary(Opcode::kMul, two, r1, "m1r");
  const OpId right0 = k.dfg.AddBinary(Opcode::kAdd, r0, m1r, "right0");
  const OpId right = k.dfg.AddBinary(Opcode::kAdd, right0, r2, "right");
  const OpId m1l = k.dfg.AddBinary(Opcode::kMul, Operand{two, 0, 0},
                                   Operand{r1, 2, 0}, "m1l");
  const OpId left0 = k.dfg.AddBinary(Opcode::kAdd, Operand{r0, 2, 0},
                                     Operand{m1l, 0, 0}, "left0");
  const OpId left = k.dfg.AddBinary(Opcode::kAdd, Operand{left0, 0, 0},
                                    Operand{r2, 2, 0}, "left");
  const OpId gx = k.dfg.AddBinary(Opcode::kSub, right, left, "gx");
  k.dfg.AddOutput(gx, 0, "out");
  k.input = MakeStreams(seed, iterations, 3, 0, 255);
  return k;
}

Kernel MakeSad(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "sad";
  k.description = "acc += |a[i] - b[i]| (sum of absolute differences)";
  const OpId a = k.dfg.AddInput(0, "a");
  const OpId b = k.dfg.AddInput(1, "b");
  const OpId d = k.dfg.AddBinary(Opcode::kSub, a, b, "d");
  const OpId ad = k.dfg.AddUnary(Opcode::kAbs, d, "ad");
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "acc";
  add.operands = {Operand{ad, 0, 0}, Operand{kNoOp, 1, 0}};
  const OpId acc = k.dfg.AddOp(std::move(add));
  k.dfg.mutable_op(acc).operands[1].producer = acc;
  k.dfg.AddOutput(acc, 0, "out");
  k.input = MakeStreams(seed, iterations, 2, 0, 255);
  return k;
}

Kernel MakeButterfly(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "butterfly";
  k.description = "FFT/DCT stage: u = x+y, v = (x-y)*w, two outputs";
  const OpId x = k.dfg.AddInput(0, "x");
  const OpId y = k.dfg.AddInput(1, "y");
  const OpId w = k.dfg.AddInput(2, "w");
  const OpId u = k.dfg.AddBinary(Opcode::kAdd, x, y, "u");
  const OpId d = k.dfg.AddBinary(Opcode::kSub, x, y, "d");
  const OpId v = k.dfg.AddBinary(Opcode::kMul, d, w, "v");
  k.dfg.AddOutput(u, 0, "out_u");
  k.dfg.AddOutput(v, 1, "out_v");
  k.input = MakeStreams(seed, iterations, 3, -50, 50);
  return k;
}

Kernel MakeMatVecRow(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "matvec_row";
  k.description = "acc += A[i] * x[i] via memory loads";
  const OpId i = k.dfg.AddIterIdx("i");
  const OpId a = k.dfg.AddLoad(0, i, "A_i");
  const OpId x = k.dfg.AddLoad(1, i, "x_i");
  const OpId m = k.dfg.AddBinary(Opcode::kMul, a, x, "m");
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "acc";
  add.operands = {Operand{m, 0, 0}, Operand{kNoOp, 1, 0}};
  const OpId acc = k.dfg.AddOp(std::move(add));
  k.dfg.mutable_op(acc).operands[1].producer = acc;
  k.dfg.AddOutput(acc, 0, "out");
  Rng rng(seed);
  k.input.iterations = iterations;
  k.input.arrays.push_back(RandomStream(rng, iterations));
  k.input.arrays.push_back(RandomStream(rng, iterations));
  return k;
}

Kernel MakeGemmMac(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "gemm_mac";
  k.description = "C[i] += A[i]*B[i] with load/accumulate/store";
  const OpId i = k.dfg.AddIterIdx("i");
  const OpId a = k.dfg.AddLoad(0, i, "A_i");
  const OpId b = k.dfg.AddLoad(1, i, "B_i");
  const OpId c = k.dfg.AddLoad(2, i, "C_i");
  const OpId m = k.dfg.AddBinary(Opcode::kMul, a, b, "m");
  const OpId s = k.dfg.AddBinary(Opcode::kAdd, c, m, "s");
  const OpId st = k.dfg.AddStore(2, i, s, "store_c");
  (void)st;
  k.dfg.AddOutput(s, 0, "out");
  Rng rng(seed);
  k.input.iterations = iterations;
  k.input.arrays.push_back(RandomStream(rng, iterations));
  k.input.arrays.push_back(RandomStream(rng, iterations));
  k.input.arrays.push_back(RandomStream(rng, iterations));
  return k;
}

Kernel MakeHistogram8(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "histogram8";
  k.description = "h[x&7]++ with a carried memory dependence";
  const OpId x = k.dfg.AddInput(0, "x");
  const OpId mask = k.dfg.AddConst(7, "mask");
  const OpId one = k.dfg.AddConst(1, "one");
  const OpId addr = k.dfg.AddBinary(Opcode::kAnd, x, mask, "addr");
  const OpId h = k.dfg.AddLoad(0, addr, "h");
  const OpId inc = k.dfg.AddBinary(Opcode::kAdd, h, one, "inc");
  const OpId st = k.dfg.AddStore(0, addr, inc, "st");
  // The load must observe the previous iteration's store: carried
  // ordering dependence (a real memory hazard, so II cannot hide it).
  k.dfg.mutable_op(h).order_deps.push_back(Operand{st, 1, 0});
  k.dfg.AddOutput(inc, 0, "out");
  Rng rng(seed);
  k.input.iterations = iterations;
  k.input.streams.push_back(RandomStream(rng, iterations, 0, 255));
  k.input.arrays.push_back(std::vector<std::int64_t>(8, 0));
  return k;
}

Kernel MakeReluScale(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "relu_scale";
  k.description = "y = max(0, x) * w (activation + scale)";
  const OpId x = k.dfg.AddInput(0, "x");
  const OpId w = k.dfg.AddInput(1, "w");
  const OpId zero = k.dfg.AddConst(0, "zero");
  const OpId r = k.dfg.AddBinary(Opcode::kMax, x, zero, "relu");
  const OpId y = k.dfg.AddBinary(Opcode::kMul, r, w, "y");
  k.dfg.AddOutput(y, 0, "out");
  k.input = MakeStreams(seed, iterations, 2);
  return k;
}

Kernel MakeRunningMaxPool(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "maxpool_run";
  k.description = "m = max(x[i], m@1) (running max pooling)";
  const OpId x = k.dfg.AddInput(0, "x");
  Op mx;
  mx.opcode = Opcode::kMax;
  mx.name = "m";
  mx.operands = {Operand{x, 0, 0}, Operand{kNoOp, 1, -1000000}};
  const OpId m = k.dfg.AddOp(std::move(mx));
  k.dfg.mutable_op(m).operands[1].producer = m;
  k.dfg.AddOutput(m, 0, "out");
  k.input = MakeStreams(seed, iterations, 1);
  return k;
}

Kernel MakeMac2(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "mac2";
  k.description = "acc += a[i]*b[i] + c[i]*d[i] (dual MAC reduction)";
  const OpId a = k.dfg.AddInput(0, "a");
  const OpId b = k.dfg.AddInput(1, "b");
  const OpId c = k.dfg.AddInput(2, "c");
  const OpId d = k.dfg.AddInput(3, "d");
  const OpId m0 = k.dfg.AddBinary(Opcode::kMul, a, b, "m0");
  const OpId m1 = k.dfg.AddBinary(Opcode::kMul, c, d, "m1");
  const OpId s = k.dfg.AddBinary(Opcode::kAdd, m0, m1, "s");
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "acc";
  add.operands = {Operand{s, 0, 0}, Operand{kNoOp, 1, 0}};
  const OpId acc = k.dfg.AddOp(std::move(add));
  k.dfg.mutable_op(acc).operands[1].producer = acc;
  k.dfg.AddOutput(acc, 0, "out");
  k.input = MakeStreams(seed, iterations, 4, -30, 30);
  return k;
}

Kernel MakeComplexMul(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "complex_mul";
  k.description = "(a+bi)(c+di): re = ac - bd, im = ad + bc";
  const OpId a = k.dfg.AddInput(0, "a");
  const OpId b = k.dfg.AddInput(1, "b");
  const OpId c = k.dfg.AddInput(2, "c");
  const OpId d = k.dfg.AddInput(3, "d");
  const OpId ac = k.dfg.AddBinary(Opcode::kMul, a, c, "ac");
  const OpId bd = k.dfg.AddBinary(Opcode::kMul, b, d, "bd");
  const OpId ad = k.dfg.AddBinary(Opcode::kMul, a, d, "ad");
  const OpId bc = k.dfg.AddBinary(Opcode::kMul, b, c, "bc");
  const OpId re = k.dfg.AddBinary(Opcode::kSub, ac, bd, "re");
  const OpId im = k.dfg.AddBinary(Opcode::kAdd, ad, bc, "im");
  k.dfg.AddOutput(re, 0, "out_re");
  k.dfg.AddOutput(im, 1, "out_im");
  k.input = MakeStreams(seed, iterations, 4, -30, 30);
  return k;
}

Kernel MakeAlphaBlend(int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = "alpha_blend";
  k.description = "y = (alpha*p + (256-alpha)*q) >> 8";
  const OpId alpha = k.dfg.AddInput(0, "alpha");
  const OpId fg = k.dfg.AddInput(1, "p");
  const OpId bg = k.dfg.AddInput(2, "q");
  const OpId c256 = k.dfg.AddConst(256, "c256");
  const OpId c8 = k.dfg.AddConst(8, "c8");
  const OpId inv = k.dfg.AddBinary(Opcode::kSub, c256, alpha, "inv");
  const OpId t0 = k.dfg.AddBinary(Opcode::kMul, alpha, fg, "t0");
  const OpId t1 = k.dfg.AddBinary(Opcode::kMul, inv, bg, "t1");
  const OpId sum = k.dfg.AddBinary(Opcode::kAdd, t0, t1, "sum");
  const OpId y = k.dfg.AddBinary(Opcode::kShr, sum, c8, "y");
  k.dfg.AddOutput(y, 0, "out");
  Rng rng(seed);
  k.input.iterations = iterations;
  k.input.streams.push_back(RandomStream(rng, iterations, 0, 256));
  k.input.streams.push_back(RandomStream(rng, iterations, 0, 255));
  k.input.streams.push_back(RandomStream(rng, iterations, 0, 255));
  return k;
}

Kernel MakeDct4Stage(int iterations, std::uint64_t seed) {
  // The 4-point DCT-II decomposed into butterflies with small integer
  // twiddles: X0 = (x0+x3)+(x1+x2), X2 = (x0+x3)-(x1+x2),
  //           X1 = 17*(x0-x3) + 7*(x1-x2), X3 = 7*(x0-x3) - 17*(x1-x2)
  Kernel k;
  k.name = "dct4";
  k.description = "4-point DCT stage (butterflies + twiddles)";
  const OpId x0 = k.dfg.AddInput(0, "x0");
  const OpId x1 = k.dfg.AddInput(1, "x1");
  const OpId x2 = k.dfg.AddInput(2, "x2");
  const OpId x3 = k.dfg.AddInput(3, "x3");
  const OpId c17 = k.dfg.AddConst(17, "c17");
  const OpId c7 = k.dfg.AddConst(7, "c7");
  const OpId s03 = k.dfg.AddBinary(Opcode::kAdd, x0, x3, "s03");
  const OpId s12 = k.dfg.AddBinary(Opcode::kAdd, x1, x2, "s12");
  const OpId d03 = k.dfg.AddBinary(Opcode::kSub, x0, x3, "d03");
  const OpId d12 = k.dfg.AddBinary(Opcode::kSub, x1, x2, "d12");
  const OpId X0 = k.dfg.AddBinary(Opcode::kAdd, s03, s12, "X0");
  const OpId X2 = k.dfg.AddBinary(Opcode::kSub, s03, s12, "X2");
  const OpId a0 = k.dfg.AddBinary(Opcode::kMul, c17, d03, "a0");
  const OpId a1 = k.dfg.AddBinary(Opcode::kMul, c7, d12, "a1");
  const OpId b0 = k.dfg.AddBinary(Opcode::kMul, c7, d03, "b0");
  const OpId b1 = k.dfg.AddBinary(Opcode::kMul, c17, d12, "b1");
  const OpId X1 = k.dfg.AddBinary(Opcode::kAdd, a0, a1, "X1");
  const OpId X3 = k.dfg.AddBinary(Opcode::kSub, b0, b1, "X3");
  k.dfg.AddOutput(X0, 0, "out0");
  k.dfg.AddOutput(X1, 1, "out1");
  k.dfg.AddOutput(X2, 2, "out2");
  k.dfg.AddOutput(X3, 3, "out3");
  k.input = MakeStreams(seed, iterations, 4, 0, 255);
  return k;
}

Kernel MakeWideDotProduct(int lanes, int iterations, std::uint64_t seed) {
  Kernel k;
  k.name = StrFormat("wide_dot_%d", lanes);
  k.description = "unrolled dot product: parallel MAC lanes + adder tree";
  std::vector<OpId> partials;
  for (int lane = 0; lane < lanes; ++lane) {
    const OpId a = k.dfg.AddInput(2 * lane, StrFormat("a%d", lane));
    const OpId b = k.dfg.AddInput(2 * lane + 1, StrFormat("b%d", lane));
    partials.push_back(
        k.dfg.AddBinary(Opcode::kMul, a, b, StrFormat("m%d", lane)));
  }
  // Reduction tree.
  while (partials.size() > 1) {
    std::vector<OpId> next;
    for (size_t i = 0; i + 1 < partials.size(); i += 2) {
      next.push_back(k.dfg.AddBinary(Opcode::kAdd, partials[i], partials[i + 1]));
    }
    if (partials.size() % 2 == 1) next.push_back(partials.back());
    partials = std::move(next);
  }
  Op acc;
  acc.opcode = Opcode::kAdd;
  acc.name = "acc";
  acc.operands = {Operand{partials[0], 0, 0}, Operand{kNoOp, 1, 0}};
  const OpId acc_id = k.dfg.AddOp(std::move(acc));
  k.dfg.mutable_op(acc_id).operands[1].producer = acc_id;
  k.dfg.AddOutput(acc_id, 0, "out");
  k.input = MakeStreams(seed, iterations, 2 * lanes, -20, 20);
  return k;
}

std::vector<Kernel> StandardKernelSuite(int iterations, std::uint64_t seed) {
  std::vector<Kernel> suite;
  suite.push_back(MakeDotProduct(iterations, seed + 1));
  suite.push_back(MakeVecAdd(iterations, seed + 2));
  suite.push_back(MakeSaxpy(iterations, seed + 3));
  suite.push_back(MakeFir4(iterations, seed + 4));
  suite.push_back(MakeIir1(iterations, seed + 5));
  suite.push_back(MakeMovingAvg3(iterations, seed + 6));
  suite.push_back(MakeSobelRow(iterations, seed + 7));
  suite.push_back(MakeSad(iterations, seed + 8));
  suite.push_back(MakeButterfly(iterations, seed + 9));
  suite.push_back(MakeMatVecRow(iterations, seed + 10));
  suite.push_back(MakeGemmMac(iterations, seed + 11));
  suite.push_back(MakeHistogram8(iterations, seed + 12));
  suite.push_back(MakeReluScale(iterations, seed + 13));
  suite.push_back(MakeRunningMaxPool(iterations, seed + 14));
  suite.push_back(MakeMac2(iterations, seed + 15));
  return suite;
}

std::vector<Kernel> TinyKernelSuite(int iterations, std::uint64_t seed) {
  std::vector<Kernel> suite;
  suite.push_back(MakeVecAdd(iterations, seed + 2));
  suite.push_back(MakeDotProduct(iterations, seed + 1));
  suite.push_back(MakeSaxpy(iterations, seed + 3));
  suite.push_back(MakeReluScale(iterations, seed + 13));
  suite.push_back(MakeButterfly(iterations, seed + 9));
  return suite;
}

namespace {

// Builds the shared ITE scaffold: reads x, computes cond = x > thr.
// `then_fn` / `else_fn` append region ops and return the region value.
template <typename ThenFn, typename ElseFn>
IteKernel BuildIte(const std::string& name, int iterations, std::uint64_t seed,
                   std::int64_t thr, ThenFn&& then_fn, ElseFn&& else_fn) {
  IteKernel k;
  k.name = name;

  // --- predicated single-DFG form ---
  {
    Dfg& d = k.dfg;
    const OpId x = d.AddInput(0, "x");
    const OpId thr_c = d.AddConst(thr, "thr");
    k.cond = d.AddBinary(Opcode::kCmpLt, thr_c, x, "cond");  // x > thr
    const int first_then = d.num_ops();
    const OpId tv = then_fn(d, x);
    for (OpId id = first_then; id < d.num_ops(); ++id) k.then_ops.push_back(id);
    const int first_else = d.num_ops();
    const OpId ev = else_fn(d, x);
    for (OpId id = first_else; id < d.num_ops(); ++id) k.else_ops.push_back(id);
    Op phi;
    phi.opcode = Opcode::kPhi;
    phi.name = "join";
    phi.operands = {Operand{tv, 0, 0}, Operand{ev, 0, 0}};
    phi.pred = k.cond;
    const OpId join = d.AddOp(std::move(phi));
    k.phi_ops.push_back(join);
    d.AddOutput(join, 0, "out");
  }

  // --- CDFG diamond form ---
  {
    // Variables: 0 = x (live across the diamond), 1 = y (join result),
    // 2 = loop counter.
    Dfg header;
    {
      const OpId x = header.AddInput(0, "x");
      header.AddOp([&] {
        Op o;
        o.opcode = Opcode::kVarOut;
        o.slot = 0;
        o.operands = {Operand{x, 0, 0}};
        o.name = "save_x";
        return o;
      }());
      const OpId thr_c = header.AddConst(thr, "thr");
      const OpId cond = header.AddBinary(Opcode::kCmpLt, thr_c, x, "cond");
      // The branch condition is also stored, so a sequenced (direct
      // CDFG mapping) execution can observe it between configurations.
      header.AddOp([&] {
        Op o;
        o.opcode = Opcode::kVarOut;
        o.slot = 3;
        o.operands = {Operand{cond, 0, 0}};
        o.name = "save_cond";
        return o;
      }());
    }
    Dfg then_b;
    {
      Op vi;
      vi.opcode = Opcode::kVarIn;
      vi.slot = 0;
      vi.name = "x";
      const OpId x = then_b.AddOp(std::move(vi));
      const OpId tv = then_fn(then_b, x);
      Op vo;
      vo.opcode = Opcode::kVarOut;
      vo.slot = 1;
      vo.operands = {Operand{tv, 0, 0}};
      vo.name = "save_y";
      then_b.AddOp(std::move(vo));
    }
    Dfg else_b;
    {
      Op vi;
      vi.opcode = Opcode::kVarIn;
      vi.slot = 0;
      vi.name = "x";
      const OpId x = else_b.AddOp(std::move(vi));
      const OpId ev = else_fn(else_b, x);
      Op vo;
      vo.opcode = Opcode::kVarOut;
      vo.slot = 1;
      vo.operands = {Operand{ev, 0, 0}};
      vo.name = "save_y";
      else_b.AddOp(std::move(vo));
    }
    Dfg join_b;
    OpId loop_cond;
    {
      Op vi;
      vi.opcode = Opcode::kVarIn;
      vi.slot = 1;
      vi.name = "y";
      const OpId y = join_b.AddOp(std::move(vi));
      join_b.AddOutput(y, 0, "out");
      // Loop bookkeeping: ++count; continue while count < iterations.
      Op ci;
      ci.opcode = Opcode::kVarIn;
      ci.slot = 2;
      ci.name = "count";
      const OpId cnt = join_b.AddOp(std::move(ci));
      const OpId one = join_b.AddConst(1, "one");
      const OpId n = join_b.AddConst(iterations, "n");
      const OpId next = join_b.AddBinary(Opcode::kAdd, cnt, one, "next");
      Op co;
      co.opcode = Opcode::kVarOut;
      co.slot = 2;
      co.operands = {Operand{next, 0, 0}};
      co.name = "save_count";
      join_b.AddOp(std::move(co));
      loop_cond = join_b.AddBinary(Opcode::kCmpLt, next, n, "more");
      Op mo;
      mo.opcode = Opcode::kVarOut;
      mo.slot = 4;
      mo.operands = {Operand{loop_cond, 0, 0}};
      mo.name = "save_more";
      join_b.AddOp(std::move(mo));
    }
    Dfg exit_b;  // empty exit

    Cdfg& c = k.cdfg;
    const int bh = c.AddBlock("header", std::move(header));
    const int bt = c.AddBlock("then", std::move(then_b));
    const int be = c.AddBlock("else", std::move(else_b));
    const int bj = c.AddBlock("join", std::move(join_b));
    const int bx = c.AddBlock("exit", std::move(exit_b));
    const OpId cond_op = 3;  // header: x, save_x, thr, cond -> cond is id 3
    c.AddEdge(ControlEdge{bh, bt, ControlEdge::Cond::kIfTrue, cond_op});
    c.AddEdge(ControlEdge{bh, be, ControlEdge::Cond::kIfFalse, cond_op});
    c.AddEdge(ControlEdge{bt, bj, ControlEdge::Cond::kAlways, kNoOp});
    c.AddEdge(ControlEdge{be, bj, ControlEdge::Cond::kAlways, kNoOp});
    c.AddEdge(ControlEdge{bj, bh, ControlEdge::Cond::kIfTrue, loop_cond});
    c.AddEdge(ControlEdge{bj, bx, ControlEdge::Cond::kIfFalse, loop_cond});
    c.set_entry(bh);
    c.set_exit(bx);
  }

  k.input = MakeStreams(seed, iterations, 1, -100, 100);
  k.input.vars = {0, 0, 0, 0, 0};
  return k;
}

}  // namespace

IteKernel MakeThresholdIte(int iterations, std::uint64_t seed) {
  return BuildIte(
      "threshold_ite", iterations, seed, /*thr=*/10,
      [](Dfg& d, OpId x) {
        const OpId c3 = d.AddConst(3, "c3");
        const OpId c1 = d.AddConst(1, "c1");
        const OpId t = d.AddBinary(Opcode::kMul, x, c3, "t_mul");
        return d.AddBinary(Opcode::kSub, t, c1, "t_val");
      },
      [](Dfg& d, OpId x) {
        const OpId c100 = d.AddConst(100, "c100");
        return d.AddBinary(Opcode::kAdd, x, c100, "e_val");
      });
}

IteKernel MakeClampIte(int iterations, std::uint64_t seed) {
  return BuildIte(
      "clamp_ite", iterations, seed, /*thr=*/0,
      [](Dfg& d, OpId x) {
        // then: y = ((x*2) + (x>>1)) * 3
        const OpId c2 = d.AddConst(2, "c2");
        const OpId c1 = d.AddConst(1, "c1");
        const OpId c3 = d.AddConst(3, "c3");
        const OpId t0 = d.AddBinary(Opcode::kMul, x, c2, "t0");
        const OpId t1 = d.AddBinary(Opcode::kShr, x, c1, "t1");
        const OpId t2 = d.AddBinary(Opcode::kAdd, t0, t1, "t2");
        return d.AddBinary(Opcode::kMul, t2, c3, "t_val");
      },
      [](Dfg& d, OpId x) {
        // else: y = |x| + (x & 15) - 7
        const OpId c15 = d.AddConst(15, "c15");
        const OpId c7 = d.AddConst(7, "c7");
        const OpId e0 = d.AddUnary(Opcode::kAbs, x, "e0");
        const OpId e1 = d.AddBinary(Opcode::kAnd, x, c15, "e1");
        const OpId e2 = d.AddBinary(Opcode::kAdd, e0, e1, "e2");
        return d.AddBinary(Opcode::kSub, e2, c7, "e_val");
      });
}

Kernel MakeRandomKernel(Rng& rng, const RandomDfgOptions& options,
                        int iterations) {
  static const Opcode kBinaryPool[] = {
      Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd, Opcode::kOr,
      Opcode::kXor, Opcode::kMin, Opcode::kMax, Opcode::kCmpLt};
  static const Opcode kUnaryPool[] = {Opcode::kNeg, Opcode::kNot, Opcode::kAbs};

  Kernel k;
  k.name = "random";
  k.description = "randomly generated loop body";
  Dfg& d = k.dfg;
  std::vector<OpId> values;  // ops usable as operands
  for (int s = 0; s < options.num_inputs; ++s) {
    values.push_back(d.AddInput(s));
  }
  values.push_back(d.AddConst(rng.NextInt(-50, 50)));

  // Warm-up inits must be CONSISTENT per producer: all reads of "v
  // before iteration 0" see the same (nonexistent) instances, and
  // hardware keeps each in one register.
  std::map<OpId, std::int64_t> shared_init;
  auto pick_operand = [&](OpId self) -> Operand {
    // Loop-carried operands may reference any non-constant op
    // (including self); same-iteration operands reference any earlier
    // value. Constants are excluded from carried picks: an immediate
    // is iteration-invariant, so "the constant from d iterations ago"
    // is not a meaningful hardware read.
    if (rng.NextDouble() < options.carried_fraction) {
      const int dist = rng.NextInt(1, options.max_distance);
      OpId producer = self;  // `self` is not in `values` yet
      if (!rng.NextBool(0.3)) {
        for (int tries = 0; tries < 8; ++tries) {
          const OpId candidate = values[rng.NextIndex(values.size())];
          if (d.op(candidate).opcode != Opcode::kConst) {
            producer = candidate;
            break;
          }
        }
      }
      auto [it, inserted] = shared_init.insert({producer, rng.NextInt(-5, 5)});
      return Operand{producer, dist, it->second};
    }
    return Operand{values[rng.NextIndex(values.size())], 0, 0};
  };

  const int body_ops = std::max(1, options.num_ops - options.num_inputs -
                                       options.num_outputs - 1);
  for (int i = 0; i < body_ops; ++i) {
    const OpId self = d.num_ops();
    if (options.allow_memory && rng.NextBool(0.1)) {
      const OpId mask = values[rng.NextIndex(values.size())];
      const OpId seven = values.empty() ? d.AddConst(7) : mask;
      const OpId addr = d.AddBinary(Opcode::kAnd, seven, d.AddConst(7), "addr");
      values.push_back(d.AddLoad(0, addr));
      continue;
    }
    if (rng.NextBool(0.25)) {
      Op op;
      op.opcode = kUnaryPool[rng.NextIndex(std::size(kUnaryPool))];
      op.operands = {pick_operand(self)};
      values.push_back(d.AddOp(std::move(op)));
    } else {
      Op op;
      op.opcode = kBinaryPool[rng.NextIndex(std::size(kBinaryPool))];
      op.operands = {pick_operand(self), pick_operand(self)};
      values.push_back(d.AddOp(std::move(op)));
    }
  }
  for (int s = 0; s < options.num_outputs; ++s) {
    d.AddOutput(values[values.size() - 1 - static_cast<size_t>(s) % values.size()], s);
  }

  k.input.iterations = iterations;
  for (int s = 0; s < options.num_inputs; ++s) {
    k.input.streams.push_back(RandomStream(rng, iterations, -40, 40));
  }
  if (options.allow_memory) {
    k.input.arrays.push_back(std::vector<std::int64_t>(16, 1));
  }
  return k;
}

}  // namespace cgra
