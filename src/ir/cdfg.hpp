// Control Data Flow Graph (§II-B): nodes are basic blocks (each a
// straight-line DFG executed once per visit), edges are control
// dependencies. Values crossing blocks travel through a variable file
// via kVarIn/kVarOut ops; streams and memory arrays are global.
//
// This is the input shape for "direct CDFG mapping" [60] and the
// source from which the predication transforms (cf/) produce a single
// predicated DFG.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/dfg.hpp"
#include "ir/interp.hpp"
#include "support/status.hpp"

namespace cgra {

struct BasicBlock {
  std::string name;
  Dfg body;
};

struct ControlEdge {
  enum class Cond {
    kAlways,  ///< unconditional successor
    kIfTrue,  ///< taken when `cond_op`'s value != 0
    kIfFalse, ///< taken when `cond_op`'s value == 0
  };
  int from = -1;
  int to = -1;
  Cond cond = Cond::kAlways;
  OpId cond_op = kNoOp;  ///< op in blocks[from].body for kIfTrue/kIfFalse
};

class Cdfg {
 public:
  int AddBlock(std::string name, Dfg body = {});
  void AddEdge(ControlEdge edge);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const BasicBlock& block(int b) const { return blocks_[static_cast<size_t>(b)]; }
  BasicBlock& mutable_block(int b) { return blocks_[static_cast<size_t>(b)]; }
  const std::vector<ControlEdge>& edges() const { return edges_; }

  void set_entry(int b) { entry_ = b; }
  void set_exit(int b) { exit_ = b; }
  int entry() const { return entry_; }
  int exit() const { return exit_; }

  /// Successor edges of a block.
  std::vector<ControlEdge> OutEdges(int b) const;

  /// Structural checks: valid entry/exit, every non-exit block has a
  /// well-formed outgoing edge set (one kAlways, or a kIfTrue/kIfFalse
  /// pair on the same condition op), bodies verify.
  Status Verify() const;

  std::string ToDot() const;

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<ControlEdge> edges_;
  int entry_ = -1;
  int exit_ = -1;
};

/// Reference execution of a CDFG: starts at entry, executes each
/// visited block once (single iteration), follows control edges until
/// the exit block has executed; stops with an error after `max_steps`
/// block executions. Stream inputs are consumed (cursor per slot).
struct CdfgExecResult {
  std::vector<std::vector<std::int64_t>> outputs;
  std::vector<std::vector<std::int64_t>> arrays;
  std::vector<std::int64_t> vars;
  int blocks_executed = 0;
};
Result<CdfgExecResult> RunCdfgReference(const Cdfg& cdfg, const ExecInput& input,
                                        int max_steps = 100000);

}  // namespace cgra
