#include <cstddef>
#include "ir/dfg.hpp"

#include <algorithm>
#include <cassert>

#include "graph/algos.hpp"
#include "support/bytes.hpp"
#include "support/str.hpp"

namespace cgra {

OpId Dfg::AddOp(Op op) {
  assert(static_cast<int>(op.operands.size()) == OpArity(op.opcode));
  const OpId id = static_cast<OpId>(ops_.size());
  if (op.name.empty()) {
    op.name = StrFormat("%s%d", std::string(OpName(op.opcode)).c_str(), id);
  }
  ops_.push_back(std::move(op));
  return id;
}

OpId Dfg::AddConst(std::int64_t value, std::string name) {
  Op op;
  op.opcode = Opcode::kConst;
  op.imm = value;
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddInput(int slot, std::string name) {
  Op op;
  op.opcode = Opcode::kInput;
  op.slot = slot;
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddIterIdx(std::string name) {
  Op op;
  op.opcode = Opcode::kIterIdx;
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddOutput(OpId value, int slot, std::string name) {
  Op op;
  op.opcode = Opcode::kOutput;
  op.slot = slot;
  op.operands = {Operand{value, 0, 0}};
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddUnary(Opcode opcode, OpId a, std::string name) {
  assert(OpArity(opcode) == 1);
  Op op;
  op.opcode = opcode;
  op.operands = {Operand{a, 0, 0}};
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddBinary(Opcode opcode, OpId a, OpId b, std::string name) {
  return AddBinary(opcode, Operand{a, 0, 0}, Operand{b, 0, 0}, std::move(name));
}

OpId Dfg::AddBinary(Opcode opcode, Operand a, Operand b, std::string name) {
  assert(OpArity(opcode) == 2);
  Op op;
  op.opcode = opcode;
  op.operands = {a, b};
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddSelect(OpId cond, OpId if_true, OpId if_false, std::string name) {
  Op op;
  op.opcode = Opcode::kSelect;
  op.operands = {Operand{cond, 0, 0}, Operand{if_true, 0, 0},
                 Operand{if_false, 0, 0}};
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddLoad(int array, OpId addr, std::string name) {
  Op op;
  op.opcode = Opcode::kLoad;
  op.array = array;
  op.operands = {Operand{addr, 0, 0}};
  op.name = std::move(name);
  return AddOp(std::move(op));
}

OpId Dfg::AddStore(int array, OpId addr, OpId value, std::string name) {
  Op op;
  op.opcode = Opcode::kStore;
  op.array = array;
  op.operands = {Operand{addr, 0, 0}, Operand{value, 0, 0}};
  op.name = std::move(name);
  return AddOp(std::move(op));
}

std::vector<DfgEdge> Dfg::Edges(bool include_pred) const {
  std::vector<DfgEdge> edges;
  for (OpId id = 0; id < num_ops(); ++id) {
    const Op& op = ops_[static_cast<size_t>(id)];
    for (size_t port = 0; port < op.operands.size(); ++port) {
      const Operand& o = op.operands[port];
      edges.push_back(DfgEdge{o.producer, id, static_cast<int>(port), o.distance});
    }
    if (include_pred && op.pred != kNoOp) {
      // Predicate travels like a same-iteration data operand.
      edges.push_back(DfgEdge{op.pred, id, kPredPort, 0});
    }
    for (const Operand& o : op.order_deps) {
      edges.push_back(DfgEdge{o.producer, id, kOrderPort, o.distance});
    }
    for (size_t port = 0; port < op.alt_operands.size(); ++port) {
      const Operand& o = op.alt_operands[port];
      edges.push_back(
          DfgEdge{o.producer, id, kAltPortBase + static_cast<int>(port), o.distance});
    }
  }
  return edges;
}

Digraph Dfg::ToDigraph(bool include_carried, bool include_pred) const {
  Digraph g(num_ops());
  for (const DfgEdge& e : Edges(include_pred)) {
    if (!include_carried && e.distance > 0) continue;
    g.AddEdge(e.from, e.to);
  }
  return g;
}

std::vector<int> Dfg::FanOut() const {
  std::vector<int> fan(static_cast<size_t>(num_ops()), 0);
  for (const DfgEdge& e : Edges()) ++fan[static_cast<size_t>(e.from)];
  return fan;
}

std::vector<int> Dfg::AsapLevels() const {
  const Digraph g = ToDigraph(/*include_carried=*/false);
  std::vector<std::int64_t> w(static_cast<size_t>(g.num_edges()), 1);
  const auto dist = DagLongestPathFromSources(g, w);
  std::vector<int> levels(dist.size());
  std::transform(dist.begin(), dist.end(), levels.begin(),
                 [](std::int64_t d) { return static_cast<int>(d); });
  return levels;
}

std::vector<int> Dfg::AlapLevels(int length) const {
  const Digraph g = ToDigraph(/*include_carried=*/false);
  std::vector<std::int64_t> w(static_cast<size_t>(g.num_edges()), 1);
  const auto to_sink = DagLongestPathToSinks(g, w);
  std::vector<int> levels(to_sink.size());
  for (size_t i = 0; i < to_sink.size(); ++i) {
    levels[i] = length - 1 - static_cast<int>(to_sink[i]);
  }
  return levels;
}

int Dfg::CriticalPathLength() const {
  if (num_ops() == 0) return 0;
  const auto asap = AsapLevels();
  return *std::max_element(asap.begin(), asap.end()) + 1;
}

Status Dfg::Verify() const {
  for (OpId id = 0; id < num_ops(); ++id) {
    const Op& op = ops_[static_cast<size_t>(id)];
    if (static_cast<int>(op.operands.size()) != OpArity(op.opcode)) {
      return Error::InvalidArgument(
          StrFormat("op %d (%s): expected %d operands, got %zu", id,
                    op.name.c_str(), OpArity(op.opcode), op.operands.size()));
    }
    auto check_operands = [&](const std::vector<Operand>& operands) -> Status {
      for (const Operand& o : operands) {
        if (o.producer < 0 || o.producer >= num_ops()) {
          return Error::InvalidArgument(
              StrFormat("op %d (%s): operand producer %d out of range", id,
                        op.name.c_str(), o.producer));
        }
        if (o.distance < 0) {
          return Error::InvalidArgument(
              StrFormat("op %d (%s): negative dependence distance", id,
                        op.name.c_str()));
        }
      }
      return Status::Ok();
    };
    if (Status s = check_operands(op.operands); !s.ok()) return s;
    if (Status s = check_operands(op.order_deps); !s.ok()) return s;
    if (Status s = check_operands(op.alt_operands); !s.ok()) return s;
    if (op.has_alt()) {
      if (op.pred == kNoOp) {
        return Error::InvalidArgument(StrFormat(
            "op %d (%s): dual-issue alternate requires a guard", id,
            op.name.c_str()));
      }
      if (static_cast<int>(op.alt_operands.size()) != OpArity(op.alt_opcode) ||
          IsMemoryOp(op.alt_opcode) || IsIoOp(op.alt_opcode) ||
          OpArity(op.alt_opcode) == 0 || op.alt_opcode == Opcode::kPhi ||
          op.alt_opcode == Opcode::kRoute) {
        return Error::InvalidArgument(StrFormat(
            "op %d (%s): alternate must be a pure ALU op with matching "
            "arity",
            id, op.name.c_str()));
      }
    }
    if (op.pred != kNoOp && (op.pred < 0 || op.pred >= num_ops())) {
      return Error::InvalidArgument(
          StrFormat("op %d (%s): predicate producer out of range", id,
                    op.name.c_str()));
    }
    if (IsIoOp(op.opcode) && op.slot < 0) {
      return Error::InvalidArgument(
          StrFormat("op %d (%s): I/O op without a stream slot", id,
                    op.name.c_str()));
    }
    if (IsMemoryOp(op.opcode) && op.array < 0) {
      return Error::InvalidArgument(
          StrFormat("op %d (%s): memory op without an array", id,
                    op.name.c_str()));
    }
  }
  if (!TopologicalOrder(ToDigraph(/*include_carried=*/false)).has_value()) {
    return Error::InvalidArgument(
        "same-iteration dependence edges form a cycle");
  }
  return Status::Ok();
}

void Dfg::AppendCanonicalBytes(ByteWriter& w) const {
  const auto put_operands = [&w](const std::vector<Operand>& ops) {
    w.U32(static_cast<std::uint32_t>(ops.size()));
    for (const Operand& o : ops) {
      w.I32(o.producer);
      w.I32(o.distance);
      w.I64(o.init);
    }
  };
  w.Str("DFG");
  w.U32(1);  // encoding version: bump when a field is added/removed
  w.I32(num_ops());
  for (const Op& op : ops_) {
    w.U8(static_cast<std::uint8_t>(op.opcode));
    put_operands(op.operands);
    w.I64(op.imm);
    w.I32(op.slot);
    w.I32(op.array);
    w.I32(op.pred);
    w.Bool(op.pred_when_true);
    put_operands(op.order_deps);
    w.U8(static_cast<std::uint8_t>(op.alt_opcode));
    put_operands(op.alt_operands);
  }
}

std::string Dfg::Digest() const {
  ByteWriter w;
  AppendCanonicalBytes(w);
  return Hex16(Fnv1a64(w.bytes()));
}

std::string Dfg::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  for (OpId id = 0; id < num_ops(); ++id) {
    const Op& op = ops_[static_cast<size_t>(id)];
    out += StrFormat("  n%d [label=\"%s\\n%s\"];\n", id, op.name.c_str(),
                     std::string(OpName(op.opcode)).c_str());
  }
  for (const DfgEdge& e : Edges()) {
    if (e.distance > 0) {
      out += StrFormat("  n%d -> n%d [label=\"d=%d\", style=dashed];\n", e.from,
                       e.to, e.distance);
    } else if (e.to_port < 0) {
      out += StrFormat("  n%d -> n%d [style=dotted];\n", e.from, e.to);
    } else {
      out += StrFormat("  n%d -> n%d;\n", e.from, e.to);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace cgra
