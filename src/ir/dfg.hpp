// Data Flow Graph: nodes are operations, edges are data dependencies
// (§II-B "DFG, CDFG"). Loop kernels are expressed as ONE iteration of
// the loop body; loop-carried dependencies are operands with
// `distance` >= 1, read from `distance` iterations earlier — exactly
// the dependence-distance view modulo scheduling needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "ir/op.hpp"
#include "support/status.hpp"

namespace cgra {

class ByteWriter;  // support/bytes.hpp

using OpId = std::int32_t;
inline constexpr OpId kNoOp = -1;

/// A data operand: which op produces it and across how many loop
/// iterations it travels (0 = same iteration). `init` is the value read
/// while iter < distance (e.g. an accumulator's initial 0).
struct Operand {
  OpId producer = kNoOp;
  int distance = 0;
  std::int64_t init = 0;
};

/// One IR operation.
struct Op {
  Opcode opcode = Opcode::kConst;
  std::string name;                ///< diagnostic label
  std::vector<Operand> operands;   ///< size == OpArity(opcode)
  std::int64_t imm = 0;            ///< kConst payload
  int slot = -1;                   ///< kInput/kOutput stream index
  int array = -1;                  ///< kLoad/kStore memory array index
  OpId pred = kNoOp;               ///< optional guarding predicate producer
  bool pred_when_true = true;      ///< executes when pred!=0 (or ==0 if false)
  /// Ordering-only dependencies (no value flows): used for memory
  /// hazards, e.g. a load that must observe last iteration's store.
  /// Schedulers honour them like data edges; routing is not required.
  std::vector<Operand> order_deps;
  /// Dual-issue single execution (§III-B1, [55][58][59]): an alternate
  /// ALU operation fused into the same issue slot, executing when the
  /// guard does NOT hold (requires pred != kNoOp). The op's value is
  /// whichever side executed. Restricted to non-side-effecting ALU
  /// opcodes.
  Opcode alt_opcode = Opcode::kAdd;
  std::vector<Operand> alt_operands;  ///< empty = no alternate
  bool has_alt() const { return !alt_operands.empty(); }
};

/// A flattened dependence edge (producer -> consumer port).
/// to_port >= 0: data operand; kPredPort: guarding predicate (data);
/// kOrderPort: ordering-only edge (no routed value); ports >=
/// kAltPortBase: operands of the fused alternate operation (data).
inline constexpr int kPredPort = -1;
inline constexpr int kOrderPort = -2;
inline constexpr int kAltPortBase = 100;
struct DfgEdge {
  OpId from = kNoOp;
  OpId to = kNoOp;
  int to_port = 0;
  int distance = 0;

  bool carries_value() const { return to_port != kOrderPort; }
};

class Dfg {
 public:
  // ---- construction -----------------------------------------------------
  OpId AddConst(std::int64_t value, std::string name = {});
  OpId AddInput(int slot, std::string name = {});
  OpId AddIterIdx(std::string name = {});
  OpId AddOutput(OpId value, int slot, std::string name = {});
  OpId AddUnary(Opcode op, OpId a, std::string name = {});
  OpId AddBinary(Opcode op, OpId a, OpId b, std::string name = {});
  OpId AddBinary(Opcode op, Operand a, Operand b, std::string name = {});
  OpId AddSelect(OpId cond, OpId if_true, OpId if_false, std::string name = {});
  OpId AddLoad(int array, OpId addr, std::string name = {});
  OpId AddStore(int array, OpId addr, OpId value, std::string name = {});
  /// Fully general insertion.
  OpId AddOp(Op op);

  // ---- access -----------------------------------------------------------
  int num_ops() const { return static_cast<int>(ops_.size()); }
  const Op& op(OpId id) const { return ops_[static_cast<size_t>(id)]; }
  Op& mutable_op(OpId id) { return ops_[static_cast<size_t>(id)]; }
  const std::vector<Op>& ops() const { return ops_; }

  /// All dependence edges, including predicate edges when
  /// `include_pred` (predicates are data the consumer must receive).
  std::vector<DfgEdge> Edges(bool include_pred = true) const;

  /// Digraph view over op ids. When `include_carried` is false,
  /// loop-carried (distance >= 1) edges are dropped, which makes the
  /// graph acyclic for a well-formed loop body.
  Digraph ToDigraph(bool include_carried = true, bool include_pred = true) const;

  /// Number of consumers of each op's value (same-iteration + carried).
  std::vector<int> FanOut() const;

  // ---- analyses ----------------------------------------------------------
  /// ASAP level per op over same-iteration edges, unit latency.
  std::vector<int> AsapLevels() const;
  /// ALAP level per op for a given schedule length (>= critical path).
  std::vector<int> AlapLevels(int length) const;
  /// Critical path length in ops (max ASAP + 1); 0 for the empty DFG.
  int CriticalPathLength() const;

  // ---- validation / export ------------------------------------------------
  /// Structural checks: arities, operand validity, acyclicity of the
  /// same-iteration subgraph, slot/array presence on I/O and memory ops,
  /// non-negative distances.
  Status Verify() const;

  /// Canonical byte encoding of every semantic field of every op —
  /// opcode, operands (producer/distance/init), imm, slot, array,
  /// predication, ordering deps, fused alternates — in op order.
  /// Diagnostic names are excluded: relabelling an op must not change
  /// the digest, while any mutation that could alter a mapping does.
  /// Layout carries its own version tag.
  void AppendCanonicalBytes(ByteWriter& w) const;

  /// Stable 16-hex-digit digest of the canonical encoding; the kernel
  /// component of the mapping-cache key (src/cache).
  std::string Digest() const;

  /// Graphviz dot rendering (ops labelled `name:opcode`).
  std::string ToDot(const std::string& graph_name = "dfg") const;

 private:
  std::vector<Op> ops_;
};

}  // namespace cgra
