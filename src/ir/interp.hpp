// Reference interpreter for loop-body DFGs.
//
// Defines the *ground truth* an accelerated execution must reproduce:
// the simulator's results are compared bit-exactly against this
// interpreter in the test and bench harnesses. Semantics: the DFG is
// one loop iteration; it executes `iterations` times; a distance-d
// operand reads the producer's value from iteration i-d (its `init`
// while i < d); predicated-off ops yield 0 and suppress side effects.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/dfg.hpp"
#include "support/status.hpp"

namespace cgra {

/// Inputs to an execution: stream contents (indexed by kInput slot,
/// each at least `iterations` long) and initial memory array contents.
struct ExecInput {
  std::vector<std::vector<std::int64_t>> streams;
  std::vector<std::vector<std::int64_t>> arrays;
  int iterations = 1;
  /// CDFG variable file (kVarIn/kVarOut); plain loop kernels leave it empty.
  std::vector<std::int64_t> vars;
};

/// Observable outcome of an execution.
struct ExecResult {
  /// Values pushed by kOutput ops, indexed by slot, one per executed
  /// (non-predicated-off) occurrence, in iteration order.
  std::vector<std::vector<std::int64_t>> outputs;
  /// Final memory array contents.
  std::vector<std::vector<std::int64_t>> arrays;
  /// Value of each op in the last iteration (handy for reductions).
  std::vector<std::int64_t> last_values;
  /// Final variable file.
  std::vector<std::int64_t> vars;
};

/// One memory access observed during reference execution (for the
/// §III-C bank-conflict studies).
struct MemAccess {
  int array = 0;
  std::int64_t addr = 0;
  bool is_store = false;
};

/// Executes `dfg` for input.iterations iterations.
/// Fails on malformed DFGs, stream underruns, and out-of-bounds
/// memory accesses (the kernels are expected to be address-safe).
/// When `mem_trace` is non-null it receives, per iteration, the memory
/// accesses issued (predicated-off accesses excluded).
Result<ExecResult> RunReference(const Dfg& dfg, const ExecInput& input,
                                std::vector<std::vector<MemAccess>>* mem_trace = nullptr);

}  // namespace cgra
