#include <cstddef>
#include "ir/interp.hpp"

#include <algorithm>

#include "graph/algos.hpp"
#include "support/str.hpp"

namespace cgra {

Result<ExecResult> RunReference(const Dfg& dfg, const ExecInput& input,
                                std::vector<std::vector<MemAccess>>* mem_trace) {
  if (Status s = dfg.Verify(); !s.ok()) return s.error();

  const auto order_opt = TopologicalOrder(dfg.ToDigraph(/*include_carried=*/false));
  if (!order_opt) {
    return Error::InvalidArgument("DFG has a same-iteration cycle");
  }
  const std::vector<NodeId>& order = *order_opt;

  // Longest carried distance bounds the value history we must keep.
  int max_dist = 0;
  for (const Op& op : dfg.ops()) {
    for (const Operand& o : op.operands) max_dist = std::max(max_dist, o.distance);
  }
  const int depth = max_dist + 1;
  // history[iter % depth][op]
  std::vector<std::vector<std::int64_t>> history(
      static_cast<size_t>(depth),
      std::vector<std::int64_t>(static_cast<size_t>(dfg.num_ops()), 0));

  ExecResult result;
  result.arrays = input.arrays;
  result.vars = input.vars;
  int max_out_slot = -1;
  for (const Op& op : dfg.ops()) {
    if (op.opcode == Opcode::kOutput) max_out_slot = std::max(max_out_slot, op.slot);
  }
  result.outputs.assign(static_cast<size_t>(max_out_slot + 1), {});

  if (mem_trace) mem_trace->assign(static_cast<size_t>(input.iterations), {});
  for (int iter = 0; iter < input.iterations; ++iter) {
    auto& now = history[static_cast<size_t>(iter % depth)];
    auto read = [&](const Operand& o) -> std::int64_t {
      if (iter < o.distance) return o.init;
      return history[static_cast<size_t>((iter - o.distance) % depth)]
                    [static_cast<size_t>(o.producer)];
    };

    for (const NodeId id : order) {
      const Op& op = dfg.op(id);
      // Predicate check (same-iteration value by construction).
      bool active = true;
      if (op.pred != kNoOp) {
        const std::int64_t p = now[static_cast<size_t>(op.pred)];
        active = (p != 0) == op.pred_when_true;
      }
      std::int64_t v = 0;
      if (active) {
        switch (op.opcode) {
          case Opcode::kConst:
            v = op.imm;
            break;
          case Opcode::kInput: {
            if (op.slot >= static_cast<int>(input.streams.size()) ||
                iter >= static_cast<int>(input.streams[static_cast<size_t>(op.slot)].size())) {
              return Error::InvalidArgument(
                  StrFormat("input stream %d underrun at iteration %d", op.slot, iter));
            }
            v = input.streams[static_cast<size_t>(op.slot)][static_cast<size_t>(iter)];
            break;
          }
          case Opcode::kIterIdx:
            v = iter;
            break;
          case Opcode::kVarIn: {
            if (op.slot >= static_cast<int>(result.vars.size())) {
              return Error::InvalidArgument(
                  StrFormat("variable %d read but var file has %zu entries",
                            op.slot, result.vars.size()));
            }
            v = result.vars[static_cast<size_t>(op.slot)];
            break;
          }
          case Opcode::kVarOut: {
            v = read(op.operands[0]);
            if (op.slot >= static_cast<int>(result.vars.size())) {
              result.vars.resize(static_cast<size_t>(op.slot) + 1, 0);
            }
            result.vars[static_cast<size_t>(op.slot)] = v;
            break;
          }
          case Opcode::kOutput:
            v = read(op.operands[0]);
            result.outputs[static_cast<size_t>(op.slot)].push_back(v);
            break;
          case Opcode::kLoad: {
            const std::int64_t addr = read(op.operands[0]);
            if (op.array >= static_cast<int>(result.arrays.size()) || addr < 0 ||
                addr >= static_cast<std::int64_t>(
                            result.arrays[static_cast<size_t>(op.array)].size())) {
              return Error::InvalidArgument(
                  StrFormat("load out of bounds: array %d addr %lld", op.array,
                            static_cast<long long>(addr)));
            }
            v = result.arrays[static_cast<size_t>(op.array)][static_cast<size_t>(addr)];
            if (mem_trace) {
              (*mem_trace)[static_cast<size_t>(iter)].push_back(
                  MemAccess{op.array, addr, false});
            }
            break;
          }
          case Opcode::kStore: {
            const std::int64_t addr = read(op.operands[0]);
            v = read(op.operands[1]);
            if (op.array >= static_cast<int>(result.arrays.size()) || addr < 0 ||
                addr >= static_cast<std::int64_t>(
                            result.arrays[static_cast<size_t>(op.array)].size())) {
              return Error::InvalidArgument(
                  StrFormat("store out of bounds: array %d addr %lld", op.array,
                            static_cast<long long>(addr)));
            }
            result.arrays[static_cast<size_t>(op.array)][static_cast<size_t>(addr)] = v;
            if (mem_trace) {
              (*mem_trace)[static_cast<size_t>(iter)].push_back(
                  MemAccess{op.array, addr, true});
            }
            break;
          }
          case Opcode::kPhi: {
            // Phi must be guarded; it picks the "then" value when the
            // guard holds (with pred_when_true), else the "else" value.
            if (op.pred == kNoOp) {
              return Error::InvalidArgument(
                  StrFormat("phi op %s has no guarding condition", op.name.c_str()));
            }
            const std::int64_t p = now[static_cast<size_t>(op.pred)];
            const bool taken = (p != 0) == op.pred_when_true;
            v = taken ? read(op.operands[0]) : read(op.operands[1]);
            break;
          }
          default: {
            const int arity = OpArity(op.opcode);
            const std::int64_t a = arity > 0 ? read(op.operands[0]) : 0;
            const std::int64_t b = arity > 1 ? read(op.operands[1]) : 0;
            const std::int64_t c = arity > 2 ? read(op.operands[2]) : 0;
            v = EvalAlu(op.opcode, a, b, c);
            break;
          }
        }
      } else if (op.opcode == Opcode::kPhi) {
        // An inactive phi still joins: it takes the "else" operand.
        v = read(op.operands[1]);
      } else if (op.has_alt()) {
        // Dual-issue single execution: the alternate side fires.
        const int arity = OpArity(op.alt_opcode);
        const std::int64_t a = arity > 0 ? read(op.alt_operands[0]) : 0;
        const std::int64_t b = arity > 1 ? read(op.alt_operands[1]) : 0;
        const std::int64_t c = arity > 2 ? read(op.alt_operands[2]) : 0;
        v = EvalAlu(op.alt_opcode, a, b, c);
      }
      now[static_cast<size_t>(id)] = v;
    }
    if (iter == input.iterations - 1) result.last_values = now;
  }
  if (input.iterations == 0) {
    result.last_values.assign(static_cast<size_t>(dfg.num_ops()), 0);
  }
  return result;
}

}  // namespace cgra
