#include <cstddef>
#include "ir/cdfg.hpp"

#include <algorithm>

#include "graph/algos.hpp"
#include "support/str.hpp"

namespace cgra {

int Cdfg::AddBlock(std::string name, Dfg body) {
  blocks_.push_back(BasicBlock{std::move(name), std::move(body)});
  return static_cast<int>(blocks_.size()) - 1;
}

void Cdfg::AddEdge(ControlEdge edge) { edges_.push_back(edge); }

std::vector<ControlEdge> Cdfg::OutEdges(int b) const {
  std::vector<ControlEdge> out;
  for (const ControlEdge& e : edges_) {
    if (e.from == b) out.push_back(e);
  }
  return out;
}

Status Cdfg::Verify() const {
  if (entry_ < 0 || entry_ >= num_blocks()) {
    return Error::InvalidArgument("CDFG entry block not set");
  }
  if (exit_ < 0 || exit_ >= num_blocks()) {
    return Error::InvalidArgument("CDFG exit block not set");
  }
  for (int b = 0; b < num_blocks(); ++b) {
    const BasicBlock& bb = blocks_[static_cast<size_t>(b)];
    if (Status s = bb.body.Verify(); !s.ok()) {
      return Error::InvalidArgument(
          StrFormat("block %s: %s", bb.name.c_str(), s.error().message.c_str()));
    }
    for (const Op& op : bb.body.ops()) {
      for (const Operand& o : op.operands) {
        if (o.distance != 0) {
          return Error::InvalidArgument(StrFormat(
              "block %s: loop-carried operand inside a basic block (loops "
              "are control edges in a CDFG)",
              bb.name.c_str()));
        }
      }
    }
    const auto outs = OutEdges(b);
    if (b == exit_) continue;  // the exit block may fall off the end
    if (outs.size() == 1) {
      if (outs[0].cond != ControlEdge::Cond::kAlways) {
        return Error::InvalidArgument(
            StrFormat("block %s: single successor must be unconditional",
                      bb.name.c_str()));
      }
    } else if (outs.size() == 2) {
      const bool ok =
          ((outs[0].cond == ControlEdge::Cond::kIfTrue &&
            outs[1].cond == ControlEdge::Cond::kIfFalse) ||
           (outs[0].cond == ControlEdge::Cond::kIfFalse &&
            outs[1].cond == ControlEdge::Cond::kIfTrue)) &&
          outs[0].cond_op == outs[1].cond_op && outs[0].cond_op != kNoOp &&
          outs[0].cond_op < bb.body.num_ops();
      if (!ok) {
        return Error::InvalidArgument(StrFormat(
            "block %s: two successors must be an if-true/if-false pair on "
            "one condition op",
            bb.name.c_str()));
      }
    } else {
      return Error::InvalidArgument(
          StrFormat("block %s: %zu successors (must be 1 or 2)",
                    bb.name.c_str(), outs.size()));
    }
  }
  return Status::Ok();
}

std::string Cdfg::ToDot() const {
  std::string out = "digraph cdfg {\n  node [shape=box];\n";
  for (int b = 0; b < num_blocks(); ++b) {
    out += StrFormat("  b%d [label=\"%s\\n(%d ops)\"];\n", b,
                     blocks_[static_cast<size_t>(b)].name.c_str(),
                     blocks_[static_cast<size_t>(b)].body.num_ops());
  }
  for (const ControlEdge& e : edges_) {
    const char* label = e.cond == ControlEdge::Cond::kAlways ? ""
                        : e.cond == ControlEdge::Cond::kIfTrue ? "T"
                                                               : "F";
    out += StrFormat("  b%d -> b%d [label=\"%s\"];\n", e.from, e.to, label);
  }
  out += "}\n";
  return out;
}

namespace {

// Executes one basic block visit. Streams are consumed through
// `cursors` (one element per kInput op execution, in dependence order).
Result<std::vector<std::int64_t>> RunBlockOnce(
    const Dfg& dfg, const ExecInput& input, std::vector<size_t>& cursors,
    CdfgExecResult& state) {
  const auto order_opt = TopologicalOrder(dfg.ToDigraph(/*include_carried=*/false));
  if (!order_opt) return Error::InvalidArgument("block DFG has a cycle");
  std::vector<std::int64_t> val(static_cast<size_t>(dfg.num_ops()), 0);
  for (const NodeId id : *order_opt) {
    const Op& op = dfg.op(id);
    bool active = true;
    if (op.pred != kNoOp) {
      active = (val[static_cast<size_t>(op.pred)] != 0) == op.pred_when_true;
    }
    if (!active) {
      if (op.opcode == Opcode::kPhi) {
        val[static_cast<size_t>(id)] = val[static_cast<size_t>(op.operands[1].producer)];
      }
      continue;
    }
    auto in = [&](int i) {
      return val[static_cast<size_t>(op.operands[static_cast<size_t>(i)].producer)];
    };
    switch (op.opcode) {
      case Opcode::kConst:
        val[static_cast<size_t>(id)] = op.imm;
        break;
      case Opcode::kInput: {
        if (op.slot >= static_cast<int>(input.streams.size())) {
          return Error::InvalidArgument(StrFormat("no input stream %d", op.slot));
        }
        if (static_cast<size_t>(op.slot) >= cursors.size()) {
          cursors.resize(static_cast<size_t>(op.slot) + 1, 0);
        }
        const auto& stream = input.streams[static_cast<size_t>(op.slot)];
        if (cursors[static_cast<size_t>(op.slot)] >= stream.size()) {
          return Error::InvalidArgument(StrFormat("input stream %d exhausted", op.slot));
        }
        val[static_cast<size_t>(id)] = stream[cursors[static_cast<size_t>(op.slot)]++];
        break;
      }
      case Opcode::kIterIdx:
        val[static_cast<size_t>(id)] = state.blocks_executed;
        break;
      case Opcode::kVarIn:
        if (op.slot >= static_cast<int>(state.vars.size())) {
          return Error::InvalidArgument(StrFormat("variable %d unset", op.slot));
        }
        val[static_cast<size_t>(id)] = state.vars[static_cast<size_t>(op.slot)];
        break;
      case Opcode::kVarOut:
        val[static_cast<size_t>(id)] = in(0);
        if (op.slot >= static_cast<int>(state.vars.size())) {
          state.vars.resize(static_cast<size_t>(op.slot) + 1, 0);
        }
        state.vars[static_cast<size_t>(op.slot)] = in(0);
        break;
      case Opcode::kOutput:
        val[static_cast<size_t>(id)] = in(0);
        if (op.slot >= static_cast<int>(state.outputs.size())) {
          state.outputs.resize(static_cast<size_t>(op.slot) + 1);
        }
        state.outputs[static_cast<size_t>(op.slot)].push_back(in(0));
        break;
      case Opcode::kLoad: {
        const std::int64_t addr = in(0);
        if (op.array >= static_cast<int>(state.arrays.size()) || addr < 0 ||
            addr >= static_cast<std::int64_t>(state.arrays[static_cast<size_t>(op.array)].size())) {
          return Error::InvalidArgument("load out of bounds");
        }
        val[static_cast<size_t>(id)] =
            state.arrays[static_cast<size_t>(op.array)][static_cast<size_t>(addr)];
        break;
      }
      case Opcode::kStore: {
        const std::int64_t addr = in(0);
        if (op.array >= static_cast<int>(state.arrays.size()) || addr < 0 ||
            addr >= static_cast<std::int64_t>(state.arrays[static_cast<size_t>(op.array)].size())) {
          return Error::InvalidArgument("store out of bounds");
        }
        state.arrays[static_cast<size_t>(op.array)][static_cast<size_t>(addr)] = in(1);
        val[static_cast<size_t>(id)] = in(1);
        break;
      }
      case Opcode::kPhi:
        val[static_cast<size_t>(id)] = in(0);  // active phi takes "then"
        break;
      default: {
        const int arity = OpArity(op.opcode);
        val[static_cast<size_t>(id)] =
            EvalAlu(op.opcode, arity > 0 ? in(0) : 0, arity > 1 ? in(1) : 0,
                    arity > 2 ? in(2) : 0);
        break;
      }
    }
  }
  return val;
}

}  // namespace

Result<CdfgExecResult> RunCdfgReference(const Cdfg& cdfg, const ExecInput& input,
                                        int max_steps) {
  if (Status s = cdfg.Verify(); !s.ok()) return s.error();
  CdfgExecResult state;
  state.arrays = input.arrays;
  state.vars = input.vars;
  std::vector<size_t> cursors;

  int b = cdfg.entry();
  for (;;) {
    if (state.blocks_executed >= max_steps) {
      return Error::ResourceLimit("CDFG execution exceeded max_steps");
    }
    auto values = RunBlockOnce(cdfg.block(b).body, input, cursors, state);
    if (!values.ok()) return values.error();
    ++state.blocks_executed;
    if (b == cdfg.exit()) break;
    const auto outs = cdfg.OutEdges(b);
    int next = -1;
    if (outs.size() == 1) {
      next = outs[0].to;
    } else {
      const std::int64_t c = (*values)[static_cast<size_t>(outs[0].cond_op)];
      for (const ControlEdge& e : outs) {
        const bool taken = e.cond == ControlEdge::Cond::kIfTrue ? c != 0 : c == 0;
        if (taken) {
          next = e.to;
          break;
        }
      }
    }
    if (next < 0) return Error::Internal("no control successor taken");
    b = next;
  }
  return state;
}

}  // namespace cgra
