#include "ir/op.hpp"

#include <cassert>
#include <cstdlib>

namespace cgra {

int OpArity(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kInput:
    case Opcode::kIterIdx:
    case Opcode::kVarIn:
      return 0;
    case Opcode::kOutput:
    case Opcode::kVarOut:
    case Opcode::kNeg:
    case Opcode::kNot:
    case Opcode::kAbs:
    case Opcode::kRoute:
    case Opcode::kLoad:
      return 1;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kStore:
    case Opcode::kPhi:
      return 2;
    case Opcode::kSelect:
      return 3;
  }
  return 0;
}

std::string_view OpName(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kInput: return "input";
    case Opcode::kIterIdx: return "iter";
    case Opcode::kOutput: return "output";
    case Opcode::kNeg: return "neg";
    case Opcode::kNot: return "not";
    case Opcode::kAbs: return "abs";
    case Opcode::kRoute: return "route";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kCmpNe: return "cmpne";
    case Opcode::kCmpLt: return "cmplt";
    case Opcode::kCmpLe: return "cmple";
    case Opcode::kSelect: return "select";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kPhi: return "phi";
    case Opcode::kVarIn: return "varin";
    case Opcode::kVarOut: return "varout";
  }
  return "?";
}

bool IsMemoryOp(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore;
}

bool IsIoOp(Opcode op) {
  return op == Opcode::kInput || op == Opcode::kOutput ||
         op == Opcode::kVarIn || op == Opcode::kVarOut;
}

bool IsCommutative(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
      return true;
    default:
      return false;
  }
}

std::int64_t EvalAlu(Opcode op, std::int64_t a, std::int64_t b, std::int64_t c) {
  switch (op) {
    case Opcode::kNeg: return -a;
    case Opcode::kNot: return ~a;
    case Opcode::kAbs: return a < 0 ? -a : a;
    case Opcode::kRoute: return a;
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kMul: return a * b;
    case Opcode::kDiv: return b == 0 ? 0 : a / b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return a << (b & 63);
    case Opcode::kShr: return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) >> (b & 63));
    case Opcode::kMin: return a < b ? a : b;
    case Opcode::kMax: return a > b ? a : b;
    case Opcode::kCmpEq: return a == b ? 1 : 0;
    case Opcode::kCmpNe: return a != b ? 1 : 0;
    case Opcode::kCmpLt: return a < b ? 1 : 0;
    case Opcode::kCmpLe: return a <= b ? 1 : 0;
    case Opcode::kSelect: return a != 0 ? b : c;
    default:
      assert(false && "not an ALU opcode");
      return 0;
  }
}

}  // namespace cgra
