// Operation set of the data-flow IR.
//
// The survey's compilation model (Fig. 3): the front-end/middle-end
// produce a graph IR whose nodes are operations and whose edges are
// data dependencies; the back-end (this library) maps it. We model a
// conventional integer ISA-neutral op set: word-level arithmetic and
// logic (this is exactly the "coarse grain" in CGRA), memory accesses,
// stream I/O, predication support, and the `kRoute` pass-through that
// mappers insert to carry values across cells/cycles (EPIMap-style
// routing nodes).
#pragma once

#include <cstdint>
#include <string_view>

namespace cgra {

enum class Opcode : std::uint8_t {
  // Nullary producers.
  kConst,   ///< immediate value (`imm`)
  kInput,   ///< per-iteration stream input (`slot` selects the stream)
  kIterIdx, ///< current loop iteration index (hardware-loop counter view)
  // Sinks.
  kOutput,  ///< per-iteration stream output (`slot` selects the stream)
  // Unary.
  kNeg,
  kNot,
  kAbs,
  kRoute,   ///< identity; occupies a cell slot purely to move data
  // Binary ALU.
  kAdd,
  kSub,
  kMul,
  kDiv,     ///< guarded: x/0 == 0 (keeps simulation total)
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kMin,
  kMax,
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  // Ternary.
  kSelect,  ///< select(c, a, b) == c != 0 ? a : b  (predication join)
  // Memory (`array` selects the memory array; address is operand 0).
  kLoad,
  kStore,   ///< store(addr, value); produces the stored value
  // Control-flow support.
  kPhi,     ///< join of two reaching definitions (lowered before mapping)
  kVarIn,   ///< CDFG live-in: reads variable `slot` from the var file
  kVarOut,  ///< CDFG live-out: writes operand 0 to variable `slot`
};

/// Number of data operands the opcode consumes.
int OpArity(Opcode op);

/// Mnemonic, e.g. "add".
std::string_view OpName(Opcode op);

/// True for kLoad/kStore (these must bind to memory-capable cells).
bool IsMemoryOp(Opcode op);

/// True for kInput/kOutput (these bind to array-boundary I/O cells when
/// the architecture distinguishes them).
bool IsIoOp(Opcode op);

/// True if operands can be swapped without changing the result.
bool IsCommutative(Opcode op);

/// Scalar semantics; `a`,`b`,`c` are operand values (unused ones
/// ignored). Memory and I/O opcodes are handled by the interpreter,
/// not here.
std::int64_t EvalAlu(Opcode op, std::int64_t a, std::int64_t b, std::int64_t c);

}  // namespace cgra
