// Kernel library: the workloads every mapper and every bench runs.
//
// The survey's two CGRA "waves" (§IV) frame the suite: first-wave
// multimedia/DSP kernels (dot product — the paper's running example in
// Fig. 3 — FIR, IIR, Sobel, SAD, DCT butterflies) and second-wave AI
// kernels (MAC/GEMM, ReLU, pooling). Each kernel is one loop body as a
// DFG plus deterministic inputs sized for `iterations`, so reference
// interpreter and CGRA simulator outputs can be compared bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/cdfg.hpp"
#include "ir/dfg.hpp"
#include "ir/interp.hpp"
#include "support/rng.hpp"

namespace cgra {

struct Kernel {
  std::string name;
  std::string description;
  Dfg dfg;
  ExecInput input;
};

// ---- first wave: multimedia / DSP -----------------------------------------
Kernel MakeDotProduct(int iterations, std::uint64_t seed);   ///< acc += a[i]*b[i]
Kernel MakeVecAdd(int iterations, std::uint64_t seed);       ///< c[i] = a[i]+b[i]
Kernel MakeSaxpy(int iterations, std::uint64_t seed);        ///< y[i] = 7*x[i]+y0[i]
Kernel MakeFir4(int iterations, std::uint64_t seed);         ///< 4-tap FIR
Kernel MakeIir1(int iterations, std::uint64_t seed);         ///< y = 3x + 2*y@1
Kernel MakeMovingAvg3(int iterations, std::uint64_t seed);   ///< window mean
Kernel MakeSobelRow(int iterations, std::uint64_t seed);     ///< 3x3 Gx on rows
Kernel MakeSad(int iterations, std::uint64_t seed);          ///< acc += |a-b|
Kernel MakeButterfly(int iterations, std::uint64_t seed);    ///< FFT/DCT stage
// ---- memory-bound (exercise kLoad/kStore) ----------------------------------
Kernel MakeMatVecRow(int iterations, std::uint64_t seed);    ///< y += A[i]*x[i] (loads)
Kernel MakeGemmMac(int iterations, std::uint64_t seed);      ///< C[i]+=A[i]*B[i] (ld/st)
Kernel MakeHistogram8(int iterations, std::uint64_t seed);   ///< h[x&7]++ (carried mem dep)
// ---- second wave: AI ---------------------------------------------------------
Kernel MakeReluScale(int iterations, std::uint64_t seed);    ///< max(0,x)*w
Kernel MakeRunningMaxPool(int iterations, std::uint64_t seed);///< m = max(x, m@1)
Kernel MakeMac2(int iterations, std::uint64_t seed);         ///< dual-MAC reduction
// ---- extra DSP kernels (used by examples/tests; not in the standard
// suite, so bench baselines stay stable) --------------------------------------
Kernel MakeComplexMul(int iterations, std::uint64_t seed);   ///< (a+bi)*(c+di)
Kernel MakeAlphaBlend(int iterations, std::uint64_t seed);   ///< (a*p + (256-a)*q)>>8
Kernel MakeDct4Stage(int iterations, std::uint64_t seed);    ///< 4-pt DCT butterflies

/// A width-scalable workload for the §IV-B scalability studies:
/// `lanes` independent MAC lanes reduced by an adder tree (the shape
/// of an unrolled dot product / one GEMM output tile). Op count grows
/// roughly as 4*lanes.
Kernel MakeWideDotProduct(int lanes, int iterations, std::uint64_t seed);

/// The full suite, deterministic for a given seed.
std::vector<Kernel> StandardKernelSuite(int iterations = 64,
                                        std::uint64_t seed = 0x5EED);

/// A reduced suite of the smallest kernels (exact mappers get these).
std::vector<Kernel> TinyKernelSuite(int iterations = 16,
                                    std::uint64_t seed = 0x5EED);

// ---- control-flow kernels (for §III-B experiments) --------------------------

/// An if-then-else loop body in two equivalent forms: a predicated DFG
/// (phi join, region tags) and a CDFG diamond. Semantics:
///   t = x[i];  if (t > thr) y = (t*3 - 1)  else  y = (t + 100);  out y
struct IteKernel {
  std::string name;
  /// Single-DFG form with a kPhi join guarded by the condition.
  Dfg dfg;
  OpId cond = kNoOp;                 ///< condition op in `dfg`
  std::vector<OpId> then_ops;        ///< ops of the taken region
  std::vector<OpId> else_ops;        ///< ops of the not-taken region
  std::vector<OpId> phi_ops;         ///< join ops
  /// CDFG diamond form (entry -> cond -> then/else -> join/exit).
  Cdfg cdfg;
  ExecInput input;
};
IteKernel MakeThresholdIte(int iterations, std::uint64_t seed);
IteKernel MakeClampIte(int iterations, std::uint64_t seed);   ///< nested arith, fatter branches

// ---- random DFGs (property tests) -------------------------------------------
struct RandomDfgOptions {
  int num_ops = 12;
  int num_inputs = 2;
  int num_outputs = 1;
  double carried_fraction = 0.15;  ///< chance an operand is loop-carried
  int max_distance = 2;
  bool allow_memory = false;
};
/// A structurally valid random loop-body DFG (Verify() passes) plus
/// matching random inputs.
Kernel MakeRandomKernel(Rng& rng, const RandomDfgOptions& options,
                        int iterations = 16);

}  // namespace cgra
