// Metrics: named counters, gauges, and fixed-bucket histograms — the
// "how often / how big" half of the telemetry subsystem (telemetry.hpp
// is the "where did the time go" half).
//
// All hot-path operations are single relaxed atomics (Counter::Add,
// Gauge::Set/Add, Histogram::Observe is one atomic per observation
// plus two for sum/count), so instrumented code can update metrics
// unconditionally. Metric objects are registered once by name in a
// MetricsRegistry and live as long as the registry: Get* returns a
// stable reference callers may cache in a function-local static.
//
// Two dump formats:
//   * ToPrometheus(): the Prometheus text exposition format
//     (cumulative `_bucket{le="..."}` histogram lines, `_sum`,
//     `_count`), for scraping or diffing.
//   * ToJson(): a snapshot object embedded in the cgra_batch report
//     (docs/OBSERVABILITY.md documents both schemas and every metric
//     name the repo registers).
//
// CGRA_TELEMETRY=0 compiles the whole surface to no-ops; the dumps
// return "{}" / "".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef CGRA_TELEMETRY
#define CGRA_TELEMETRY 1
#endif

#if CGRA_TELEMETRY

#include <atomic>
#include <memory>
#include <mutex>

namespace cgra::telemetry {

/// Monotonically increasing count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, live jobs). Tracks the running
/// value and the high-water mark since the last Reset.
class Gauge {
 public:
  void Set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    BumpMax(v);
  }
  void Add(std::int64_t d) {
    const std::int64_t now = v_.fetch_add(d, std::memory_order_relaxed) + d;
    BumpMax(now);
  }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void BumpMax(std::int64_t v) {
    std::int64_t m = max_.load(std::memory_order_relaxed);
    while (v > m &&
           !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram. `bounds` are strictly increasing inclusive
/// upper bounds; an observation lands in the first bucket whose bound
/// is >= the value, or in the implicit +Inf overflow bucket. Bucket
/// counts are stored non-cumulative; the Prometheus dump accumulates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  /// Sum stored as fixed-point nanounits to stay a lock-free integer
  /// atomic (double CAS loops on the hot path are not worth exact
  /// float accumulation for telemetry).
  std::atomic<std::int64_t> sum_nano_{0};
};

/// Name → metric, with stable references. One process-wide instance
/// (Global()); tests may build private registries.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. `help` is kept from the first registration.
  /// For GetHistogram, `bounds` is used only on first registration.
  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "");

  /// Prometheus text exposition format, metrics in name order.
  std::string ToPrometheus() const;

  /// {"counters":{name:value,...},"gauges":{name:{"value":v,"max":m}},
  ///  "histograms":{name:{"bounds":[...],"buckets":[...],
  ///                      "sum":s,"count":n}}}
  std::string ToJson() const;

  /// Zeroes every metric's value; registrations (and references)
  /// survive. Test isolation, not a lifecycle operation.
  void Reset();

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  /// Sorted by name at dump time; insertion order preserved here.
  std::vector<std::pair<std::string, Entry>> entries_;

  Entry* Find(const std::string& name);
};

/// Registers the build_info gauge family in the global registry
/// (idempotent; re-registration just re-sets the values):
///   cgra_build_info                      always 1 — presence marker
///   cgra_build_api_schema_version        api::kSchemaVersion
///   cgra_build_search_log_schema_version SearchLog::kSchemaVersion
///   cgra_build_telemetry_compiled       1 here; the whole dump is
///                                        empty when compiled out
/// Plain gauges rather than labels because the registry is label-free;
/// tools call this once at startup so every /metrics or
/// aggregate.metrics snapshot states which schemas produced it.
void RegisterBuildInfo(int api_schema_version, int search_schema_version);

}  // namespace cgra::telemetry

#else  // CGRA_TELEMETRY == 0

namespace cgra::telemetry {

class Counter {
 public:
  void Add(std::uint64_t = 1) {}
  std::uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(std::int64_t) {}
  void Add(std::int64_t) {}
  std::int64_t Value() const { return 0; }
  std::int64_t Max() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double>) {}
  void Observe(double) {}
  std::uint64_t Count() const { return 0; }
  double Sum() const { return 0; }
  std::vector<std::uint64_t> BucketCounts() const { return {}; }
  void Reset() {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry r;
    return r;
  }
  Counter& GetCounter(const std::string&, const std::string& = "") {
    static Counter c;
    return c;
  }
  Gauge& GetGauge(const std::string&, const std::string& = "") {
    static Gauge g;
    return g;
  }
  Histogram& GetHistogram(const std::string&, std::vector<double>,
                          const std::string& = "") {
    static Histogram h{{}};
    return h;
  }
  std::string ToPrometheus() const { return ""; }
  std::string ToJson() const { return "{}"; }
  void Reset() {}
};

inline void RegisterBuildInfo(int, int) {}

}  // namespace cgra::telemetry

#endif  // CGRA_TELEMETRY
