// Span tracing: the "where did the time go" half of the telemetry
// subsystem (metrics.hpp is the "how often / how big" half).
//
// A Span is an RAII bracket around one unit of work — a batch job, an
// engine run, a mapper, an II attempt, a place/route phase, a solver
// search, a cache probe, a pool task. Spans nest (a thread-local depth
// counter), carry the calling thread's id and a steady-clock duration,
// and are recorded into a lock-free single-producer ring buffer owned
// by the emitting thread. A process-wide TraceSink registers every
// thread's ring and drains them all into one event list, which
// chrome_trace.hpp serialises as Chrome trace-event JSON loadable in
// chrome://tracing or Perfetto (docs/OBSERVABILITY.md documents the
// span taxonomy and the file schema).
//
// Cost model:
//   * CGRA_TELEMETRY=0 (compile-time kill switch, -DCGRA_TELEMETRY=0):
//     every type here becomes an empty inline no-op; zero code, zero
//     data, zero branches in the binary.
//   * Compiled in but runtime-disabled (the default): each Span costs
//     one relaxed atomic load.
//   * Enabled: two steady_clock reads plus one ring-buffer store per
//     span; no locks, no allocation on the hot path (thread
//     registration allocates once per thread).
//
// Correlation: NewCorrelation() mints process-unique ids; a Span may
// carry one, nested spans inherit it, and the mapper attempt brackets
// stamp the same id on their MapEvent so a MapTrace row can be joined
// against the spans (and metrics) behind it.
#pragma once

#include <cstdint>
#include <string_view>

#ifndef CGRA_TELEMETRY
#define CGRA_TELEMETRY 1
#endif

#if CGRA_TELEMETRY

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace cgra::telemetry {

/// One finished span. A fixed-size POD so the per-thread rings never
/// allocate; names and details are truncated to fit (span names are
/// short compile-time constants by convention).
struct SpanRecord {
  char name[32] = {};    ///< taxonomy name, e.g. "engine.run"
  char detail[40] = {};  ///< free-form qualifier, e.g. "ims ii=4"
  std::uint64_t start_ns = 0;     ///< steady ns since the sink anchor
  std::uint64_t dur_ns = 0;       ///< span duration
  std::uint64_t correlation = 0;  ///< 0 = none
  std::uint32_t tid = 0;          ///< dense per-process thread index
  std::uint32_t depth = 0;        ///< nesting depth at span open
};

/// Process-wide runtime gate. Off by default; cgra_batch --trace and
/// the tests flip it. Reads are relaxed: a span that straddles the
/// flip is recorded or not, both fine.
bool Enabled();
void SetEnabled(bool enabled);

/// Extra gate for per-query spans on truly hot paths (one span per
/// router query). Off unless explicitly requested; coarse phase spans
/// do not consult it.
bool DetailEnabled();
void SetDetail(bool enabled);

/// Steady nanoseconds since the TraceSink's anchor (process start).
std::uint64_t NowNs();

/// Mints a process-unique nonzero correlation id.
std::uint64_t NewCorrelation();

/// The correlation id of the innermost enclosing span that set one
/// (0 when none). Used to stamp MapEvents emitted inside a span.
std::uint64_t CurrentCorrelation();

/// The calling thread's dense telemetry thread index.
std::uint32_t CurrentThreadId();

/// The process-wide collector. Each thread's first span registers a
/// ring buffer here; Drain() snapshots every ring's unread records
/// (safe to call while other threads keep emitting — each ring is
/// single-producer single-consumer with acquire/release indices).
class TraceSink {
 public:
  static TraceSink& Global();

  /// Moves every unread record out of every thread ring, in no
  /// particular global order (per-thread order is preserved).
  std::vector<SpanRecord> Drain();

  /// Records dropped on ring overflow since the last Clear().
  std::uint64_t dropped() const;

  /// Wall-clock microseconds since the Unix epoch at the steady
  /// anchor, so exported steady timestamps can be pinned to wall time.
  std::int64_t wall_anchor_micros() const;

  /// Discards all unread records and resets the drop counter (test
  /// isolation; emitting threads may race a Clear harmlessly).
  void Clear();

  // Internal: the per-thread ring. SPSC — the owning thread writes,
  // Drain()/Clear() read under the sink's registry lock.
  struct ThreadRing {
    static constexpr std::size_t kCapacity = 1 << 14;  // 16384 records
    std::vector<SpanRecord> ring{kCapacity};
    std::atomic<std::uint64_t> head{0};  ///< records written (producer)
    std::atomic<std::uint64_t> tail{0};  ///< records consumed (drainer)
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid = 0;
  };

  /// The calling thread's ring, registered on first use.
  ThreadRing& LocalRing();

 private:
  TraceSink();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::atomic<std::uint32_t> next_tid_{0};
  std::int64_t wall_anchor_micros_ = 0;
};

/// Records a span with explicit endpoints (for spans whose start was
/// measured elsewhere, e.g. queue wait measured from Submit time).
void RecordSpan(const char* name, std::string_view detail,
                std::uint64_t start_ns, std::uint64_t end_ns,
                std::uint64_t correlation = 0);

/// RAII span. Construction is a no-op when tracing is disabled, or
/// when `name` is nullptr (caller-side suppression for conditional
/// spans: `Span s(DetailEnabled() ? "phase.route" : nullptr)`).
class Span {
 public:
  explicit Span(const char* name) : Span(name, {}, 0) {}
  /// `correlation`: nonzero installs the id as the thread's current
  /// correlation for the span's extent; 0 inherits the enclosing one.
  Span(const char* name, std::string_view detail,
       std::uint64_t correlation = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The id this span carries (inherited or installed); 0 when the
  /// span is inactive (tracing disabled at construction).
  std::uint64_t correlation() const { return correlation_; }

 private:
  const char* name_ = nullptr;
  char detail_[40] = {};
  std::uint64_t start_ns_ = 0;
  std::uint64_t correlation_ = 0;
  std::uint64_t saved_correlation_ = 0;
  bool active_ = false;
  bool restore_correlation_ = false;
};

}  // namespace cgra::telemetry

#else  // CGRA_TELEMETRY == 0: the whole surface compiles to nothing.

namespace cgra::telemetry {

struct SpanRecord {};

inline constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
inline constexpr bool DetailEnabled() { return false; }
inline void SetDetail(bool) {}
inline std::uint64_t NowNs() { return 0; }
inline std::uint64_t NewCorrelation() { return 0; }
inline std::uint64_t CurrentCorrelation() { return 0; }
inline std::uint32_t CurrentThreadId() { return 0; }

inline void RecordSpan(const char*, std::string_view, std::uint64_t,
                       std::uint64_t, std::uint64_t = 0) {}

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, std::string_view, std::uint64_t = 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  std::uint64_t correlation() const { return 0; }
};

}  // namespace cgra::telemetry

#endif  // CGRA_TELEMETRY
