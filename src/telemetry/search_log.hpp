// Search introspection: the "where did the search spend its effort"
// half of observability that MapTrace cannot answer on its own.
//
// A SearchLog is a low-overhead accumulator for one (mapper, II)
// attempt: placement accept/reject/eviction counters (with per-reason
// reject breakdowns), routing effort folded into a per-cell fabric
// congestion heatmap, solver progress samples (decisions / conflicts /
// restarts / objective), and annealing/GA cost-vs-iteration curves.
// The mapper attempt brackets (mappers/common.cpp) install a collector
// in a thread-local slot for the attempt's extent; the recording
// helpers below are a single thread-local load plus a branch when no
// collector is installed, so the instrumented hot paths
// (PlaceRouteState::TryPlace, the routers, the solver inner loops)
// stay unconditionally instrumented.
//
// Determinism contract: a SearchLog never records wall time — every
// series is indexed by event counts (iterations, restarts,
// generations), so two runs of the same mapper on the same inputs
// produce byte-identical logs, and collection never perturbs the
// mapping itself (the golden-digest tests pin both properties).
//
// Gates, coarse to fine:
//   * -DCGRA_TELEMETRY=0 compiles the whole surface to inline no-ops;
//   * SearchDetail (process-wide runtime level): kOff collects
//     nothing, kCounters (default) collects counters + heatmap +
//     bounded solver/cost samples, kFull adds the placement-progress
//     time series;
//   * per-attempt: a collector is only installed when
//     MapperOptions::search_log is set (the engine sets it from
//     EngineOptions::telemetry) and an observer is attached.
//
// The finished log rides the kAttemptDone MapEvent as a shared_ptr,
// lands in MapTrace::ToJson under a schema-versioned "search" key, and
// crosses the sandbox wire frame as serialised JSON
// (docs/OBSERVABILITY.md documents the schema).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#ifndef CGRA_TELEMETRY
#define CGRA_TELEMETRY 1
#endif

#if CGRA_TELEMETRY

#include <vector>

namespace cgra::telemetry {

/// Runtime collection level for search logs.
enum class SearchDetail {
  kOff,       ///< collect nothing (collectors are never installed)
  kCounters,  ///< counters, heatmap, bounded solver/cost samples
  kFull,      ///< + the placement-progress time series
};

SearchDetail GetSearchDetail();
void SetSearchDetail(SearchDetail detail);

/// "off" / "counters" / "full".
std::string_view SearchDetailName(SearchDetail detail);
/// Inverse of SearchDetailName; false on unknown names.
bool ParseSearchDetail(std::string_view name, SearchDetail* out);

/// One attempt's search-effort record. Plain aggregates + bounded
/// sample vectors; the recording helpers below do the decimation.
struct SearchLog {
  static constexpr int kSchemaVersion = 1;

  /// Indexed by PlaceRouteState::FailReason's numeric value (0 is the
  /// unused kNone slot). Kept as a fixed array so recording a reject
  /// is one increment.
  static constexpr int kNumRejectReasons = 6;
  static const char* const kRejectReasonNames[kNumRejectReasons];

  // Placement counters (PlaceRouteState::TryPlace / Unplace).
  std::uint64_t place_accepts = 0;
  std::uint64_t place_rejects = 0;
  std::uint64_t place_evictions = 0;  ///< Unplace during search (backtracks)
  std::uint64_t reject_reasons[kNumRejectReasons] = {};

  // Routing effort (edge-level, not per-query: one attempt per edge or
  // fanout batch member the placer asked the router to commit).
  std::uint64_t route_attempts = 0;
  std::uint64_t route_failures = 0;
  std::uint64_t route_steps = 0;        ///< committed HOLD/RT occupancies
  std::uint64_t shared_route_steps = 0; ///< steps on cell-less (shared RF) nodes

  // Fabric congestion heatmap, indexed by cell id (rows * cols cells).
  // `cell_routed` counts committed route steps through each cell;
  // `cell_congested` charges each routing failure to the sink cell the
  // router could not reach.
  int rows = 0;
  int cols = 0;
  std::vector<std::uint32_t> cell_routed;
  std::vector<std::uint32_t> cell_congested;

  /// Solver progress samples (SAT restarts; CP/ILP final totals).
  struct SolverSample {
    std::int64_t decisions = 0;
    std::int64_t conflicts = 0;  ///< conflicts / backtracks / nodes
    std::int64_t restarts = 0;
    bool operator==(const SolverSample&) const = default;
  };
  std::vector<SolverSample> solver;

  /// Last branch-and-bound objective (ILP mappers); NaN-free.
  bool has_objective = false;
  double objective = 0.0;
  std::int64_t objective_nodes = 0;

  /// Cost-vs-iteration curve (annealing energy, GA/QEA best fitness).
  /// Decimated to kMaxCurve points by stride doubling, so the curve
  /// stays bounded and deterministic whatever the iteration count.
  struct CostSample {
    std::int64_t iteration = 0;
    double cost = 0.0;
    bool operator==(const CostSample&) const = default;
  };
  std::vector<CostSample> curve;

  /// Placement counters over time (kFull only), indexed by the running
  /// placement-event count — never wall time.
  struct Progress {
    std::uint64_t events = 0;
    std::uint64_t accepts = 0;
    std::uint64_t rejects = 0;
    std::uint64_t evictions = 0;
    bool operator==(const Progress&) const = default;
  };
  std::vector<Progress> progress;

  // Decimation bounds (inclusive caps on the sample vectors).
  static constexpr std::size_t kMaxSolver = 64;
  static constexpr std::size_t kMaxCurve = 128;
  static constexpr std::size_t kMaxProgress = 256;

  /// True when anything at all was recorded.
  bool Any() const {
    return place_accepts || place_rejects || place_evictions ||
           route_attempts || route_failures || !solver.empty() ||
           has_objective || !curve.empty();
  }

  void Clear() { *this = SearchLog{}; }

  /// Schema-versioned JSON object ({"v":1,"place":{...},...}); empty
  /// sections are omitted. Deterministic: same log, same bytes.
  std::string ToJson() const;

  /// Parses ToJson output. Absent "v" means version 1; any other
  /// version than kSchemaVersion is a structured failure (false, with
  /// *error naming the skew) — a v1 reader must not misread a v2 log.
  static bool FromJson(std::string_view json, SearchLog* out,
                       std::string* error);

  // ---- sampling (called via the free helpers below) ----
  void SetGrid(int grid_rows, int grid_cols);
  void AddCurvePoint(std::int64_t iteration, double cost);
  void AddSolverSample(std::int64_t decisions, std::int64_t conflicts,
                       std::int64_t restarts);
  void AddProgressPoint();

  /// kFull collection was active when the collector was installed.
  bool full_detail = false;

 private:
  std::int64_t curve_stride_ = 1;
  std::uint64_t progress_stride_ = 1;
};

/// The calling thread's active collector; nullptr when no attempt is
/// being introspected (the common case — every recording helper is
/// then one thread-local load and a not-taken branch).
inline thread_local SearchLog* tl_search_log = nullptr;

inline SearchLog* ActiveSearchLog() { return tl_search_log; }

/// RAII collector installer for one attempt's extent. A null `log`
/// installs nothing and masks nothing (so a sandbox child's whole-Map
/// collector is not displaced by nested attempt brackets that opted
/// out).
class ScopedSearchLog {
 public:
  explicit ScopedSearchLog(SearchLog* log) {
    if (log == nullptr) return;
    log->full_detail = GetSearchDetail() == SearchDetail::kFull;
    saved_ = tl_search_log;
    tl_search_log = log;
    installed_ = true;
  }
  ~ScopedSearchLog() {
    if (installed_) tl_search_log = saved_;
  }
  ScopedSearchLog(const ScopedSearchLog&) = delete;
  ScopedSearchLog& operator=(const ScopedSearchLog&) = delete;

 private:
  SearchLog* saved_ = nullptr;
  bool installed_ = false;
};

// ---- recording helpers (hot paths; no-ops without a collector) ----

inline void SearchRecordGrid(int rows, int cols) {
  if (SearchLog* log = tl_search_log) log->SetGrid(rows, cols);
}

inline void SearchRecordPlaceAccept() {
  if (SearchLog* log = tl_search_log) {
    ++log->place_accepts;
    if (log->full_detail) log->AddProgressPoint();
  }
}

/// `reason` is PlaceRouteState::FailReason's numeric value.
inline void SearchRecordPlaceReject(int reason) {
  if (SearchLog* log = tl_search_log) {
    ++log->place_rejects;
    if (reason >= 0 && reason < SearchLog::kNumRejectReasons) {
      ++log->reject_reasons[reason];
    }
    if (log->full_detail) log->AddProgressPoint();
  }
}

inline void SearchRecordEviction() {
  if (SearchLog* log = tl_search_log) {
    ++log->place_evictions;
    if (log->full_detail) log->AddProgressPoint();
  }
}

inline void SearchRecordRouteResult(bool ok) {
  if (SearchLog* log = tl_search_log) {
    ++log->route_attempts;
    if (!ok) ++log->route_failures;
  }
}

/// One committed route step through `cell` (-1 = shared, cell-less
/// resource).
inline void SearchRecordCellRouted(int cell) {
  if (SearchLog* log = tl_search_log) {
    ++log->route_steps;
    if (cell < 0) {
      ++log->shared_route_steps;
    } else if (static_cast<std::size_t>(cell) < log->cell_routed.size()) {
      ++log->cell_routed[static_cast<std::size_t>(cell)];
    }
  }
}

/// Charges one routing failure to the sink cell the router could not
/// reach.
inline void SearchRecordCellCongested(int cell) {
  if (SearchLog* log = tl_search_log) {
    if (cell >= 0 &&
        static_cast<std::size_t>(cell) < log->cell_congested.size()) {
      ++log->cell_congested[static_cast<std::size_t>(cell)];
    }
  }
}

inline void SearchRecordSolverSample(std::int64_t decisions,
                                     std::int64_t conflicts,
                                     std::int64_t restarts) {
  if (SearchLog* log = tl_search_log) {
    log->AddSolverSample(decisions, conflicts, restarts);
  }
}

inline void SearchRecordObjective(double objective, std::int64_t nodes) {
  if (SearchLog* log = tl_search_log) {
    log->has_objective = true;
    log->objective = objective;
    log->objective_nodes = nodes;
  }
}

inline void SearchRecordCost(std::int64_t iteration, double cost) {
  if (SearchLog* log = tl_search_log) log->AddCurvePoint(iteration, cost);
}

}  // namespace cgra::telemetry

#else  // CGRA_TELEMETRY == 0: the whole surface compiles to nothing.

namespace cgra::telemetry {

enum class SearchDetail { kOff, kCounters, kFull };

inline constexpr SearchDetail GetSearchDetail() { return SearchDetail::kOff; }
inline void SetSearchDetail(SearchDetail) {}

inline std::string_view SearchDetailName(SearchDetail detail) {
  switch (detail) {
    case SearchDetail::kCounters: return "counters";
    case SearchDetail::kFull: return "full";
    default: return "off";
  }
}

inline bool ParseSearchDetail(std::string_view name, SearchDetail* out) {
  if (name == "off") {
    *out = SearchDetail::kOff;
  } else if (name == "counters") {
    *out = SearchDetail::kCounters;
  } else if (name == "full") {
    *out = SearchDetail::kFull;
  } else {
    return false;
  }
  return true;
}

struct SearchLog {
  static constexpr int kSchemaVersion = 1;
  bool Any() const { return false; }
  void Clear() {}
  std::string ToJson() const { return "{}"; }
  static bool FromJson(std::string_view, SearchLog*, std::string* error) {
    if (error) *error = "telemetry compiled out";
    return false;
  }
};

inline SearchLog* ActiveSearchLog() { return nullptr; }

class ScopedSearchLog {
 public:
  explicit ScopedSearchLog(SearchLog*) {}
  ScopedSearchLog(const ScopedSearchLog&) = delete;
  ScopedSearchLog& operator=(const ScopedSearchLog&) = delete;
};

inline void SearchRecordGrid(int, int) {}
inline void SearchRecordPlaceAccept() {}
inline void SearchRecordPlaceReject(int) {}
inline void SearchRecordEviction() {}
inline void SearchRecordRouteResult(bool) {}
inline void SearchRecordCellRouted(int) {}
inline void SearchRecordCellCongested(int) {}
inline void SearchRecordSolverSample(std::int64_t, std::int64_t,
                                     std::int64_t) {}
inline void SearchRecordObjective(double, std::int64_t) {}
inline void SearchRecordCost(std::int64_t, double) {}

}  // namespace cgra::telemetry

#endif  // CGRA_TELEMETRY
