// Chrome trace-event export for the span tracer.
//
// Serialises drained SpanRecords as the Trace Event Format's JSON
// object form ({"traceEvents":[...]}) with balanced duration-begin /
// duration-end ("B"/"E") pairs, which chrome://tracing and Perfetto
// both load directly. Every span contributes one B and one E event on
// its thread's track, ordered so that nesting reconstructs exactly
// (ties at the same microsecond are broken by recorded span depth).
// Metadata events name the process and threads, and an "otherData"
// object carries the wall-clock anchor and the ring-overflow drop
// count so a truncated trace is detectable.
//
// scripts/check_trace_json.py validates this schema in CI;
// docs/OBSERVABILITY.md documents it for humans.
#pragma once

#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace cgra::telemetry {

#if CGRA_TELEMETRY

/// Renders `spans` as a complete Chrome trace JSON document.
/// `wall_anchor_micros` is stamped into otherData; `dropped` is the
/// ring-overflow count (0 = the trace is complete).
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            std::uint64_t dropped,
                            std::int64_t wall_anchor_micros);

/// Drains the global TraceSink and writes the trace to `path`.
/// Returns false when the file cannot be written.
bool WriteChromeTrace(const std::string& path);

#else

inline std::string ChromeTraceJson(const std::vector<SpanRecord>&,
                                   std::uint64_t, std::int64_t) {
  return "{\"traceEvents\":[]}";
}
inline bool WriteChromeTrace(const std::string&) { return false; }

#endif  // CGRA_TELEMETRY

}  // namespace cgra::telemetry
