#include "telemetry/metrics.hpp"

#if CGRA_TELEMETRY

#include <algorithm>
#include <cmath>

#include "support/json.hpp"
#include "support/str.hpp"

namespace cgra::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  // Defensive: a registry fed unsorted bounds would misbucket silently.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  // First bucket whose inclusive upper bound admits v; +Inf overflow
  // bucket otherwise.
  const std::size_t i =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                               bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    sum_nano_.fetch_add(static_cast<std::int64_t>(v * 1e9),
                        std::memory_order_relaxed);
  }
}

double Histogram::Sum() const {
  return static_cast<double>(sum_nano_.load(std::memory_order_relaxed)) * 1e-9;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_nano_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked like the TraceSink: metric references cached in statics may
  // be touched during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (auto& [n, e] : entries_) {
    if (n == name) return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name); e && e->kind == Entry::Kind::kCounter) {
    return *e->counter;
  }
  Entry e;
  e.kind = Entry::Kind::kCounter;
  e.help = help;
  e.counter = std::make_unique<Counter>();
  Counter& ref = *e.counter;
  entries_.emplace_back(name, std::move(e));
  return ref;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name); e && e->kind == Entry::Kind::kGauge) {
    return *e->gauge;
  }
  Entry e;
  e.kind = Entry::Kind::kGauge;
  e.help = help;
  e.gauge = std::make_unique<Gauge>();
  Gauge& ref = *e.gauge;
  entries_.emplace_back(name, std::move(e));
  return ref;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = Find(name); e && e->kind == Entry::Kind::kHistogram) {
    return *e->histogram;
  }
  Entry e;
  e.kind = Entry::Kind::kHistogram;
  e.help = help;
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram& ref = *e.histogram;
  entries_.emplace_back(name, std::move(e));
  return ref;
}

namespace {

/// Prometheus renders +Inf and integers-as-floats its own way.
std::string PromDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::string s = StrFormat("%.9g", v);
  return s;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const std::pair<std::string, Entry>*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& p : entries_) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  std::string out;
  for (const auto* p : sorted) {
    const std::string& name = p->first;
    const Entry& e = p->second;
    if (!e.help.empty()) {
      out += StrFormat("# HELP %s %s\n", name.c_str(), e.help.c_str());
    }
    switch (e.kind) {
      case Entry::Kind::kCounter:
        out += StrFormat("# TYPE %s counter\n%s %llu\n", name.c_str(),
                         name.c_str(),
                         static_cast<unsigned long long>(e.counter->Value()));
        break;
      case Entry::Kind::kGauge:
        out += StrFormat("# TYPE %s gauge\n%s %lld\n", name.c_str(),
                         name.c_str(),
                         static_cast<long long>(e.gauge->Value()));
        break;
      case Entry::Kind::kHistogram: {
        out += StrFormat("# TYPE %s histogram\n", name.c_str());
        const std::vector<std::uint64_t> counts = e.histogram->BucketCounts();
        const std::vector<double>& bounds = e.histogram->bounds();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          const std::string le =
              i < bounds.size() ? PromDouble(bounds[i]) : "+Inf";
          out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                           le.c_str(),
                           static_cast<unsigned long long>(cumulative));
        }
        out += StrFormat("%s_sum %.9g\n%s_count %llu\n", name.c_str(),
                         e.histogram->Sum(), name.c_str(),
                         static_cast<unsigned long long>(e.histogram->Count()));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const std::pair<std::string, Entry>*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& p : entries_) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto* p : sorted) {
    if (p->second.kind != Entry::Kind::kCounter) continue;
    w.Key(p->first).Uint(p->second.counter->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto* p : sorted) {
    if (p->second.kind != Entry::Kind::kGauge) continue;
    w.Key(p->first)
        .BeginObject()
        .Key("value")
        .Int(p->second.gauge->Value())
        .Key("max")
        .Int(p->second.gauge->Max())
        .EndObject();
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto* p : sorted) {
    if (p->second.kind != Entry::Kind::kHistogram) continue;
    const Histogram& h = *p->second.histogram;
    w.Key(p->first).BeginObject();
    w.Key("bounds").BeginArray();
    for (double b : h.bounds()) w.Double(b);
    w.EndArray();
    w.Key("buckets").BeginArray();
    for (std::uint64_t c : h.BucketCounts()) w.Uint(c);
    w.EndArray();
    w.Key("sum").Double(h.Sum());
    w.Key("count").Uint(h.Count());
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

void RegisterBuildInfo(int api_schema_version, int search_schema_version) {
  auto& registry = MetricsRegistry::Global();
  registry
      .GetGauge("cgra_build_info",
                "always 1; the cgra_build_* gauges describe this build")
      .Set(1);
  registry
      .GetGauge("cgra_build_api_schema_version",
                "schema_version of the api request/response JSON")
      .Set(api_schema_version);
  registry
      .GetGauge("cgra_build_search_log_schema_version",
                "schema version of SearchLog JSON (\"search\" trace key)")
      .Set(search_schema_version);
  registry
      .GetGauge("cgra_build_telemetry_compiled",
                "1 when built with -DCGRA_TELEMETRY=1 (when compiled "
                "out this dump is empty altogether)")
      .Set(1);
  // First-class from process start: dashboards alerting on span loss
  // need the counter present at 0, not absent until the first drop
  // (the span tracer bumps this same entry on ring-buffer overflow).
  registry.GetCounter("telemetry_dropped_spans_total",
                      "span records dropped on per-thread ring-buffer "
                      "overflow");
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
        e.counter->Reset();
        break;
      case Entry::Kind::kGauge:
        e.gauge->Reset();
        break;
      case Entry::Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

}  // namespace cgra::telemetry

#endif  // CGRA_TELEMETRY
