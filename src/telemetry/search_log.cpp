#include "telemetry/search_log.hpp"

#if CGRA_TELEMETRY

#include <atomic>

#include "support/json.hpp"

namespace cgra::telemetry {
namespace {

std::atomic<int> g_search_detail{static_cast<int>(SearchDetail::kCounters)};

}  // namespace

SearchDetail GetSearchDetail() {
  return static_cast<SearchDetail>(
      g_search_detail.load(std::memory_order_relaxed));
}

void SetSearchDetail(SearchDetail detail) {
  g_search_detail.store(static_cast<int>(detail), std::memory_order_relaxed);
}

std::string_view SearchDetailName(SearchDetail detail) {
  switch (detail) {
    case SearchDetail::kCounters: return "counters";
    case SearchDetail::kFull: return "full";
    case SearchDetail::kOff: break;
  }
  return "off";
}

bool ParseSearchDetail(std::string_view name, SearchDetail* out) {
  if (name == "off") {
    *out = SearchDetail::kOff;
  } else if (name == "counters") {
    *out = SearchDetail::kCounters;
  } else if (name == "full") {
    *out = SearchDetail::kFull;
  } else {
    return false;
  }
  return true;
}

const char* const SearchLog::kRejectReasonNames[SearchLog::kNumRejectReasons] =
    {"none",          "incompatible_cell", "fu_busy",
     "bank_port_conflict", "timing_violated",   "route_congested"};

void SearchLog::SetGrid(int grid_rows, int grid_cols) {
  if (grid_rows <= 0 || grid_cols <= 0) return;
  if (rows == grid_rows && cols == grid_cols) return;
  rows = grid_rows;
  cols = grid_cols;
  const std::size_t cells =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  cell_routed.assign(cells, 0);
  cell_congested.assign(cells, 0);
}

void SearchLog::AddCurvePoint(std::int64_t iteration, double cost) {
  // Stride-doubling decimation: keep every curve_stride_-th iteration;
  // on overflow halve the retained set and double the stride. Keyed on
  // the iteration index only, so identical runs decimate identically.
  if (iteration % curve_stride_ != 0) return;
  curve.push_back(CostSample{iteration, cost});
  if (curve.size() > kMaxCurve) {
    std::size_t kept = 0;
    for (const CostSample& s : curve) {
      if (s.iteration % (curve_stride_ * 2) == 0) curve[kept++] = s;
    }
    curve.resize(kept);
    curve_stride_ *= 2;
  }
}

void SearchLog::AddSolverSample(std::int64_t decisions, std::int64_t conflicts,
                                std::int64_t restarts) {
  // Same decimation keyed on the sample ordinal (restart count grows
  // monotonically, so later samples subsume dropped ones).
  if (solver.size() >= kMaxSolver) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < solver.size(); i += 2) solver[kept++] = solver[i];
    solver.resize(kept);
  }
  solver.push_back(SolverSample{decisions, conflicts, restarts});
}

void SearchLog::AddProgressPoint() {
  const std::uint64_t events =
      place_accepts + place_rejects + place_evictions;
  if (events % progress_stride_ != 0) return;
  progress.push_back(
      Progress{events, place_accepts, place_rejects, place_evictions});
  if (progress.size() > kMaxProgress) {
    std::size_t kept = 0;
    for (const Progress& p : progress) {
      if (p.events % (progress_stride_ * 2) == 0) progress[kept++] = p;
    }
    progress.resize(kept);
    progress_stride_ *= 2;
  }
}

std::string SearchLog::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("v").Int(kSchemaVersion);
  if (place_accepts || place_rejects || place_evictions) {
    w.Key("place").BeginObject();
    w.Key("accepts").Uint(place_accepts);
    w.Key("rejects").Uint(place_rejects);
    w.Key("evictions").Uint(place_evictions);
    bool any_reason = false;
    for (int i = 0; i < kNumRejectReasons; ++i) any_reason |= reject_reasons[i] != 0;
    if (any_reason) {
      w.Key("reject_reasons").BeginObject();
      for (int i = 0; i < kNumRejectReasons; ++i) {
        if (reject_reasons[i] != 0) {
          w.Key(kRejectReasonNames[i]).Uint(reject_reasons[i]);
        }
      }
      w.EndObject();
    }
    w.EndObject();
  }
  if (route_attempts || route_failures || route_steps) {
    w.Key("route").BeginObject();
    w.Key("attempts").Uint(route_attempts);
    w.Key("failures").Uint(route_failures);
    w.Key("steps").Uint(route_steps);
    w.Key("shared_steps").Uint(shared_route_steps);
    w.EndObject();
  }
  if (rows > 0 && cols > 0) {
    w.Key("fabric").BeginObject();
    w.Key("rows").Int(rows);
    w.Key("cols").Int(cols);
    w.Key("routed").BeginArray();
    for (std::uint32_t v : cell_routed) w.Uint(v);
    w.EndArray();
    w.Key("congested").BeginArray();
    for (std::uint32_t v : cell_congested) w.Uint(v);
    w.EndArray();
    w.EndObject();
  }
  if (!solver.empty()) {
    w.Key("solver").BeginArray();
    for (const SolverSample& s : solver) {
      w.BeginObject();
      w.Key("decisions").Int(s.decisions);
      w.Key("conflicts").Int(s.conflicts);
      w.Key("restarts").Int(s.restarts);
      w.EndObject();
    }
    w.EndArray();
  }
  if (has_objective) {
    w.Key("objective").BeginObject();
    w.Key("value").Double(objective);
    w.Key("nodes").Int(objective_nodes);
    w.EndObject();
  }
  if (!curve.empty()) {
    w.Key("curve").BeginArray();
    for (const CostSample& s : curve) {
      w.BeginArray().Int(s.iteration).Double(s.cost).EndArray();
    }
    w.EndArray();
  }
  if (!progress.empty()) {
    w.Key("progress").BeginArray();
    for (const Progress& p : progress) {
      w.BeginArray()
          .Uint(p.events)
          .Uint(p.accepts)
          .Uint(p.rejects)
          .Uint(p.evictions)
          .EndArray();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.Take();
}

bool SearchLog::FromJson(std::string_view json, SearchLog* out,
                         std::string* error) {
  Result<Json> parsed = Json::Parse(json);
  if (!parsed.ok()) {
    if (error) *error = "search log parse error: " + parsed.error().message;
    return false;
  }
  const Json& root = *parsed;
  if (!root.is_object()) {
    if (error) *error = "search log is not a JSON object";
    return false;
  }
  // Absent "v" means version 1 (matching the API convention); any
  // other version is a structured failure so a v1 reader never
  // misinterprets a future layout.
  const Json* v = root.Find("v");
  const std::int64_t version = v != nullptr ? v->AsInt(-1) : 1;
  if (version != kSchemaVersion) {
    if (error) {
      *error = "unsupported search log schema version " +
               std::to_string(version) + " (expected " +
               std::to_string(kSchemaVersion) + ")";
    }
    return false;
  }
  SearchLog log;
  if (const Json* place = root.Find("place"); place != nullptr) {
    log.place_accepts =
        static_cast<std::uint64_t>(place->Find("accepts") != nullptr
                                       ? place->Find("accepts")->AsInt()
                                       : 0);
    log.place_rejects =
        static_cast<std::uint64_t>(place->Find("rejects") != nullptr
                                       ? place->Find("rejects")->AsInt()
                                       : 0);
    log.place_evictions =
        static_cast<std::uint64_t>(place->Find("evictions") != nullptr
                                       ? place->Find("evictions")->AsInt()
                                       : 0);
    if (const Json* reasons = place->Find("reject_reasons");
        reasons != nullptr && reasons->is_object()) {
      for (int i = 0; i < kNumRejectReasons; ++i) {
        if (const Json* r = reasons->Find(kRejectReasonNames[i]);
            r != nullptr) {
          log.reject_reasons[i] = static_cast<std::uint64_t>(r->AsInt());
        }
      }
    }
  }
  if (const Json* route = root.Find("route"); route != nullptr) {
    auto field = [&](const char* name) -> std::uint64_t {
      const Json* f = route->Find(name);
      return f != nullptr ? static_cast<std::uint64_t>(f->AsInt()) : 0;
    };
    log.route_attempts = field("attempts");
    log.route_failures = field("failures");
    log.route_steps = field("steps");
    log.shared_route_steps = field("shared_steps");
  }
  if (const Json* fabric = root.Find("fabric"); fabric != nullptr) {
    const int rows = fabric->Find("rows") != nullptr
                         ? static_cast<int>(fabric->Find("rows")->AsInt())
                         : 0;
    const int cols = fabric->Find("cols") != nullptr
                         ? static_cast<int>(fabric->Find("cols")->AsInt())
                         : 0;
    if (rows <= 0 || cols <= 0) {
      if (error) *error = "search log fabric has non-positive dimensions";
      return false;
    }
    const std::size_t cells =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    const Json* routed = fabric->Find("routed");
    const Json* congested = fabric->Find("congested");
    if (routed == nullptr || !routed->is_array() ||
        routed->items().size() != cells || congested == nullptr ||
        !congested->is_array() || congested->items().size() != cells) {
      if (error) *error = "search log fabric arrays do not match rows*cols";
      return false;
    }
    log.rows = rows;
    log.cols = cols;
    log.cell_routed.reserve(cells);
    for (const Json& item : routed->items()) {
      log.cell_routed.push_back(static_cast<std::uint32_t>(item.AsInt()));
    }
    log.cell_congested.reserve(cells);
    for (const Json& item : congested->items()) {
      log.cell_congested.push_back(static_cast<std::uint32_t>(item.AsInt()));
    }
  }
  if (const Json* solver = root.Find("solver");
      solver != nullptr && solver->is_array()) {
    for (const Json& item : solver->items()) {
      SolverSample s;
      if (const Json* d = item.Find("decisions")) s.decisions = d->AsInt();
      if (const Json* c = item.Find("conflicts")) s.conflicts = c->AsInt();
      if (const Json* r = item.Find("restarts")) s.restarts = r->AsInt();
      log.solver.push_back(s);
    }
  }
  if (const Json* objective = root.Find("objective"); objective != nullptr) {
    log.has_objective = true;
    if (const Json* value = objective->Find("value")) {
      log.objective = value->AsDouble();
    }
    if (const Json* nodes = objective->Find("nodes")) {
      log.objective_nodes = nodes->AsInt();
    }
  }
  if (const Json* curve = root.Find("curve");
      curve != nullptr && curve->is_array()) {
    for (const Json& item : curve->items()) {
      if (!item.is_array() || item.items().size() != 2) continue;
      log.curve.push_back(
          CostSample{item.items()[0].AsInt(), item.items()[1].AsDouble()});
    }
  }
  if (const Json* progress = root.Find("progress");
      progress != nullptr && progress->is_array()) {
    for (const Json& item : progress->items()) {
      if (!item.is_array() || item.items().size() != 4) continue;
      log.progress.push_back(
          Progress{static_cast<std::uint64_t>(item.items()[0].AsInt()),
                   static_cast<std::uint64_t>(item.items()[1].AsInt()),
                   static_cast<std::uint64_t>(item.items()[2].AsInt()),
                   static_cast<std::uint64_t>(item.items()[3].AsInt())});
    }
  }
  *out = std::move(log);
  return true;
}

}  // namespace cgra::telemetry

#endif  // CGRA_TELEMETRY
