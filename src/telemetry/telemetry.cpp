#include "telemetry/telemetry.hpp"

#include "telemetry/metrics.hpp"

#if CGRA_TELEMETRY

#include <chrono>
#include <cstring>

namespace cgra::telemetry {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_detail{false};
std::atomic<std::uint64_t> g_next_correlation{1};

thread_local std::uint32_t tl_depth = 0;
thread_local std::uint64_t tl_correlation = 0;

// The steady anchor every NowNs() is measured from. Initialised on
// first use, which is also when the wall anchor is captured.
std::chrono::steady_clock::time_point SteadyAnchor() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return anchor;
}

void CopyTruncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  if (enabled) TraceSink::Global();  // pin the anchors before any span
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool DetailEnabled() { return g_detail.load(std::memory_order_relaxed); }
void SetDetail(bool enabled) { g_detail.store(enabled, std::memory_order_relaxed); }

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - SteadyAnchor())
          .count());
}

std::uint64_t NewCorrelation() {
  return g_next_correlation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t CurrentCorrelation() { return tl_correlation; }

std::uint32_t CurrentThreadId() {
  return TraceSink::Global().LocalRing().tid;
}

TraceSink::TraceSink() {
  SteadyAnchor();
  wall_anchor_micros_ =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
}

TraceSink& TraceSink::Global() {
  // Leaked on purpose: threads may emit spans during static
  // destruction, and the rings they hold must outlive them.
  static TraceSink* sink = new TraceSink();
  return *sink;
}

TraceSink::ThreadRing& TraceSink::LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [this] {
    auto r = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> lock(mu_);
    r->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    rings_.push_back(r);
    return r;
  }();
  return *ring;
}

std::vector<SpanRecord> TraceSink::Drain() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& r : rings) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    std::uint64_t tail = r->tail.load(std::memory_order_relaxed);
    for (; tail < head; ++tail) {
      out.push_back(r->ring[tail % ThreadRing::kCapacity]);
    }
    r->tail.store(tail, std::memory_order_release);
  }
  return out;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_) {
    n += r->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

std::int64_t TraceSink::wall_anchor_micros() const {
  return wall_anchor_micros_;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : rings_) {
    r->tail.store(r->head.load(std::memory_order_acquire),
                  std::memory_order_release);
    r->dropped.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// Producer side of the SPSC ring: only the owning thread calls this.
void Push(const SpanRecord& rec) {
  TraceSink::ThreadRing& ring = TraceSink::Global().LocalRing();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
  if (head - tail >= TraceSink::ThreadRing::kCapacity) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    // Also a first-class metric: the per-ring counters are only
    // visible in the Chrome-trace export's otherData, but a truncated
    // trace should be detectable from /metrics and aggregate.metrics
    // too. Drops are rare, so the registry lookup cost is irrelevant.
    static Counter& dropped_total = MetricsRegistry::Global().GetCounter(
        "telemetry_dropped_spans_total",
        "span records dropped on per-thread ring-buffer overflow");
    dropped_total.Add();
    return;
  }
  SpanRecord& slot = ring.ring[head % TraceSink::ThreadRing::kCapacity];
  slot = rec;
  slot.tid = ring.tid;
  ring.head.store(head + 1, std::memory_order_release);
}

}  // namespace

void RecordSpan(const char* name, std::string_view detail,
                std::uint64_t start_ns, std::uint64_t end_ns,
                std::uint64_t correlation) {
  if (!Enabled()) return;
  SpanRecord rec;
  CopyTruncated(rec.name, sizeof(rec.name), name ? name : "");
  CopyTruncated(rec.detail, sizeof(rec.detail), detail);
  rec.start_ns = start_ns;
  rec.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  rec.correlation = correlation ? correlation : tl_correlation;
  rec.depth = tl_depth;
  Push(rec);
}

Span::Span(const char* name, std::string_view detail,
           std::uint64_t correlation) {
  // nullptr name = caller-side suppression (e.g. the router passes
  // DetailEnabled() ? "phase.route" : nullptr).
  if (name == nullptr || !Enabled()) return;
  active_ = true;
  name_ = name;
  CopyTruncated(detail_, sizeof(detail_), detail);
  if (correlation != 0) {
    saved_correlation_ = tl_correlation;
    tl_correlation = correlation;
    restore_correlation_ = true;
  }
  correlation_ = tl_correlation;
  ++tl_depth;
  start_ns_ = NowNs();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end = NowNs();
  --tl_depth;
  SpanRecord rec;
  CopyTruncated(rec.name, sizeof(rec.name), name_ ? name_ : "");
  std::memcpy(rec.detail, detail_, sizeof(rec.detail));
  rec.start_ns = start_ns_;
  rec.dur_ns = end - start_ns_;
  rec.correlation = correlation_;
  rec.depth = tl_depth;
  if (restore_correlation_) tl_correlation = saved_correlation_;
  Push(rec);
}

}  // namespace cgra::telemetry

#endif  // CGRA_TELEMETRY
