#include "telemetry/chrome_trace.hpp"

#if CGRA_TELEMETRY

#include <algorithm>
#include <cstdio>
#include <set>

#include "support/json.hpp"
#include "support/str.hpp"

namespace cgra::telemetry {
namespace {

/// One half of a span, flattened for sorting. Begin events sort after
/// end events at the same timestamp (a span ending exactly where the
/// next begins must close first), outer begins before inner begins,
/// and inner ends before outer ends — all encoded via depth.
struct HalfEvent {
  std::uint64_t ts_ns;
  bool begin;
  std::uint32_t depth;
  const SpanRecord* span;
};

bool HalfLess(const HalfEvent& a, const HalfEvent& b) {
  if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
  if (a.begin != b.begin) return !a.begin;  // E before B at the same tick
  if (a.depth != b.depth) {
    // B: outer (smaller depth) first; E: inner (larger depth) first.
    return a.begin ? a.depth < b.depth : a.depth > b.depth;
  }
  return false;
}

void AppendEvent(JsonWriter& w, const HalfEvent& h) {
  w.BeginObject();
  w.Key("name").String(h.span->name);
  w.Key("ph").String(h.begin ? "B" : "E");
  // Chrome traces use microsecond timestamps; keep three decimals so
  // sub-microsecond spans stay visible.
  w.Key("ts").Double(static_cast<double>(h.ts_ns) / 1000.0);
  w.Key("pid").Int(1);
  w.Key("tid").Int(h.span->tid);
  if (h.begin && (h.span->detail[0] != '\0' || h.span->correlation != 0)) {
    w.Key("args").BeginObject();
    if (h.span->detail[0] != '\0') w.Key("detail").String(h.span->detail);
    if (h.span->correlation != 0) w.Key("corr").Uint(h.span->correlation);
    w.EndObject();
  }
  w.EndObject();
}

void AppendMetadata(JsonWriter& w, const char* name, int tid,
                    const std::string& value) {
  w.BeginObject();
  w.Key("name").String(name);
  w.Key("ph").String("M");
  w.Key("pid").Int(1);
  w.Key("tid").Int(tid);
  w.Key("args").BeginObject().Key("name").String(value).EndObject();
  w.EndObject();
}

}  // namespace

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans,
                            std::uint64_t dropped,
                            std::int64_t wall_anchor_micros) {
  std::vector<HalfEvent> halves;
  halves.reserve(spans.size() * 2);
  std::set<std::uint32_t> tids;
  for (const SpanRecord& s : spans) {
    halves.push_back({s.start_ns, true, s.depth, &s});
    // A span's end must sort strictly after its begin even at zero
    // measured duration (coarse clocks), or the E-before-B tie-break
    // below would close it before it opened.
    const std::uint64_t dur = s.dur_ns > 0 ? s.dur_ns : 1;
    halves.push_back({s.start_ns + dur, false, s.depth, &s});
    tids.insert(s.tid);
  }
  std::stable_sort(halves.begin(), halves.end(), HalfLess);

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  AppendMetadata(w, "process_name", 0, "cgra");
  for (std::uint32_t tid : tids) {
    AppendMetadata(w, "thread_name", static_cast<int>(tid),
                   StrFormat("cgra-thread-%u", tid));
  }
  for (const HalfEvent& h : halves) AppendEvent(w, h);
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.Key("otherData").BeginObject();
  w.Key("wall_anchor_micros").Int(wall_anchor_micros);
  w.Key("dropped_spans").Uint(dropped);
  w.Key("span_count").Uint(spans.size());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

bool WriteChromeTrace(const std::string& path) {
  TraceSink& sink = TraceSink::Global();
  const std::vector<SpanRecord> spans = sink.Drain();
  const std::string json =
      ChromeTraceJson(spans, sink.dropped(), sink.wall_anchor_micros());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

}  // namespace cgra::telemetry

#endif  // CGRA_TELEMETRY
