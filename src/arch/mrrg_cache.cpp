#include "arch/mrrg_cache.hpp"

namespace cgra {

std::shared_ptr<const Mrrg> MrrgCache::Get(const Architecture& arch) {
  // Double-checked pattern is deliberately avoided: construction is the
  // expensive path and contention on the mutex is negligible next to
  // the mapping search it guards. Build under the lock so concurrent
  // first requests for the same fabric do the work once.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(&arch);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  auto mrrg = std::make_shared<const Mrrg>(arch);
  entries_.emplace(&arch, mrrg);
  return mrrg;
}

std::size_t MrrgCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t MrrgCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void MrrgCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace cgra
