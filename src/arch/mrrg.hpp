// Modulo Routing Resource Graph (MRRG).
//
// The temporal coordinate system of the mapping problem — "the time
// extended CGRA (TEC), or the time-space graph" (§II-C). Resources are
// replicated conceptually per cycle modulo II; this class holds the
// *static* resource graph (nodes, capacities, latency-annotated
// links); the router and validator pair each node with a time slot.
//
// Resource kinds per cell:
//   kFu   — executes one operation per slot (capacity 1);
//   kHold — the cell's register file; a value parked here at slot t is
//           readable by the cell's own FU and by linked neighbours'
//           FUs (capacity = Architecture::HoldCapacity());
//   kRt   — the pass-through routing channel: copies a neighbour's
//           held value into this cell's RF without using the FU
//           (capacity = route_channels).
//
// Latencies: FU -> own HOLD is 1 cycle (results are latched); HOLD ->
// HOLD self-link is 1 cycle (the value stays another cycle); HOLD ->
// neighbour RT is 0 (combinational link) and RT -> own HOLD is 1
// (latched), so each routed hop costs one cycle. A consumer FU reads a
// HOLD in the same cycle (combinational operand fetch), so the minimum
// producer->consumer latency is 1 cycle — matching Fig. 3's modulo
// schedule where dependent ops sit in consecutive cycles.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/arch.hpp"

namespace cgra {

class Mrrg {
 public:
  enum class Kind { kFu, kHold, kRt };

  struct Node {
    Kind kind;
    int cell;      ///< owning cell (kShared hold uses cell -1)
    int capacity;  ///< simultaneous values per time slot
  };

  struct Link {
    int to;
    int latency;  ///< cycles consumed by traversing this link
  };

  explicit Mrrg(const Architecture& arch);

  const Architecture& arch() const { return *arch_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int n) const { return nodes_[static_cast<size_t>(n)]; }

  /// Largest per-slot capacity of any node (>= 1 even on an all-dead
  /// fabric). Bounds how long a route may consecutively wait in one
  /// node, which sizes the router's flat scratch arena.
  int max_capacity() const { return max_capacity_; }

  int FuNode(int cell) const { return fu_of_[static_cast<size_t>(cell)]; }
  /// The hold (RF) node a cell's FU result lands in.
  int HoldNode(int cell) const { return hold_of_[static_cast<size_t>(cell)]; }
  /// The routing-channel node of a cell (-1 when route_channels == 0).
  int RtNode(int cell) const { return rt_of_[static_cast<size_t>(cell)]; }

  /// Outgoing routing links of a node (HOLD/RT only; FU->HOLD is
  /// modelled separately because it starts a net rather than routes it).
  const std::vector<Link>& OutLinks(int n) const {
    return out_[static_cast<size_t>(n)];
  }

  /// Hold nodes whose values `cell`'s FU can read combinationally.
  const std::vector<int>& ReadableHolds(int cell) const {
    return readable_holds_[static_cast<size_t>(cell)];
  }

  /// False when `node` cannot be configured in modulo slot `slot`
  /// because the owning cell's configuration-memory word is faulted.
  /// Register files retain values without a config word, so kHold (and
  /// the shared RF, cell -1) are never slot-restricted.
  bool SlotUsable(int n, int slot) const {
    const Node& nd = node(n);
    if (nd.kind == Kind::kHold || nd.cell < 0) return true;
    return !arch_->ContextSlotFaulted(nd.cell, slot);
  }

 private:
  const Architecture* arch_;
  std::vector<Node> nodes_;
  int max_capacity_ = 1;
  std::vector<int> fu_of_, hold_of_, rt_of_;
  std::vector<std::vector<Link>> out_;
  std::vector<std::vector<int>> readable_holds_;
};

}  // namespace cgra
