// Modulo Routing Resource Graph (MRRG).
//
// The temporal coordinate system of the mapping problem — "the time
// extended CGRA (TEC), or the time-space graph" (§II-C). Resources are
// replicated conceptually per cycle modulo II; this class holds the
// *static* resource graph (nodes, capacities, latency-annotated
// links); the router and validator pair each node with a time slot,
// and the ResourceTracker materialises the time axis as per-slot
// occupancy bitsets.
//
// Resource kinds per cell:
//   kFu   — executes one operation per slot (capacity 1);
//   kHold — the cell's register file; a value parked here at slot t is
//           readable by the cell's own FU and by linked neighbours'
//           FUs (capacity = Architecture::HoldCapacity());
//   kRt   — the pass-through routing channel: copies a neighbour's
//           held value into this cell's RF without using the FU
//           (capacity = route_channels).
//
// Latencies: FU -> own HOLD is 1 cycle (results are latched); HOLD ->
// HOLD self-link is 1 cycle (the value stays another cycle); HOLD ->
// neighbour RT is 0 (combinational link) and RT -> own HOLD is 1
// (latched), so each routed hop costs one cycle. A consumer FU reads a
// HOLD in the same cycle (combinational operand fetch), so the minimum
// producer->consumer latency is 1 cycle — matching Fig. 3's modulo
// schedule where dependent ops sit in consecutive cycles.
//
// Storage is structure-of-arrays: parallel kind/cell/capacity arrays
// indexed by the dense node id, and CSR adjacency for out-links and
// readable-hold sets, so the router's expansion loop walks contiguous
// memory. The layout — id blocks, array invariants, and their
// stability guarantees — is a documented contract: see docs/MRRG.md.
// Node ids are dense and assigned in construction order (FU block,
// then HOLD block, then RT block), identical to the ids the previous
// array-of-structs build assigned, so `Mapping` contents,
// `SerializeMapping` digests, and MapTrace output are bit-identical
// across the layout change (the old-id -> dense-id mapping is the
// identity; tests/test_arch.cpp asserts the block formulas).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/arch.hpp"
#include "support/span.hpp"

namespace cgra {

class Mrrg {
 public:
  enum class Kind : std::uint8_t { kFu, kHold, kRt };

  /// Materialised per-node view (compat with the pre-SoA API). The
  /// hot paths use the column accessors (kind/cell/capacity) instead.
  struct Node {
    Kind kind;
    int cell;      ///< owning cell (kShared hold uses cell -1)
    int capacity;  ///< simultaneous values per time slot
  };

  struct Link {
    std::int32_t to;
    std::int32_t latency;  ///< cycles consumed by traversing this link
  };

  explicit Mrrg(const Architecture& arch);

  const Architecture& arch() const { return *arch_; }
  int num_nodes() const { return static_cast<int>(kind_.size()); }
  Node node(int n) const {
    const size_t i = static_cast<size_t>(n);
    return Node{static_cast<Kind>(kind_[i]), cell_[i], capacity_[i]};
  }

  // SoA column accessors — one contiguous array load each.
  Kind kind(int n) const {
    return static_cast<Kind>(kind_[static_cast<size_t>(n)]);
  }
  int cell(int n) const { return cell_[static_cast<size_t>(n)]; }
  int capacity(int n) const { return capacity_[static_cast<size_t>(n)]; }
  /// The full capacity column (tracker bitset initialisation).
  Span<std::int32_t> capacities() const {
    return Span<std::int32_t>(capacity_.data(), capacity_.size());
  }

  /// Largest per-slot capacity of any node (>= 1 even on an all-dead
  /// fabric). Bounds how long a route may consecutively wait in one
  /// node, which sizes the router's flat scratch arena.
  int max_capacity() const { return max_capacity_; }

  // Dense-id block layout (see docs/MRRG.md): FU nodes first, then
  // HOLD, then RT. Each range is contiguous, so a kind's candidate
  // set is an id interval — which is what lets the tracker answer
  // occupancy for a whole candidate set word-parallel.
  int fu_begin() const { return 0; }
  int fu_count() const { return arch_->num_cells(); }
  int hold_begin() const { return hold_begin_; }
  int hold_count() const { return hold_count_; }
  int rt_begin() const { return rt_begin_; }
  int rt_count() const { return rt_count_; }

  int FuNode(int cell) const { return fu_of_[static_cast<size_t>(cell)]; }
  /// The hold (RF) node a cell's FU result lands in.
  int HoldNode(int cell) const { return hold_of_[static_cast<size_t>(cell)]; }
  /// The routing-channel node of a cell (-1 when route_channels == 0).
  int RtNode(int cell) const { return rt_of_[static_cast<size_t>(cell)]; }

  /// Outgoing routing links of a node (HOLD/RT only; FU->HOLD is
  /// modelled separately because it starts a net rather than routes
  /// it). CSR view: contiguous, ordered as constructed.
  Span<Link> OutLinks(int n) const {
    const std::uint32_t b = out_offset_[static_cast<size_t>(n)];
    const std::uint32_t e = out_offset_[static_cast<size_t>(n) + 1];
    return Span<Link>(out_links_.data() + b, e - b);
  }
  /// Total link count across all nodes (CSR tail offset).
  int num_links() const { return static_cast<int>(out_links_.size()); }

  /// Hold nodes whose values `cell`'s FU can read combinationally.
  Span<std::int32_t> ReadableHolds(int cell) const {
    const std::uint32_t b = readable_offset_[static_cast<size_t>(cell)];
    const std::uint32_t e = readable_offset_[static_cast<size_t>(cell) + 1];
    return Span<std::int32_t>(readable_holds_.data() + b, e - b);
  }

  /// False when `node` cannot be configured in modulo slot `slot`
  /// because the owning cell's configuration-memory word is faulted.
  /// Register files retain values without a config word, so kHold (and
  /// the shared RF, cell -1) are never slot-restricted.
  bool SlotUsable(int n, int slot) const {
    const size_t i = static_cast<size_t>(n);
    if (static_cast<Kind>(kind_[i]) == Kind::kHold || cell_[i] < 0) return true;
    return !arch_->ContextSlotFaulted(cell_[i], slot);
  }

 private:
  const Architecture* arch_;
  // Parallel per-node columns, indexed by the dense node id.
  std::vector<std::uint8_t> kind_;
  std::vector<std::int32_t> cell_;
  std::vector<std::int32_t> capacity_;
  int max_capacity_ = 1;
  int hold_begin_ = 0, hold_count_ = 0;
  int rt_begin_ = 0, rt_count_ = 0;
  std::vector<int> fu_of_, hold_of_, rt_of_;
  // CSR adjacency: out_offset_[n] .. out_offset_[n+1] indexes
  // out_links_. Same per-node link order as the old nested vectors.
  std::vector<std::uint32_t> out_offset_;
  std::vector<Link> out_links_;
  // CSR readable-hold sets per cell.
  std::vector<std::uint32_t> readable_offset_;
  std::vector<std::int32_t> readable_holds_;
};

}  // namespace cgra
