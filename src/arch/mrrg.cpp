#include <cstddef>
#include "arch/mrrg.hpp"

#include <algorithm>

namespace cgra {

Mrrg::Mrrg(const Architecture& arch) : arch_(&arch) {
  const int n = arch.num_cells();
  fu_of_.assign(static_cast<size_t>(n), -1);
  hold_of_.assign(static_cast<size_t>(n), -1);
  rt_of_.assign(static_cast<size_t>(n), -1);

  const bool shared_rf = arch.params().rf_kind == RfKind::kShared;

  // Capacities come from the per-cell (fault-derated) accessors: a dead
  // cell's FU/HOLD/RT nodes exist but have capacity 0, so no mapper can
  // ever occupy them and node numbering stays identical to the healthy
  // fabric's.
  for (int c = 0; c < n; ++c) {
    fu_of_[static_cast<size_t>(c)] = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{Kind::kFu, c, arch.CellAlive(c) ? 1 : 0});
  }
  if (shared_rf) {
    const int shared = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{Kind::kHold, -1, arch.HoldCapacity()});
    for (int c = 0; c < n; ++c) hold_of_[static_cast<size_t>(c)] = shared;
  } else {
    for (int c = 0; c < n; ++c) {
      hold_of_[static_cast<size_t>(c)] = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{Kind::kHold, c, arch.HoldCapacityAt(c)});
    }
  }
  if (arch.params().route_channels > 0) {
    for (int c = 0; c < n; ++c) {
      rt_of_[static_cast<size_t>(c)] = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{Kind::kRt, c, arch.RouteChannelsAt(c)});
    }
  }

  out_.resize(nodes_.size());
  auto add_link = [&](int from, int to, int latency) {
    out_[static_cast<size_t>(from)].push_back(Link{to, latency});
  };

  if (shared_rf) {
    const int shared = hold_of_[0];
    add_link(shared, shared, 1);  // retain
  } else {
    for (int c = 0; c < n; ++c) {
      const int h = hold_of_[static_cast<size_t>(c)];
      add_link(h, h, 1);  // retain in the RF another cycle
      if (arch.params().route_channels > 0) {
        // A held value can enter a linked neighbour's routing channel
        // combinationally; the channel latches into that cell's RF.
        for (int to : arch.LinksOut(c)) {
          add_link(h, rt_of_[static_cast<size_t>(to)], 0);
        }
        add_link(rt_of_[static_cast<size_t>(c)], h, 1);
      }
    }
  }

  for (const Node& node : nodes_) {
    max_capacity_ = std::max(max_capacity_, node.capacity);
  }

  readable_holds_.resize(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    auto& rh = readable_holds_[static_cast<size_t>(c)];
    for (int src : arch.ReadableFrom(c)) {
      const int h = hold_of_[static_cast<size_t>(src)];
      if (std::find(rh.begin(), rh.end(), h) == rh.end()) rh.push_back(h);
    }
  }
}

}  // namespace cgra
