#include "arch/mrrg.hpp"

#include <algorithm>
#include <cstddef>

namespace cgra {

// Builds the SoA columns in the contract's block order (docs/MRRG.md):
// FU nodes [0, C), then HOLD nodes, then RT nodes. The per-node link
// lists are assembled in a temporary nested form and flattened to CSR,
// preserving the exact per-node ordering the router's tie-breaking
// depends on.
Mrrg::Mrrg(const Architecture& arch) : arch_(&arch) {
  const int n = arch.num_cells();
  fu_of_.assign(static_cast<size_t>(n), -1);
  hold_of_.assign(static_cast<size_t>(n), -1);
  rt_of_.assign(static_cast<size_t>(n), -1);

  const bool shared_rf = arch.params().rf_kind == RfKind::kShared;

  auto push_node = [&](Kind kind, int cell, int capacity) -> int {
    const int id = static_cast<int>(kind_.size());
    kind_.push_back(static_cast<std::uint8_t>(kind));
    cell_.push_back(cell);
    capacity_.push_back(capacity);
    return id;
  };

  // Capacities come from the per-cell (fault-derated) accessors: a dead
  // cell's FU/HOLD/RT nodes exist but have capacity 0, so no mapper can
  // ever occupy them and node numbering stays identical to the healthy
  // fabric's.
  for (int c = 0; c < n; ++c) {
    fu_of_[static_cast<size_t>(c)] =
        push_node(Kind::kFu, c, arch.CellAlive(c) ? 1 : 0);
  }
  hold_begin_ = static_cast<int>(kind_.size());
  if (shared_rf) {
    const int shared = push_node(Kind::kHold, -1, arch.HoldCapacity());
    for (int c = 0; c < n; ++c) hold_of_[static_cast<size_t>(c)] = shared;
  } else {
    for (int c = 0; c < n; ++c) {
      hold_of_[static_cast<size_t>(c)] =
          push_node(Kind::kHold, c, arch.HoldCapacityAt(c));
    }
  }
  hold_count_ = static_cast<int>(kind_.size()) - hold_begin_;
  rt_begin_ = static_cast<int>(kind_.size());
  if (arch.params().route_channels > 0) {
    for (int c = 0; c < n; ++c) {
      rt_of_[static_cast<size_t>(c)] =
          push_node(Kind::kRt, c, arch.RouteChannelsAt(c));
    }
  }
  rt_count_ = static_cast<int>(kind_.size()) - rt_begin_;

  std::vector<std::vector<Link>> out(kind_.size());
  auto add_link = [&](int from, int to, int latency) {
    out[static_cast<size_t>(from)].push_back(Link{to, latency});
  };

  if (shared_rf) {
    const int shared = hold_of_[0];
    add_link(shared, shared, 1);  // retain
  } else {
    for (int c = 0; c < n; ++c) {
      const int h = hold_of_[static_cast<size_t>(c)];
      add_link(h, h, 1);  // retain in the RF another cycle
      if (arch.params().route_channels > 0) {
        // A held value can enter a linked neighbour's routing channel
        // combinationally; the channel latches into that cell's RF.
        for (int to : arch.LinksOut(c)) {
          add_link(h, rt_of_[static_cast<size_t>(to)], 0);
        }
        add_link(rt_of_[static_cast<size_t>(c)], h, 1);
      }
    }
  }

  out_offset_.assign(kind_.size() + 1, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    out_offset_[i + 1] =
        out_offset_[i] + static_cast<std::uint32_t>(out[i].size());
  }
  out_links_.reserve(out_offset_.back());
  for (const auto& links : out) {
    out_links_.insert(out_links_.end(), links.begin(), links.end());
  }

  for (int capacity : capacity_) {
    max_capacity_ = std::max(max_capacity_, capacity);
  }

  readable_offset_.assign(static_cast<size_t>(n) + 1, 0);
  for (int c = 0; c < n; ++c) {
    std::vector<std::int32_t> rh;
    for (int src : arch.ReadableFrom(c)) {
      const std::int32_t h = hold_of_[static_cast<size_t>(src)];
      if (std::find(rh.begin(), rh.end(), h) == rh.end()) rh.push_back(h);
    }
    readable_offset_[static_cast<size_t>(c) + 1] =
        readable_offset_[static_cast<size_t>(c)] +
        static_cast<std::uint32_t>(rh.size());
    readable_holds_.insert(readable_holds_.end(), rh.begin(), rh.end());
  }
}

}  // namespace cgra
