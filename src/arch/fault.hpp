// Hardware fault model (§II robustness axis).
//
// Every technique in Table I ultimately binds a DFG onto a resource
// graph, so a fabric with defective resources is "just" a different
// MRRG: kill the faulted nodes and links and every mapper degrades
// gracefully instead of falling over. A FaultModel enumerates the
// permanent defects of one physical fabric:
//
//   * dead cells        — the whole PE (FU + RF + routing channel) is
//                         unusable and all links to/from it are gone;
//   * dead links        — one directional inter-cell connection is cut
//                         (the neighbour's mux input reads garbage);
//   * dead RF entries   — physical register `reg` of a cell's file is
//                         stuck; static files lose that one colour, a
//                         rotating file loses the whole cell's RF
//                         (every value rotates through every entry);
//   * dead context slots— configuration-memory word `slot` of a cell
//                         is corrupt: the cell's FU and routing channel
//                         cannot be configured in any cycle with
//                         t mod II == slot (only relevant when II > slot).
//
// Apply a model with Architecture::WithFaults(): the derated fabric
// prunes capabilities, links and capacities so existing mappers avoid
// faulted resources transparently, and ValidateMapping rejects any
// mapping that touches one. RF entries and context slots are tracked
// up to index 63 (well past every preset's rf_size / context_depth).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace cgra {

class Architecture;  // arch/arch.hpp
class ByteWriter;    // support/bytes.hpp

/// One cut directional inter-cell connection.
struct LinkFault {
  int from = -1;
  int to = -1;

  bool operator==(const LinkFault&) const = default;
  auto operator<=>(const LinkFault&) const = default;
};

/// One stuck physical register of one cell's file.
struct RfEntryFault {
  int cell = -1;
  int reg = -1;

  bool operator==(const RfEntryFault&) const = default;
  auto operator<=>(const RfEntryFault&) const = default;
};

/// One corrupt configuration-memory word of one cell.
struct ContextSlotFault {
  int cell = -1;
  int slot = -1;

  bool operator==(const ContextSlotFault&) const = default;
  auto operator<=>(const ContextSlotFault&) const = default;
};

class FaultModel {
 public:
  FaultModel() = default;

  // Insertions keep the underlying lists sorted and deduplicated, so
  // two models with the same faults compare equal and hash identically
  // regardless of discovery order.
  void KillCell(int cell);
  void KillLink(int from, int to);
  void KillRfEntry(int cell, int reg);
  void KillContextSlot(int cell, int slot);

  /// Union with `other` (how a repair loop accumulates discoveries).
  void Merge(const FaultModel& other);

  bool empty() const {
    return dead_cells_.empty() && dead_links_.empty() &&
           dead_rf_entries_.empty() && dead_context_slots_.empty();
  }
  int TotalFaults() const {
    return static_cast<int>(dead_cells_.size() + dead_links_.size() +
                            dead_rf_entries_.size() +
                            dead_context_slots_.size());
  }

  const std::vector<int>& dead_cells() const { return dead_cells_; }
  const std::vector<LinkFault>& dead_links() const { return dead_links_; }
  const std::vector<RfEntryFault>& dead_rf_entries() const {
    return dead_rf_entries_;
  }
  const std::vector<ContextSlotFault>& dead_context_slots() const {
    return dead_context_slots_;
  }

  bool CellDead(int cell) const;
  bool LinkDead(int from, int to) const;

  /// Every fault must name a resource `arch` actually has.
  Status Validate(const Architecture& arch) const;

  /// Stable 16-hex-digit digest of the canonical fault list ("healthy"
  /// for the empty model). Traces stamp it on every attempt event so a
  /// post-mortem can tell "round 0 on a healthy fabric" from "round 2
  /// after 3 faults".
  std::string Digest() const;

  /// Human-readable one-liner ("2 dead cells {5,9}; 1 dead link ...").
  std::string ToString() const;

  /// Canonical byte encoding of the (sorted, deduplicated) fault lists
  /// for content-addressed digests — Architecture::Digest folds this in
  /// so a derated fabric never shares a cache key with the healthy one.
  void AppendCanonicalBytes(ByteWriter& w) const;

  bool operator==(const FaultModel&) const = default;

  /// How many faults of each kind Random() should inject.
  struct RandomSpec {
    int dead_cells = 0;
    int dead_links = 0;
    int dead_rf_entries = 0;
    int dead_context_slots = 0;
  };

  /// Seeded random fault generation: distinct resources drawn
  /// uniformly from what `arch` actually has (links from the live
  /// topology, RF entries below HoldCapacity(), context slots below
  /// min(context_depth, 64)). Deterministic per (arch, spec, seed).
  static FaultModel Random(const Architecture& arch, const RandomSpec& spec,
                           std::uint64_t seed);

  /// The common case: `k` distinct dead PEs.
  static FaultModel RandomDeadPes(const Architecture& arch, int k,
                                  std::uint64_t seed);

 private:
  std::vector<int> dead_cells_;
  std::vector<LinkFault> dead_links_;
  std::vector<RfEntryFault> dead_rf_entries_;
  std::vector<ContextSlotFault> dead_context_slots_;
};

}  // namespace cgra
