#include <cstddef>
#include "arch/arch.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <queue>

#include "arch/fault.hpp"
#include "support/bytes.hpp"
#include "support/str.hpp"

namespace cgra {

Architecture::Architecture(ArchParams params) : params_(std::move(params)) {
  const int n = num_cells();
  caps_.resize(static_cast<size_t>(n));
  readable_.resize(static_cast<size_t>(n));
  links_out_.resize(static_cast<size_t>(n));

  for (int c = 0; c < n; ++c) {
    CellCaps& caps = caps_[static_cast<size_t>(c)];
    const int row = RowOf(c), col = ColOf(c);
    caps.alu = true;
    caps.mul = params_.mul_everywhere || (col % 2 == 0);
    const bool is_mem_cell = params_.mem_on_left_col ? (col == 0) : true;
    caps.mem = params_.num_banks > 0 && is_mem_cell;
    if (caps.mem) {
      // Memory cells round-robin over the banks by row.
      caps.bank = row % std::max(1, params_.num_banks);
    }
    const bool is_border = row == 0 || col == 0 || row == params_.rows - 1 ||
                           col == params_.cols - 1;
    caps.io = params_.io_on_border ? is_border : true;
  }

  // Interconnect links.
  auto link = [&](int from, int to) {
    if (from == to) return;
    auto& outs = links_out_[static_cast<size_t>(from)];
    if (std::find(outs.begin(), outs.end(), to) == outs.end()) outs.push_back(to);
  };
  for (int r = 0; r < params_.rows; ++r) {
    for (int c = 0; c < params_.cols; ++c) {
      const int cell = CellAt(r, c);
      auto try_link = [&](int rr, int cc) {
        if (rr < 0 || rr >= params_.rows || cc < 0 || cc >= params_.cols) return;
        link(cell, CellAt(rr, cc));
      };
      // Mesh base.
      try_link(r - 1, c);
      try_link(r + 1, c);
      try_link(r, c - 1);
      try_link(r, c + 1);
      switch (params_.topology) {
        case Topology::kMesh:
          break;
        case Topology::kMeshPlus:
          try_link(r - 1, c - 1);
          try_link(r - 1, c + 1);
          try_link(r + 1, c - 1);
          try_link(r + 1, c + 1);
          break;
        case Topology::kTorus:
          if (params_.rows > 2) {
            link(cell, CellAt((r + 1) % params_.rows, c));
            link(cell, CellAt((r + params_.rows - 1) % params_.rows, c));
          }
          if (params_.cols > 2) {
            link(cell, CellAt(r, (c + 1) % params_.cols));
            link(cell, CellAt(r, (c + params_.cols - 1) % params_.cols));
          }
          break;
        case Topology::kHop2:
          try_link(r - 2, c);
          try_link(r + 2, c);
          try_link(r, c - 2);
          try_link(r, c + 2);
          break;
      }
    }
  }

  // FU operand reachability: own RF plus every cell with a link to us.
  for (int c = 0; c < n; ++c) {
    readable_[static_cast<size_t>(c)].push_back(c);
  }
  for (int from = 0; from < n; ++from) {
    for (int to : links_out_[static_cast<size_t>(from)]) {
      readable_[static_cast<size_t>(to)].push_back(from);
    }
  }
  // kShared: every cell can read every cell's (unified) registers.
  if (params_.rf_kind == RfKind::kShared) {
    for (int c = 0; c < n; ++c) {
      auto& r = readable_[static_cast<size_t>(c)];
      r.clear();
      for (int o = 0; o < n; ++o) r.push_back(o);
    }
  }

  RecomputeHopDistances();
}

void Architecture::RecomputeHopDistances() {
  // Hop distances (BFS over links).
  const int n = num_cells();
  hop_dist_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), -1);
  for (int s = 0; s < n; ++s) {
    std::queue<int> q;
    auto dist_of = [&](int t) -> int& {
      return hop_dist_[static_cast<size_t>(s) * static_cast<size_t>(n) +
                       static_cast<size_t>(t)];
    };
    dist_of(s) = 0;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : links_out_[static_cast<size_t>(v)]) {
        if (dist_of(w) < 0) {
          dist_of(w) = dist_of(v) + 1;
          q.push(w);
        }
      }
    }
  }
}

Architecture Architecture::WithFaults(const FaultModel& faults) const {
  auto merged = std::make_shared<FaultModel>(faults);
  if (faults_) merged->Merge(*faults_);

  // Rebuild a clean fabric from the params, then derate it: the
  // constructor's capability/link/readable tables are the healthy
  // baseline that ApplyFaults prunes.
  Architecture derated(params_);
  derated.faults_ = std::move(merged);
  derated.ApplyFaults();
  return derated;
}

void Architecture::ApplyFaults() {
  const int n = num_cells();
  const FaultModel& fm = *faults_;

  cell_alive_.assign(static_cast<size_t>(n), 1);
  hold_capacity_.assign(static_cast<size_t>(n), HoldCapacity());
  rf_fault_mask_.assign(static_cast<size_t>(n), 0);
  slot_fault_mask_.assign(static_cast<size_t>(n), 0);

  for (int c : fm.dead_cells()) {
    cell_alive_[static_cast<size_t>(c)] = 0;
    hold_capacity_[static_cast<size_t>(c)] = 0;
    // A dead PE can't execute anything: kill the capability row so
    // CanExecute (and thus every mapper's candidate filter) excludes it.
    CellCaps& caps = caps_[static_cast<size_t>(c)];
    caps.alu = caps.mul = caps.mem = caps.io = false;
    caps.bank = -1;
  }

  for (const RfEntryFault& f : fm.dead_rf_entries()) {
    if (f.reg < 64) {
      rf_fault_mask_[static_cast<size_t>(f.cell)] |= std::uint64_t{1} << f.reg;
    }
  }
  for (const ContextSlotFault& f : fm.dead_context_slots()) {
    if (f.slot < 64) {
      slot_fault_mask_[static_cast<size_t>(f.cell)] |= std::uint64_t{1}
                                                       << f.slot;
    }
  }

  // Per-cell hold capacity. A static file just loses the dead colours;
  // a rotating file renames logical registers through every physical
  // entry, so one stuck entry poisons the whole cell's file.
  for (int c = 0; c < n; ++c) {
    if (!cell_alive_[static_cast<size_t>(c)]) continue;
    const std::uint64_t mask = rf_fault_mask_[static_cast<size_t>(c)];
    if (mask == 0) continue;
    if (params_.rf_kind == RfKind::kRotating) {
      hold_capacity_[static_cast<size_t>(c)] = 0;
    } else {
      hold_capacity_[static_cast<size_t>(c)] =
          HoldCapacity() - std::popcount(mask);
    }
  }

  // Prune the interconnect: cut dead links and every link touching a
  // dead cell, in both directions.
  auto link_gone = [&](int from, int to) {
    return !cell_alive_[static_cast<size_t>(from)] ||
           !cell_alive_[static_cast<size_t>(to)] || fm.LinkDead(from, to);
  };
  for (int from = 0; from < n; ++from) {
    auto& outs = links_out_[static_cast<size_t>(from)];
    std::erase_if(outs, [&](int to) { return link_gone(from, to); });
  }

  // Operand reachability follows the interconnect: a cut link also
  // severs the neighbour's mux input. Each live cell keeps its own
  // registers; a dead cell can read nothing.
  for (int c = 0; c < n; ++c) {
    auto& r = readable_[static_cast<size_t>(c)];
    if (!cell_alive_[static_cast<size_t>(c)]) {
      r.clear();
      continue;
    }
    std::erase_if(r, [&](int src) {
      if (src == c) return false;
      if (params_.rf_kind == RfKind::kShared) {
        // The unified RF is reachable from everywhere, but a dead
        // cell's values no longer exist to be read.
        return !cell_alive_[static_cast<size_t>(src)];
      }
      return link_gone(src, c);
    });
  }

  RecomputeHopDistances();
}

bool Architecture::IsFolded(Opcode op) const {
  if (op == Opcode::kConst) return true;
  if (op == Opcode::kIterIdx && params_.has_hw_loop) return true;
  return false;
}

bool Architecture::CanExecute(int c, const Op& op) const {
  if (IsFolded(op.opcode)) return false;
  const CellCaps& caps = this->caps(c);
  if (op.opcode == Opcode::kIterIdx) {
    return caps.alu;  // must be computed like an ALU op without HW loops
  }
  if (IsMemoryOp(op.opcode)) return caps.mem;
  if (IsIoOp(op.opcode)) return caps.io;
  if (op.opcode == Opcode::kMul || op.opcode == Opcode::kDiv) return caps.mul;
  return caps.alu;
}

void Architecture::AppendCanonicalBytes(ByteWriter& w) const {
  w.Str("ARCH");
  w.U32(1);  // encoding version: bump when a field is added/removed
  w.I32(params_.rows);
  w.I32(params_.cols);
  w.U8(static_cast<std::uint8_t>(params_.topology));
  w.U8(static_cast<std::uint8_t>(params_.style));
  w.U8(static_cast<std::uint8_t>(params_.rf_kind));
  w.I32(params_.rf_size);
  w.I32(params_.route_channels);
  w.I32(params_.context_depth);
  w.I32(params_.num_banks);
  w.I32(params_.bank_ports);
  w.Bool(params_.mul_everywhere);
  w.Bool(params_.mem_on_left_col);
  w.Bool(params_.io_on_border);
  w.Bool(params_.has_hw_loop);
  w.Str(params_.name);
  w.Bool(faults_ != nullptr);
  if (faults_) faults_->AppendCanonicalBytes(w);
}

std::string Architecture::Digest() const {
  ByteWriter w;
  AppendCanonicalBytes(w);
  return Hex16(Fnv1a64(w.bytes()));
}

std::string Architecture::ToAscii() const {
  std::string out = StrFormat("%s: %dx%d ", params_.name.c_str(), params_.rows,
                              params_.cols);
  switch (params_.topology) {
    case Topology::kMesh: out += "mesh"; break;
    case Topology::kMeshPlus: out += "mesh+diag"; break;
    case Topology::kTorus: out += "torus"; break;
    case Topology::kHop2: out += "mesh+2hop"; break;
  }
  out += params_.style == ExecutionStyle::kSpatial ? ", spatial" : ", temporal";
  out += StrFormat(", rf=%d, banks=%d\n", HoldCapacity(), params_.num_banks);
  for (int r = 0; r < params_.rows; ++r) {
    for (int c = 0; c < params_.cols; ++c) {
      const CellCaps& caps = this->caps(CellAt(r, c));
      std::string tag = "[";
      tag += caps.mul ? "A*" : "A ";
      tag += caps.mem ? StrFormat("M%d", caps.bank) : "  ";
      tag += caps.io ? "I" : " ";
      tag += "]";
      out += tag;
    }
    out += "\n";
  }
  return out;
}

Status Architecture::Validate() const {
  if (params_.rows < 1 || params_.cols < 1) {
    return Error::InvalidArgument("array must be at least 1x1");
  }
  if (params_.rf_size < 1) return Error::InvalidArgument("rf_size must be >= 1");
  if (params_.route_channels < 0) {
    return Error::InvalidArgument("route_channels must be >= 0");
  }
  if (params_.context_depth < 1) {
    return Error::InvalidArgument("context_depth must be >= 1");
  }
  if (params_.style == ExecutionStyle::kSpatial && params_.context_depth != 1) {
    return Error::InvalidArgument("spatial fabrics hold exactly one context");
  }
  return Status::Ok();
}

Architecture Architecture::Small2x2() {
  ArchParams p;
  p.rows = p.cols = 2;
  p.name = "small2x2";
  p.num_banks = 1;
  p.mem_on_left_col = true;
  return Architecture(p);
}

Architecture Architecture::Adres4x4() {
  ArchParams p;
  p.rows = p.cols = 4;
  p.name = "adres4x4";
  return Architecture(p);
}

Architecture Architecture::Hetero4x4() {
  ArchParams p;
  p.rows = p.cols = 4;
  p.mul_everywhere = false;
  p.mem_on_left_col = true;
  p.num_banks = 2;
  p.name = "hetero4x4";
  return Architecture(p);
}

Architecture Architecture::Spatial4x4() {
  ArchParams p;
  p.rows = p.cols = 4;
  p.style = ExecutionStyle::kSpatial;
  p.context_depth = 1;
  p.name = "spatial4x4";
  return Architecture(p);
}

Architecture Architecture::Torus4x4() {
  ArchParams p;
  p.rows = p.cols = 4;
  p.topology = Topology::kTorus;
  p.name = "torus4x4";
  return Architecture(p);
}

Architecture Architecture::Big8x8() {
  ArchParams p;
  p.rows = p.cols = 8;
  p.num_banks = 4;
  p.name = "big8x8";
  return Architecture(p);
}

Architecture Architecture::Mega16x16() {
  ArchParams p;
  p.rows = p.cols = 16;
  p.num_banks = 8;
  p.topology = Topology::kHop2;
  p.name = "mega16x16";
  return Architecture(p);
}

Architecture Architecture::VliwLike4() {
  // The survey contrasts CGRAs with VLIW: "VLIW processors share data
  // through a register file only". This foil has no direct links; all
  // communication goes through one shared RF.
  ArchParams p;
  p.rows = 1;
  p.cols = 4;
  p.rf_kind = RfKind::kShared;
  p.rf_size = 16;
  p.route_channels = 0;
  p.io_on_border = true;
  p.mem_on_left_col = true;
  p.name = "vliw4";
  return Architecture(p);
}

}  // namespace cgra
