#include <cstddef>
#include "arch/context.hpp"

#include <algorithm>
#include <cassert>

#include "support/str.hpp"

namespace cgra {
namespace {

int BitsFor(int max_value) {
  int bits = 1;
  while ((1 << bits) <= max_value) ++bits;
  return bits;
}

class BitWriter {
 public:
  void Put(std::uint32_t value, int bits) {
    assert(bits <= 32);
    assert(bits == 32 || value < (1u << bits));
    for (int i = 0; i < bits; ++i) {
      const bool bit = (value >> i) & 1;
      if (pos_ % 8 == 0) bytes_.push_back(0);
      if (bit) bytes_.back() |= static_cast<std::uint8_t>(1u << (pos_ % 8));
      ++pos_;
    }
  }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  int pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}
  bool Get(std::uint32_t* value, int bits) {
    std::uint32_t v = 0;
    for (int i = 0; i < bits; ++i) {
      const size_t byte = static_cast<size_t>(pos_ / 8);
      if (byte >= bytes_.size()) return false;
      if ((bytes_[byte] >> (pos_ % 8)) & 1) v |= (1u << i);
      ++pos_;
    }
    *value = v;
    return true;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  int pos_ = 0;
};

constexpr int kNumOpcodes = static_cast<int>(Opcode::kVarOut) + 1;

}  // namespace

int ContextLayout::BitsPerFu() const {
  // valid + opcode + 3 operands + imm + dest + we + pred operand +
  // sense + io slot + stage + dual-issue alternate (valid + opcode +
  // 3 operands + its own imm).
  return 1 + opcode_bits + 3 * BitsPerOperand() + imm_bits + reg_bits + 1 +
         BitsPerOperand() + 1 + io_bits + stage_bits + 1 + opcode_bits +
         3 * BitsPerOperand() + imm_bits;
}

int ContextLayout::BitsPerRt() const {
  return 1 + read_idx_bits + 2 * reg_bits + stage_bits;
}

int ContextLayout::BitsPerCell(int route_channels) const {
  return BitsPerFu() + route_channels * BitsPerRt();
}

ContextLayout MakeContextLayout(const Architecture& arch) {
  ContextLayout l;
  l.opcode_bits = BitsFor(kNumOpcodes - 1);
  l.src_bits = 2;
  int max_readable = 1;
  for (int c = 0; c < arch.num_cells(); ++c) {
    max_readable = std::max(
        max_readable, static_cast<int>(arch.ReadableFrom(c).size()));
  }
  l.read_idx_bits = BitsFor(max_readable - 1);
  l.reg_bits = BitsFor(std::max(1, arch.HoldCapacity() - 1));
  l.imm_bits = 32;
  l.io_bits = 6;
  l.stage_bits = 8;
  return l;
}

int FrameBitCount(const Architecture& arch) {
  const ContextLayout l = MakeContextLayout(arch);
  return arch.num_cells() * l.BitsPerCell(arch.params().route_channels);
}

namespace {

void PutOperand(BitWriter& w, const ContextLayout& l, const OperandSel& o) {
  w.Put(static_cast<std::uint32_t>(o.src), l.src_bits);
  w.Put(static_cast<std::uint32_t>(o.read_idx), l.read_idx_bits);
  w.Put(static_cast<std::uint32_t>(o.reg), l.reg_bits);
}

bool GetOperand(BitReader& r, const ContextLayout& l, OperandSel* o) {
  std::uint32_t src, idx, reg;
  if (!r.Get(&src, l.src_bits) || !r.Get(&idx, l.read_idx_bits) ||
      !r.Get(&reg, l.reg_bits)) {
    return false;
  }
  o->src = static_cast<OperandSel::Src>(src);
  o->read_idx = static_cast<int>(idx);
  o->reg = static_cast<int>(reg);
  return true;
}

}  // namespace

std::vector<std::uint8_t> EncodeConfig(const Architecture& arch,
                                       const ConfigImage& image) {
  const ContextLayout l = MakeContextLayout(arch);
  BitWriter w;
  w.Put(static_cast<std::uint32_t>(image.ii), 8);
  w.Put(static_cast<std::uint32_t>(image.preloads.size()), 16);
  for (const RfPreload& p : image.preloads) {
    w.Put(static_cast<std::uint32_t>(p.cell), 16);
    w.Put(static_cast<std::uint32_t>(p.reg), 8);
    w.Put(static_cast<std::uint32_t>(p.value & 0xFFFFFFFF), 32);
    w.Put(static_cast<std::uint32_t>(
              (static_cast<std::uint64_t>(p.value) >> 32) & 0xFFFFFFFF),
          32);
  }
  for (const ContextFrame& frame : image.frames) {
    assert(static_cast<int>(frame.cells.size()) == arch.num_cells());
    for (const CellContext& cell : frame.cells) {
      const FuConfig& fu = cell.fu;
      w.Put(fu.valid ? 1 : 0, 1);
      w.Put(static_cast<std::uint32_t>(fu.opcode), l.opcode_bits);
      for (const OperandSel& o : fu.operand) PutOperand(w, l, o);
      w.Put(static_cast<std::uint32_t>(fu.imm), l.imm_bits);
      w.Put(static_cast<std::uint32_t>(fu.dest_reg), l.reg_bits);
      w.Put(fu.write_enable ? 1 : 0, 1);
      PutOperand(w, l, fu.pred);
      w.Put(fu.pred_sense ? 1 : 0, 1);
      w.Put(static_cast<std::uint32_t>(fu.io_slot), l.io_bits);
      w.Put(static_cast<std::uint32_t>(fu.stage), l.stage_bits);
      w.Put(fu.alt_valid ? 1 : 0, 1);
      w.Put(static_cast<std::uint32_t>(fu.alt_opcode), l.opcode_bits);
      for (const OperandSel& o : fu.alt_operand) PutOperand(w, l, o);
      w.Put(static_cast<std::uint32_t>(fu.alt_imm), l.imm_bits);
      assert(static_cast<int>(cell.rt.size()) == arch.params().route_channels);
      for (const RtConfig& rt : cell.rt) {
        w.Put(rt.valid ? 1 : 0, 1);
        w.Put(static_cast<std::uint32_t>(rt.read_idx), l.read_idx_bits);
        w.Put(static_cast<std::uint32_t>(rt.src_reg), l.reg_bits);
        w.Put(static_cast<std::uint32_t>(rt.dest_reg), l.reg_bits);
        w.Put(static_cast<std::uint32_t>(rt.stage), l.stage_bits);
      }
    }
  }
  return w.Take();
}

Result<ConfigImage> DecodeConfig(const Architecture& arch,
                                 const std::vector<std::uint8_t>& bits) {
  const ContextLayout l = MakeContextLayout(arch);
  BitReader r(bits);
  ConfigImage image;
  std::uint32_t ii;
  if (!r.Get(&ii, 8)) return Error::InvalidArgument("truncated bitstream");
  image.ii = static_cast<int>(ii);
  if (image.ii < 1 || image.ii > arch.MaxIi()) {
    return Error::InvalidArgument(
        StrFormat("decoded II %d outside [1, %d]", image.ii, arch.MaxIi()));
  }
  std::uint32_t num_preloads;
  if (!r.Get(&num_preloads, 16)) return Error::InvalidArgument("truncated");
  image.preloads.resize(num_preloads);
  for (RfPreload& p : image.preloads) {
    std::uint32_t cell, reg, lo32, hi32;
    if (!r.Get(&cell, 16) || !r.Get(&reg, 8) || !r.Get(&lo32, 32) ||
        !r.Get(&hi32, 32)) {
      return Error::InvalidArgument("truncated preload section");
    }
    p.cell = static_cast<int>(cell);
    p.reg = static_cast<int>(reg);
    p.value = static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(hi32) << 32) | lo32);
    if (p.cell >= arch.num_cells() || p.reg >= arch.HoldCapacity()) {
      return Error::InvalidArgument("preload targets a nonexistent register");
    }
  }
  image.frames.resize(static_cast<size_t>(image.ii));
  for (ContextFrame& frame : image.frames) {
    frame.cells.resize(static_cast<size_t>(arch.num_cells()));
    for (int c = 0; c < arch.num_cells(); ++c) {
      CellContext& cell = frame.cells[static_cast<size_t>(c)];
      FuConfig& fu = cell.fu;
      std::uint32_t v;
      if (!r.Get(&v, 1)) return Error::InvalidArgument("truncated bitstream");
      fu.valid = v;
      if (!r.Get(&v, l.opcode_bits)) return Error::InvalidArgument("truncated");
      if (v >= static_cast<std::uint32_t>(kNumOpcodes)) {
        return Error::InvalidArgument(StrFormat("bad opcode field %u", v));
      }
      fu.opcode = static_cast<Opcode>(v);
      for (OperandSel& o : fu.operand) {
        if (!GetOperand(r, l, &o)) return Error::InvalidArgument("truncated");
      }
      if (!r.Get(&v, l.imm_bits)) return Error::InvalidArgument("truncated");
      fu.imm = static_cast<std::int32_t>(v);
      if (!r.Get(&v, l.reg_bits)) return Error::InvalidArgument("truncated");
      fu.dest_reg = static_cast<int>(v);
      if (!r.Get(&v, 1)) return Error::InvalidArgument("truncated");
      fu.write_enable = v;
      if (!GetOperand(r, l, &fu.pred)) return Error::InvalidArgument("truncated");
      if (!r.Get(&v, 1)) return Error::InvalidArgument("truncated");
      fu.pred_sense = v;
      if (!r.Get(&v, l.io_bits)) return Error::InvalidArgument("truncated");
      fu.io_slot = static_cast<int>(v);
      if (!r.Get(&v, l.stage_bits)) return Error::InvalidArgument("truncated");
      fu.stage = static_cast<int>(v);
      if (!r.Get(&v, 1)) return Error::InvalidArgument("truncated");
      fu.alt_valid = v;
      if (!r.Get(&v, l.opcode_bits)) return Error::InvalidArgument("truncated");
      if (v >= static_cast<std::uint32_t>(kNumOpcodes)) {
        return Error::InvalidArgument(StrFormat("bad alt opcode field %u", v));
      }
      fu.alt_opcode = static_cast<Opcode>(v);
      for (OperandSel& o : fu.alt_operand) {
        if (!GetOperand(r, l, &o)) return Error::InvalidArgument("truncated");
      }
      if (!r.Get(&v, l.imm_bits)) return Error::InvalidArgument("truncated");
      fu.alt_imm = static_cast<std::int32_t>(v);
      // Field sanity against this cell's actual readable set.
      const int readable = static_cast<int>(arch.ReadableFrom(c).size());
      for (const OperandSel& o : fu.operand) {
        if (o.src == OperandSel::Src::kReg && o.read_idx >= readable) {
          return Error::InvalidArgument(
              StrFormat("cell %d: operand reads nonexistent neighbour %d", c,
                        o.read_idx));
        }
      }
      cell.rt.resize(static_cast<size_t>(arch.params().route_channels));
      for (RtConfig& rt : cell.rt) {
        if (!r.Get(&v, 1)) return Error::InvalidArgument("truncated");
        rt.valid = v;
        if (!r.Get(&v, l.read_idx_bits)) return Error::InvalidArgument("truncated");
        rt.read_idx = static_cast<int>(v);
        if (!r.Get(&v, l.reg_bits)) return Error::InvalidArgument("truncated");
        rt.src_reg = static_cast<int>(v);
        if (!r.Get(&v, l.reg_bits)) return Error::InvalidArgument("truncated");
        rt.dest_reg = static_cast<int>(v);
        if (!r.Get(&v, l.stage_bits)) return Error::InvalidArgument("truncated");
        rt.stage = static_cast<int>(v);
        if (rt.valid && rt.read_idx >= readable) {
          return Error::InvalidArgument(
              StrFormat("cell %d: route reads nonexistent neighbour %d", c,
                        rt.read_idx));
        }
      }
    }
  }
  return image;
}

}  // namespace cgra
