#include "arch/fault.hpp"

#include <algorithm>

#include "arch/arch.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace cgra {
namespace {

template <typename T>
void SortedInsert(std::vector<T>& v, T value) {
  auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) return;
  v.insert(it, std::move(value));
}

}  // namespace

void FaultModel::KillCell(int cell) { SortedInsert(dead_cells_, cell); }

void FaultModel::KillLink(int from, int to) {
  SortedInsert(dead_links_, LinkFault{from, to});
}

void FaultModel::KillRfEntry(int cell, int reg) {
  SortedInsert(dead_rf_entries_, RfEntryFault{cell, reg});
}

void FaultModel::KillContextSlot(int cell, int slot) {
  SortedInsert(dead_context_slots_, ContextSlotFault{cell, slot});
}

void FaultModel::Merge(const FaultModel& other) {
  for (int c : other.dead_cells_) KillCell(c);
  for (const LinkFault& l : other.dead_links_) KillLink(l.from, l.to);
  for (const RfEntryFault& f : other.dead_rf_entries_) {
    KillRfEntry(f.cell, f.reg);
  }
  for (const ContextSlotFault& f : other.dead_context_slots_) {
    KillContextSlot(f.cell, f.slot);
  }
}

bool FaultModel::CellDead(int cell) const {
  return std::binary_search(dead_cells_.begin(), dead_cells_.end(), cell);
}

bool FaultModel::LinkDead(int from, int to) const {
  return std::binary_search(dead_links_.begin(), dead_links_.end(),
                            LinkFault{from, to});
}

Status FaultModel::Validate(const Architecture& arch) const {
  const int n = arch.num_cells();
  for (int c : dead_cells_) {
    if (c < 0 || c >= n) {
      return Error::InvalidArgument(
          StrFormat("fault model names cell %d on a %d-cell fabric", c, n));
    }
  }
  for (const LinkFault& l : dead_links_) {
    if (l.from < 0 || l.from >= n || l.to < 0 || l.to >= n) {
      return Error::InvalidArgument(
          StrFormat("fault model names link %d->%d on a %d-cell fabric",
                    l.from, l.to, n));
    }
    const auto& outs = arch.LinksOut(l.from);
    if (std::find(outs.begin(), outs.end(), l.to) == outs.end()) {
      return Error::InvalidArgument(StrFormat(
          "fault model cuts link %d->%d which the topology does not have",
          l.from, l.to));
    }
  }
  for (const RfEntryFault& f : dead_rf_entries_) {
    if (f.cell < 0 || f.cell >= n || f.reg < 0 ||
        f.reg >= arch.HoldCapacity()) {
      return Error::InvalidArgument(
          StrFormat("fault model names register r%d of cell %d (fabric has "
                    "%d cells x %d registers)",
                    f.reg, f.cell, n, arch.HoldCapacity()));
    }
  }
  for (const ContextSlotFault& f : dead_context_slots_) {
    if (f.cell < 0 || f.cell >= n || f.slot < 0 ||
        f.slot >= arch.params().context_depth) {
      return Error::InvalidArgument(
          StrFormat("fault model names context slot %d of cell %d (fabric "
                    "has %d cells x %d slots)",
                    f.slot, f.cell, n, arch.params().context_depth));
    }
  }
  return Status::Ok();
}

std::string FaultModel::Digest() const {
  if (empty()) return "healthy";
  // FNV-1a over the canonical (sorted) fault list.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(0x01);
  for (int c : dead_cells_) mix(static_cast<std::uint64_t>(c));
  mix(0x02);
  for (const LinkFault& l : dead_links_) {
    mix((static_cast<std::uint64_t>(l.from) << 32) |
        static_cast<std::uint32_t>(l.to));
  }
  mix(0x03);
  for (const RfEntryFault& f : dead_rf_entries_) {
    mix((static_cast<std::uint64_t>(f.cell) << 32) |
        static_cast<std::uint32_t>(f.reg));
  }
  mix(0x04);
  for (const ContextSlotFault& f : dead_context_slots_) {
    mix((static_cast<std::uint64_t>(f.cell) << 32) |
        static_cast<std::uint32_t>(f.slot));
  }
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

std::string FaultModel::ToString() const {
  if (empty()) return "healthy";
  std::string out;
  auto sep = [&out]() {
    if (!out.empty()) out += "; ";
  };
  if (!dead_cells_.empty()) {
    out += StrFormat("%zu dead cell(s) {", dead_cells_.size());
    for (size_t i = 0; i < dead_cells_.size(); ++i) {
      out += (i ? "," : "") + std::to_string(dead_cells_[i]);
    }
    out += "}";
  }
  if (!dead_links_.empty()) {
    sep();
    out += StrFormat("%zu dead link(s) {", dead_links_.size());
    for (size_t i = 0; i < dead_links_.size(); ++i) {
      out += StrFormat("%s%d->%d", i ? "," : "", dead_links_[i].from,
                       dead_links_[i].to);
    }
    out += "}";
  }
  if (!dead_rf_entries_.empty()) {
    sep();
    out += StrFormat("%zu dead RF entr(ies) {", dead_rf_entries_.size());
    for (size_t i = 0; i < dead_rf_entries_.size(); ++i) {
      out += StrFormat("%sc%d.r%d", i ? "," : "", dead_rf_entries_[i].cell,
                       dead_rf_entries_[i].reg);
    }
    out += "}";
  }
  if (!dead_context_slots_.empty()) {
    sep();
    out += StrFormat("%zu dead context slot(s) {", dead_context_slots_.size());
    for (size_t i = 0; i < dead_context_slots_.size(); ++i) {
      out += StrFormat("%sc%d.s%d", i ? "," : "", dead_context_slots_[i].cell,
                       dead_context_slots_[i].slot);
    }
    out += "}";
  }
  return out;
}

void FaultModel::AppendCanonicalBytes(ByteWriter& w) const {
  w.U32(static_cast<std::uint32_t>(dead_cells_.size()));
  for (int c : dead_cells_) w.I32(c);
  w.U32(static_cast<std::uint32_t>(dead_links_.size()));
  for (const LinkFault& l : dead_links_) {
    w.I32(l.from);
    w.I32(l.to);
  }
  w.U32(static_cast<std::uint32_t>(dead_rf_entries_.size()));
  for (const RfEntryFault& f : dead_rf_entries_) {
    w.I32(f.cell);
    w.I32(f.reg);
  }
  w.U32(static_cast<std::uint32_t>(dead_context_slots_.size()));
  for (const ContextSlotFault& f : dead_context_slots_) {
    w.I32(f.cell);
    w.I32(f.slot);
  }
}

FaultModel FaultModel::Random(const Architecture& arch, const RandomSpec& spec,
                              std::uint64_t seed) {
  Rng rng(seed ^ 0xFA17FA17FA17FA17ull);
  FaultModel fm;
  const int n = arch.num_cells();

  {
    // Distinct cells via a partial Fisher-Yates draw.
    std::vector<int> cells(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) cells[static_cast<size_t>(c)] = c;
    rng.Shuffle(cells);
    const int k = std::min(spec.dead_cells, n);
    for (int i = 0; i < k; ++i) fm.KillCell(cells[static_cast<size_t>(i)]);
  }
  {
    std::vector<LinkFault> links;
    for (int from = 0; from < n; ++from) {
      for (int to : arch.LinksOut(from)) links.push_back(LinkFault{from, to});
    }
    rng.Shuffle(links);
    const int k = std::min<int>(spec.dead_links, static_cast<int>(links.size()));
    for (int i = 0; i < k; ++i) {
      fm.KillLink(links[static_cast<size_t>(i)].from,
                  links[static_cast<size_t>(i)].to);
    }
  }
  {
    const int regs = arch.HoldCapacity();
    std::vector<RfEntryFault> entries;
    for (int c = 0; c < n; ++c) {
      for (int r = 0; r < std::min(regs, 64); ++r) {
        entries.push_back(RfEntryFault{c, r});
      }
    }
    rng.Shuffle(entries);
    const int k =
        std::min<int>(spec.dead_rf_entries, static_cast<int>(entries.size()));
    for (int i = 0; i < k; ++i) {
      fm.KillRfEntry(entries[static_cast<size_t>(i)].cell,
                     entries[static_cast<size_t>(i)].reg);
    }
  }
  {
    const int slots = std::min(arch.params().context_depth, 64);
    std::vector<ContextSlotFault> all;
    for (int c = 0; c < n; ++c) {
      for (int s = 0; s < slots; ++s) all.push_back(ContextSlotFault{c, s});
    }
    rng.Shuffle(all);
    const int k =
        std::min<int>(spec.dead_context_slots, static_cast<int>(all.size()));
    for (int i = 0; i < k; ++i) {
      fm.KillContextSlot(all[static_cast<size_t>(i)].cell,
                         all[static_cast<size_t>(i)].slot);
    }
  }
  return fm;
}

FaultModel FaultModel::RandomDeadPes(const Architecture& arch, int k,
                                     std::uint64_t seed) {
  RandomSpec spec;
  spec.dead_cells = k;
  return Random(arch, spec, seed);
}

}  // namespace cgra
