// Configuration / context format (§II-B "Why reconfigurable?", Fig 2c).
//
// "A configuration must hold all the values of a set of signals that
// select the correct input of a multiplexer. [...] the format defines
// the contract between the hardware and the software to reach a valid
// execution." This header IS that contract for our fabric: the
// backend compiles a Mapping into ConfigImage; the simulator executes
// only what survives the bit-level encode/decode round trip.
//
// Per cell and per context slot the word holds: the FU opcode, three
// operand selects (own register / linked neighbour's register /
// immediate / loop counter), the immediate, the destination register,
// a predicate select with its sense, an I/O stream slot, and one
// routing-channel select per route channel (source neighbour+register
// -> destination register).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch.hpp"
#include "support/status.hpp"

namespace cgra {

/// Where an FU operand (or routed value) comes from.
struct OperandSel {
  enum class Src : std::uint8_t {
    kNone = 0,     ///< operand unused
    kReg = 1,      ///< register `reg` of readable-cell index `read_idx`
    kImm = 2,      ///< the context's immediate field
    kIter = 3,     ///< hardware loop counter broadcast
  };
  Src src = Src::kNone;
  int read_idx = 0;  ///< index into Architecture::ReadableFrom(cell)
  int reg = 0;       ///< register within that cell's RF

  bool operator==(const OperandSel&) const = default;
};

/// One cell's FU configuration for one slot.
struct FuConfig {
  bool valid = false;          ///< FU idle this slot when false
  Opcode opcode = Opcode::kAdd;
  OperandSel operand[3];
  std::int32_t imm = 0;
  int dest_reg = 0;            ///< RF register receiving the result
  bool write_enable = false;   ///< latch the result at all
  OperandSel pred;             ///< kNone = unpredicated
  bool pred_sense = true;      ///< execute when predicate != 0
  int io_slot = 0;             ///< stream index for kInput/kOutput
  /// Pipeline stage (issue_time / II): the loop control uses it to
  /// gate prologue/epilogue iterations and to index streams.
  int stage = 0;
  /// Dual-issue single execution: the fused alternate operation that
  /// fires when the predicate does NOT hold. It is a second
  /// instruction word, so it carries its own immediate.
  bool alt_valid = false;
  Opcode alt_opcode = Opcode::kAdd;
  OperandSel alt_operand[3];
  std::int32_t alt_imm = 0;

  bool operator==(const FuConfig&) const = default;
};

/// One routing-channel transfer for one slot.
struct RtConfig {
  bool valid = false;
  int read_idx = 0;  ///< source: index into ReadableFrom(cell)
  int src_reg = 0;
  int dest_reg = 0;
  int stage = 0;     ///< pipeline stage of this transfer (gating)

  bool operator==(const RtConfig&) const = default;
};

struct CellContext {
  FuConfig fu;
  std::vector<RtConfig> rt;  ///< size == route_channels

  bool operator==(const CellContext&) const = default;
};

/// One context frame = the whole array for one slot.
struct ContextFrame {
  std::vector<CellContext> cells;

  bool operator==(const ContextFrame&) const = default;
};

/// An initial register value written by the configuration loader
/// before cycle 0 — how loop-carried initial values (accumulator
/// seeds) reach the fabric.
struct RfPreload {
  int cell = 0;  ///< RF bank (0 for the shared file)
  int reg = 0;   ///< physical register index
  std::int64_t value = 0;

  bool operator==(const RfPreload&) const = default;
};

/// The complete configuration: `ii` frames cycled by the slot counter,
/// plus the preload section.
struct ConfigImage {
  int ii = 1;
  std::vector<ContextFrame> frames;
  std::vector<RfPreload> preloads;

  bool operator==(const ConfigImage&) const = default;
};

/// Bit widths the encoding uses for a given architecture (derived,
/// documented by Fig2Anatomy in the bench).
struct ContextLayout {
  int opcode_bits;
  int src_bits;       ///< operand source kind
  int read_idx_bits;  ///< max over cells of log2(|ReadableFrom|)
  int reg_bits;
  int imm_bits;
  int io_bits;
  int stage_bits;
  int BitsPerOperand() const { return src_bits + read_idx_bits + reg_bits; }
  int BitsPerFu() const;
  int BitsPerRt() const;
  int BitsPerCell(int route_channels) const;
};
ContextLayout MakeContextLayout(const Architecture& arch);

/// Serialises to the raw bitstream the hardware would shift into its
/// configuration registers.
std::vector<std::uint8_t> EncodeConfig(const Architecture& arch,
                                       const ConfigImage& image);

/// Parses a bitstream back; fails on truncated input or field overflow.
Result<ConfigImage> DecodeConfig(const Architecture& arch,
                                 const std::vector<std::uint8_t>& bits);

/// Total configuration bits for one frame (the Fig. 2(c) register width).
int FrameBitCount(const Architecture& arch);

}  // namespace cgra
