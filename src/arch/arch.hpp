// CGRA architecture model (§II-A, Fig. 2).
//
// A CGRA here is a 2-D array of cells. Each cell couples a functional
// unit (FU), a small register file (the Fig. 2(b) "internal
// architecture"), and a routing channel, and is linked to neighbours
// by the interconnect topology. Heterogeneity follows the survey: some
// cells are plain ALUs, some carry multipliers, some are memory cells
// attached to a bank, some sit on the array boundary and do stream I/O.
//
// "The back-end must know the target architecture" (§II-B, CGRA
// models): every mapper takes an Architecture as input — nothing about
// a concrete topology is hard-coded in any mapper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/dfg.hpp"
#include "support/status.hpp"

namespace cgra {

class FaultModel;  // arch/fault.hpp
class ByteWriter;  // support/bytes.hpp

/// Interconnect shapes (point-to-point neighbourhoods).
enum class Topology {
  kMesh,      ///< 4-neighbour N/E/S/W
  kMeshPlus,  ///< mesh + diagonals (8-neighbour)
  kTorus,     ///< mesh with wrap-around links
  kHop2,      ///< mesh + 2-hop express links in rows/columns
};

/// Register-file organisation (§III-C register allocation).
enum class RfKind {
  kNone,      ///< only the output register (one live value per cell)
  kLocal,     ///< per-cell RF with `rf_size` entries
  kRotating,  ///< per-cell rotating RF (modulo-renamed, DRESC-style)
  kShared,    ///< one unified RF reachable from every cell (URECA-style)
};

/// Whether the fabric time-shares its cells (§II-B spatial vs temporal).
enum class ExecutionStyle {
  kSpatial,   ///< one context; each cell performs a single fixed op
  kTemporal,  ///< `context_depth` contexts cycle with the II counter
};

struct ArchParams {
  int rows = 4;
  int cols = 4;
  Topology topology = Topology::kMesh;
  ExecutionStyle style = ExecutionStyle::kTemporal;
  RfKind rf_kind = RfKind::kLocal;
  int rf_size = 4;           ///< registers per cell (>=1)
  int route_channels = 1;    ///< simultaneous pass-through transfers per cell
  int context_depth = 32;    ///< max II / schedule slots the config memory holds
  int num_banks = 2;         ///< data memory banks
  int bank_ports = 1;        ///< accesses per bank per cycle
  bool mul_everywhere = true;///< false: only even columns have multipliers
  bool mem_on_left_col = true;///< memory cells in column 0 (else all cells)
  bool io_on_border = true;  ///< I/O cells on the border (else all cells)
  bool has_hw_loop = true;   ///< hardware loop counter broadcast (kIterIdx)
  std::string name = "cgra";
};

/// Per-cell capabilities derived from the params.
struct CellCaps {
  bool alu = true;
  bool mul = true;
  bool mem = false;
  int bank = -1;   ///< memory bank this cell's LSU reaches
  bool io = false;
};

class Architecture {
 public:
  explicit Architecture(ArchParams params);

  const ArchParams& params() const { return params_; }
  int num_cells() const { return params_.rows * params_.cols; }
  int rows() const { return params_.rows; }
  int cols() const { return params_.cols; }

  int CellAt(int row, int col) const { return row * params_.cols + col; }
  int RowOf(int cell) const { return cell / params_.cols; }
  int ColOf(int cell) const { return cell % params_.cols; }

  const CellCaps& caps(int cell) const { return caps_[static_cast<size_t>(cell)]; }

  /// Cells whose held values cell `c`'s FU can read this cycle
  /// (includes `c` itself).
  const std::vector<int>& ReadableFrom(int c) const {
    return readable_[static_cast<size_t>(c)];
  }
  /// Cells to which `c` can push a value through the interconnect
  /// (excludes `c`).
  const std::vector<int>& LinksOut(int c) const {
    return links_out_[static_cast<size_t>(c)];
  }

  /// True if `c`'s FU may execute this operation. Constants and — when
  /// the fabric has a hardware loop unit — kIterIdx are folded into
  /// configuration immediates and never occupy a cell; this returns
  /// false for them.
  bool CanExecute(int c, const Op& op) const;

  /// True for opcodes that fold into configuration fields instead of
  /// occupying a cell (kConst always; kIterIdx when has_hw_loop).
  bool IsFolded(Opcode op) const;

  /// Manhattan-style hop distance between cells under this topology
  /// (shortest link path; precomputed).
  int HopDistance(int a, int b) const {
    return hop_dist_[static_cast<size_t>(a) * static_cast<size_t>(num_cells()) +
                     static_cast<size_t>(b)];
  }

  /// Maximum II the configuration memory supports (1 for spatial).
  int MaxIi() const {
    return params_.style == ExecutionStyle::kSpatial ? 1 : params_.context_depth;
  }

  /// Effective register slots per cell for routing-through-time (the
  /// healthy, structural value; see HoldCapacityAt for the derated
  /// per-cell capacity of a faulted fabric).
  int HoldCapacity() const {
    return params_.rf_kind == RfKind::kNone ? 1 : params_.rf_size;
  }

  // ---- fault awareness ----------------------------------------------------
  // A healthy Architecture answers CellAlive == true everywhere and
  // HoldCapacityAt == HoldCapacity(); WithFaults() returns a derated
  // copy whose capability tables, link lists, operand-reachability
  // lists, hop distances, and per-cell capacities all exclude the
  // faulted resources — so every mapper consuming this interface
  // avoids them transparently. The derated Architecture is
  // self-consistent end to end: map, validate, compile, and simulate
  // all against the SAME (faulted) instance.

  /// Derates this fabric with `faults`, merged with any faults already
  /// applied (how a repair loop accumulates discoveries). Faults
  /// naming resources the fabric does not have are an error — validate
  /// with FaultModel::Validate first when the model is untrusted.
  Architecture WithFaults(const FaultModel& faults) const;

  /// The applied fault model; nullptr when healthy.
  const FaultModel* faults() const { return faults_.get(); }
  bool HasFaults() const { return faults_ != nullptr; }

  /// False when the whole cell (FU + RF + routing channel) is dead.
  bool CellAlive(int cell) const {
    return cell_alive_.empty() || cell_alive_[static_cast<size_t>(cell)] != 0;
  }

  /// Usable register slots of `cell`'s file: 0 for dead cells, reduced
  /// by dead entries in static files, 0 for a rotating file with any
  /// dead entry (values rotate through every physical register).
  int HoldCapacityAt(int cell) const {
    return hold_capacity_.empty() ? HoldCapacity()
                                  : hold_capacity_[static_cast<size_t>(cell)];
  }

  /// Usable routing channels of `cell` (0 when the cell is dead).
  int RouteChannelsAt(int cell) const {
    return CellAlive(cell) ? params_.route_channels : 0;
  }

  /// True when physical register `reg` of `cell`'s file is stuck.
  bool RfEntryFaulted(int cell, int reg) const {
    return !rf_fault_mask_.empty() && reg < 64 &&
           (rf_fault_mask_[static_cast<size_t>(cell)] >> reg) & 1u;
  }

  /// True when configuration word `slot` of `cell` is corrupt: the
  /// cell's FU and routing channel cannot be configured in any cycle
  /// with t mod II == slot.
  bool ContextSlotFaulted(int cell, int slot) const {
    return !slot_fault_mask_.empty() && slot < 64 &&
           (slot_fault_mask_[static_cast<size_t>(cell)] >> slot) & 1u;
  }

  /// Canonical byte encoding of everything that shapes a mapping:
  /// every ArchParams field (in declaration order, fixed widths) plus
  /// the applied FaultModel. Two Architectures built from equal params
  /// and equal faults encode identically regardless of construction
  /// history; any parameter or fault mutation changes the bytes. The
  /// layout carries its own version tag — bump it when a field is
  /// added so stale cache entries miss instead of aliasing.
  void AppendCanonicalBytes(ByteWriter& w) const;

  /// Stable 16-hex-digit digest of the canonical encoding; the fabric
  /// component of the mapping-cache key (src/cache).
  std::string Digest() const;

  /// Fig. 2(a)-style ASCII rendering of the array with capability tags.
  std::string ToAscii() const;

  Status Validate() const;

  // ---- presets ------------------------------------------------------------
  static Architecture Small2x2();      ///< exact-method playground
  static Architecture Adres4x4();      ///< classic homogeneous 4x4 mesh
  static Architecture Hetero4x4();     ///< 4x4, muls on even cols, mem col 0
  static Architecture Spatial4x4();    ///< single-context spatial fabric
  static Architecture Torus4x4();      ///< wrap-around links
  static Architecture Big8x8();        ///< scalability ladder
  static Architecture Mega16x16();     ///< "modern AI-wave" standalone array
  static Architecture VliwLike4();     ///< 1x4 row, shared RF only (VLIW foil)

 private:
  void RecomputeHopDistances();
  void ApplyFaults();

  ArchParams params_;
  std::vector<CellCaps> caps_;
  std::vector<std::vector<int>> readable_;
  std::vector<std::vector<int>> links_out_;
  std::vector<int> hop_dist_;

  // Fault-derived state; all empty / null on a healthy fabric.
  std::shared_ptr<const FaultModel> faults_;
  std::vector<char> cell_alive_;
  std::vector<int> hold_capacity_;
  std::vector<std::uint64_t> rf_fault_mask_;
  std::vector<std::uint64_t> slot_fault_mask_;
};

}  // namespace cgra
