// Thread-safe memoisation of MRRG construction.
//
// Racing temporal mappers all start by time-extending the same fabric
// (§II-C: "the time extended CGRA"); building that graph afresh in
// every mapper on every II attempt is pure waste once a portfolio runs
// 20+ mappers concurrently. This cache memoises Mrrg construction per
// architecture. (In this codebase the Mrrg is II-independent — the
// ResourceTracker applies the modulo-II folding — so one entry per
// fabric covers every (Architecture, II) pair a race touches.)
//
// Entries are keyed by architecture identity (address); callers must
// keep each Architecture alive for as long as the cache may serve it.
// The portfolio engine owns one cache per race, which satisfies that
// trivially. Returned values are shared_ptr so a mapper can outlive an
// eviction (Clear) without dangling.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>

#include "arch/mrrg.hpp"

namespace cgra {

class MrrgCache {
 public:
  MrrgCache() = default;
  MrrgCache(const MrrgCache&) = delete;
  MrrgCache& operator=(const MrrgCache&) = delete;

  /// The memoised MRRG for `arch`, building it on first use. Safe to
  /// call from any number of threads.
  std::shared_ptr<const Mrrg> Get(const Architecture& arch);

  /// Number of distinct fabrics cached.
  std::size_t size() const;
  /// Total Get() calls answered from the cache (for bench reporting).
  std::size_t hits() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<const Architecture*, std::shared_ptr<const Mrrg>> entries_;
  std::size_t hits_ = 0;
};

}  // namespace cgra
