#include "mapping/mapping.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "arch/context.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace cgra {

MappingStats ComputeStats(const Dfg& dfg, const Architecture& arch,
                          const Mapping& m) {
  MappingStats s;
  s.ii = m.ii;
  s.length = m.length;
  std::set<int> cells;
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    const Placement& p = m.place[static_cast<size_t>(op)];
    if (p.cell >= 0) {
      ++s.ops_mapped;
      cells.insert(p.cell);
    }
  }
  s.cells_used = static_cast<int>(cells.size());
  std::set<std::tuple<OpId, int, int>> occ;
  const auto edges = dfg.Edges(true);
  for (size_t e = 0; e < m.routes.size() && e < edges.size(); ++e) {
    for (const RouteStep& step : m.routes[e].steps) {
      occ.insert({edges[e].from, step.node, step.time});
    }
  }
  s.route_steps = static_cast<int>(occ.size());
  const double denom = static_cast<double>(arch.num_cells()) * m.ii;
  s.fu_utilization = denom > 0 ? s.ops_mapped / denom : 0;
  // Energy proxy per iteration: one unit per executed op, 0.2 per
  // register write along routes, plus configuration fetch cost
  // proportional to the bits held for II frames, amortised.
  s.energy_proxy = s.ops_mapped + 0.2 * s.route_steps +
                   1e-4 * FrameBitCount(arch) * m.ii;
  return s;
}

std::string RenderSchedule(const Dfg& dfg, const Architecture& arch,
                           const Mapping& m) {
  std::vector<std::string> header{"cycle"};
  for (int c = 0; c < arch.num_cells(); ++c) {
    header.push_back(StrFormat("PE%d,%d", arch.RowOf(c), arch.ColOf(c)));
  }
  TextTable table(header);
  for (int t = 0; t < m.length; ++t) {
    std::vector<std::string> row{StrFormat("%d", t)};
    for (int c = 0; c < arch.num_cells(); ++c) {
      std::string cell;
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        const Placement& p = m.place[static_cast<size_t>(op)];
        if (p.cell == c && p.time == t) cell = dfg.op(op).name;
      }
      row.push_back(cell);
    }
    table.AddRow(std::move(row));
    if ((t + 1) % m.ii == 0 && t + 1 < m.length) table.AddRule();
  }
  return table.Render();
}

}  // namespace cgra
