#include "mapping/mapping.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "arch/context.hpp"
#include "support/bytes.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace cgra {

MappingStats ComputeStats(const Dfg& dfg, const Architecture& arch,
                          const Mapping& m) {
  MappingStats s;
  s.ii = m.ii;
  s.length = m.length;
  std::set<int> cells;
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    const Placement& p = m.place[static_cast<size_t>(op)];
    if (p.cell >= 0) {
      ++s.ops_mapped;
      cells.insert(p.cell);
    }
  }
  s.cells_used = static_cast<int>(cells.size());
  std::set<std::tuple<OpId, int, int>> occ;
  const auto edges = dfg.Edges(true);
  for (size_t e = 0; e < m.routes.size() && e < edges.size(); ++e) {
    for (const RouteStep& step : m.routes[e].steps) {
      occ.insert({edges[e].from, step.node, step.time});
    }
  }
  s.route_steps = static_cast<int>(occ.size());
  const double denom = static_cast<double>(arch.num_cells()) * m.ii;
  s.fu_utilization = denom > 0 ? s.ops_mapped / denom : 0;
  // Energy proxy per iteration: one unit per executed op, 0.2 per
  // register write along routes, plus configuration fetch cost
  // proportional to the bits held for II frames, amortised.
  s.energy_proxy = s.ops_mapped + 0.2 * s.route_steps +
                   1e-4 * FrameBitCount(arch) * m.ii;
  return s;
}

std::string RenderSchedule(const Dfg& dfg, const Architecture& arch,
                           const Mapping& m) {
  std::vector<std::string> header{"cycle"};
  for (int c = 0; c < arch.num_cells(); ++c) {
    header.push_back(StrFormat("PE%d,%d", arch.RowOf(c), arch.ColOf(c)));
  }
  TextTable table(header);
  for (int t = 0; t < m.length; ++t) {
    std::vector<std::string> row{StrFormat("%d", t)};
    for (int c = 0; c < arch.num_cells(); ++c) {
      std::string cell;
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        const Placement& p = m.place[static_cast<size_t>(op)];
        if (p.cell == c && p.time == t) cell = dfg.op(op).name;
      }
      row.push_back(cell);
    }
    table.AddRow(std::move(row));
    if ((t + 1) % m.ii == 0 && t + 1 < m.length) table.AddRule();
  }
  return table.Render();
}

namespace {

constexpr std::string_view kMappingMagic = "CGRM";

/// The version + fields, without magic or checksum — what the digest
/// and the checksum are computed over.
std::string MappingPayload(const Mapping& m) {
  ByteWriter w;
  w.U32(kMappingFormatVersion);
  w.I32(m.ii);
  w.I32(m.length);
  w.U32(static_cast<std::uint32_t>(m.place.size()));
  for (const Placement& p : m.place) {
    w.I32(p.cell);
    w.I32(p.time);
  }
  w.U32(static_cast<std::uint32_t>(m.routes.size()));
  for (const Route& r : m.routes) {
    w.U32(static_cast<std::uint32_t>(r.steps.size()));
    for (const RouteStep& s : r.steps) {
      w.I32(s.node);
      w.I32(s.time);
    }
  }
  return w.Take();
}

}  // namespace

std::string SerializeMapping(const Mapping& mapping) {
  const std::string payload = MappingPayload(mapping);
  ByteWriter w;
  w.Str(kMappingMagic);
  ByteWriter tail;
  tail.U64(Fnv1a64(payload));
  std::string out = w.Take();
  out += payload;
  out += tail.bytes();
  return out;
}

Result<Mapping> DeserializeMapping(std::string_view bytes) {
  ByteReader r(bytes);
  std::string magic;
  if (!r.Str(magic) || magic != kMappingMagic) {
    return Error::InvalidArgument("mapping blob: bad magic");
  }
  if (r.remaining() < 8) {
    return Error::InvalidArgument("mapping blob: truncated");
  }
  const std::string_view payload =
      bytes.substr(r.pos(), r.remaining() - 8);
  ByteReader t(bytes.substr(r.pos() + payload.size()));
  std::uint64_t checksum = 0;
  t.U64(checksum);
  if (checksum != Fnv1a64(payload)) {
    return Error::InvalidArgument("mapping blob: checksum mismatch");
  }

  ByteReader p(payload);
  std::uint32_t version = 0;
  if (!p.U32(version)) {
    return Error::InvalidArgument("mapping blob: truncated");
  }
  if (version != kMappingFormatVersion) {
    return Error::InvalidArgument(
        StrFormat("mapping blob: format version %u, expected %u", version,
                  kMappingFormatVersion));
  }
  Mapping m;
  std::uint32_t n = 0;
  if (!p.I32(m.ii) || !p.I32(m.length) || !p.U32(n)) {
    return Error::InvalidArgument("mapping blob: truncated");
  }
  // Each placement is 8 bytes; pre-check so a corrupted count cannot
  // drive a multi-gigabyte allocation before the reads start failing.
  if (static_cast<std::uint64_t>(n) * 8 > p.remaining()) {
    return Error::InvalidArgument("mapping blob: placement count overruns");
  }
  m.place.resize(n);
  for (Placement& pl : m.place) {
    if (!p.I32(pl.cell) || !p.I32(pl.time)) {
      return Error::InvalidArgument("mapping blob: truncated placements");
    }
  }
  if (!p.U32(n)) return Error::InvalidArgument("mapping blob: truncated");
  if (static_cast<std::uint64_t>(n) * 4 > p.remaining()) {
    return Error::InvalidArgument("mapping blob: route count overruns");
  }
  m.routes.resize(n);
  for (Route& route : m.routes) {
    std::uint32_t steps = 0;
    if (!p.U32(steps)) {
      return Error::InvalidArgument("mapping blob: truncated routes");
    }
    if (static_cast<std::uint64_t>(steps) * 8 > p.remaining()) {
      return Error::InvalidArgument("mapping blob: step count overruns");
    }
    route.steps.resize(steps);
    for (RouteStep& s : route.steps) {
      if (!p.I32(s.node) || !p.I32(s.time)) {
        return Error::InvalidArgument("mapping blob: truncated steps");
      }
    }
  }
  if (!p.AtEnd()) {
    return Error::InvalidArgument("mapping blob: trailing bytes");
  }
  return m;
}

std::string MappingDigestHex(const Mapping& mapping) {
  return Hex16(Fnv1a64(MappingPayload(mapping)));
}

}  // namespace cgra
