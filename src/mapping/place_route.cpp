#include "mapping/place_route.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/search_log.hpp"

namespace cgra {
namespace {

// Folds one committed route into the active search log's per-cell
// congestion heatmap (no-op without a collector). MRRG nodes without a
// cell (shared register file) are counted separately.
void FoldRouteSteps(const Mrrg& mrrg, const Route& route) {
  if (telemetry::ActiveSearchLog() == nullptr) return;
  for (const RouteStep& s : route.steps) {
    telemetry::SearchRecordCellRouted(mrrg.cell(s.node));
  }
}

}  // namespace

PlaceRouteState::PlaceRouteState(const Dfg& dfg, const Architecture& arch,
                                 const Mrrg& mrrg, int ii)
    : dfg_(&dfg),
      arch_(&arch),
      mrrg_(&mrrg),
      ii_(ii),
      tracker_(mrrg, ii),
      place_(static_cast<size_t>(dfg.num_ops())),
      edges_(dfg.Edges(/*include_pred=*/true)),
      routes_(edges_.size()),
      edges_of_(static_cast<size_t>(dfg.num_ops())),
      bank_load_(static_cast<size_t>(std::max(1, arch.params().num_banks)),
                 std::vector<int>(static_cast<size_t>(ii), 0)) {
  for (size_t e = 0; e < edges_.size(); ++e) {
    edges_of_[static_cast<size_t>(edges_[e].from)].push_back(static_cast<int>(e));
    if (edges_[e].to != edges_[e].from) {
      edges_of_[static_cast<size_t>(edges_[e].to)].push_back(static_cast<int>(e));
    }
  }
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    if (!arch.IsFolded(dfg.op(op).opcode)) mappable_.push_back(op);
  }
  telemetry::SearchRecordGrid(arch.rows(), arch.cols());
}

std::vector<int> PlaceRouteState::CandidateCells(OpId op) const {
  std::vector<int> cells;
  for (int c = 0; c < arch_->num_cells(); ++c) {
    if (arch_->CanExecute(c, dfg_->op(op))) cells.push_back(c);
  }
  return cells;
}

bool PlaceRouteState::RouteEdge(int edge_index, const RouterOptions& options) {
  const DfgEdge& e = edges_[static_cast<size_t>(edge_index)];
  const Placement& from = place_[static_cast<size_t>(e.from)];
  const Placement& to = place_[static_cast<size_t>(e.to)];
  const int arrive = to.time + ii_ * e.distance;

  if (e.to_port == kOrderPort) {
    // Ordering-only: the consumer must issue strictly after the
    // producer's side effect commits. No value is routed.
    if (arrive < from.time + 1) {
      last_fail_ = FailReason::kTimingViolated;
      return false;
    }
    routes_[static_cast<size_t>(edge_index)] = Route{};
    return true;
  }
  if (arrive < from.time + 1) {
    last_fail_ = FailReason::kTimingViolated;
    return false;
  }
  RouteRequest req;
  req.from_cell = from.cell;
  req.from_time = from.time;
  req.to_cell = to.cell;
  req.to_time = arrive;
  req.value = e.from;
  auto route = RouteValue(*mrrg_, tracker_, req, options);
  telemetry::SearchRecordRouteResult(route.ok());
  if (!route.ok()) {
    telemetry::SearchRecordCellCongested(req.to_cell);
    last_fail_ = FailReason::kRouteCongested;
    return false;
  }
  FoldRouteSteps(*mrrg_, route.value());
  routes_[static_cast<size_t>(edge_index)] = std::move(route).value();
  return true;
}

void PlaceRouteState::UnrouteEdge(int edge_index) {
  auto& route = routes_[static_cast<size_t>(edge_index)];
  if (!route.has_value()) return;
  ReleaseRoute(tracker_, *route, edges_[static_cast<size_t>(edge_index)].from);
  route.reset();
}

bool PlaceRouteState::TryPlace(OpId op, int cell, int time,
                               const RouterOptions& router_options) {
  assert(!IsPlaced(op));
  last_fail_ = FailReason::kNone;
  const Op& o = dfg_->op(op);
  if (!arch_->CanExecute(cell, o)) {
    last_fail_ = FailReason::kIncompatibleCell;
    telemetry::SearchRecordPlaceReject(static_cast<int>(last_fail_));
    return false;
  }
  const int fu = mrrg_->FuNode(cell);
  if (!tracker_.CanOccupy(fu, time, op)) {
    last_fail_ = FailReason::kFuBusy;
    telemetry::SearchRecordPlaceReject(static_cast<int>(last_fail_));
    return false;
  }
  const bool is_mem = IsMemoryOp(o.opcode);
  const int slot = ((time % ii_) + ii_) % ii_;
  if (is_mem) {
    const int bank = BankOf(cell);
    if (bank >= 0 &&
        bank_load_[static_cast<size_t>(bank)][static_cast<size_t>(slot)] >=
            arch_->params().bank_ports) {
      last_fail_ = FailReason::kBankPortConflict;
      telemetry::SearchRecordPlaceReject(static_cast<int>(last_fail_));
      return false;
    }
  }

  tracker_.Occupy(fu, time, op);
  place_[static_cast<size_t>(op)] = Placement{cell, time};
  if (is_mem && BankOf(cell) >= 0) {
    ++bank_load_[static_cast<size_t>(BankOf(cell))][static_cast<size_t>(slot)];
  }

  std::vector<int> routed;
  last_route_steps_ = 0;
  bool ok = true;
  // Fanout edges of `op` that appear consecutively in edges_of_ share
  // (source cell, source time, value == op), so each consecutive run
  // is routed as ONE RouteFanout batch. Flushing the pending batch
  // before any non-batchable edge keeps the router invocation order —
  // and therefore the tracker evolution and tie-breaking — identical
  // to the sequential RouteEdge loop this replaces (the golden mapper
  // digests in tests/test_router_golden.cpp pin that equivalence).
  const Placement& self = place_[static_cast<size_t>(op)];
  std::vector<int> batch_edges;
  std::vector<RouteRequest> batch_reqs;
  auto flush_fanout = [&]() -> bool {
    if (batch_edges.empty()) return true;
    auto routes = RouteFanout(*mrrg_, tracker_, batch_reqs.data(),
                              batch_reqs.size(), router_options);
    if (!routes.ok()) {
      // RouteFanout is atomic: nothing from this batch is committed.
      for (const RouteRequest& req : batch_reqs) {
        telemetry::SearchRecordRouteResult(false);
        telemetry::SearchRecordCellCongested(req.to_cell);
      }
      last_fail_ = FailReason::kRouteCongested;
      return false;
    }
    for (size_t i = 0; i < batch_edges.size(); ++i) {
      const int e = batch_edges[i];
      telemetry::SearchRecordRouteResult(true);
      FoldRouteSteps(*mrrg_, (*routes)[i]);
      last_route_steps_ += static_cast<int>((*routes)[i].steps.size());
      routes_[static_cast<size_t>(e)] = std::move((*routes)[i]);
      routed.push_back(e);
    }
    batch_edges.clear();
    batch_reqs.clear();
    return true;
  };
  for (int e : edges_of_[static_cast<size_t>(op)]) {
    const DfgEdge& edge = edges_[static_cast<size_t>(e)];
    if (routes_[static_cast<size_t>(e)].has_value()) continue;  // self-loop routed once
    const OpId other = edge.from == op ? edge.to : edge.from;
    // Folded producers (constants / loop counter) need no route.
    if (arch_->IsFolded(dfg_->op(edge.from).opcode)) continue;
    if (other != op && !IsPlaced(other)) continue;
    if (edge.from == op && edge.to_port != kOrderPort) {
      const Placement& to = place_[static_cast<size_t>(edge.to)];
      const int arrive = to.time + ii_ * edge.distance;
      if (arrive < self.time + 1) {
        // The edges queued ahead of this one still route first (and
        // may themselves fail), exactly as the sequential loop would.
        if (flush_fanout()) last_fail_ = FailReason::kTimingViolated;
        ok = false;
        break;
      }
      RouteRequest req;
      req.from_cell = self.cell;
      req.from_time = self.time;
      req.to_cell = to.cell;
      req.to_time = arrive;
      req.value = edge.from;
      batch_edges.push_back(e);
      batch_reqs.push_back(req);
      continue;
    }
    if (!flush_fanout()) {
      ok = false;
      break;
    }
    if (!RouteEdge(e, router_options)) {
      ok = false;
      break;
    }
    last_route_steps_ +=
        static_cast<int>(routes_[static_cast<size_t>(e)]->steps.size());
    routed.push_back(e);
  }
  if (ok && !flush_fanout()) ok = false;

  if (!ok) {
    for (int e : routed) UnrouteEdge(e);
    tracker_.Release(fu, time, op);
    if (is_mem && BankOf(cell) >= 0) {
      --bank_load_[static_cast<size_t>(BankOf(cell))][static_cast<size_t>(slot)];
    }
    place_[static_cast<size_t>(op)] = Placement{};
    telemetry::SearchRecordPlaceReject(static_cast<int>(last_fail_));
    return false;
  }
  ++placed_count_;
  telemetry::SearchRecordPlaceAccept();
  return true;
}

void PlaceRouteState::Unplace(OpId op) {
  assert(IsPlaced(op));
  const Placement p = place_[static_cast<size_t>(op)];
  for (int e : edges_of_[static_cast<size_t>(op)]) {
    UnrouteEdge(e);
  }
  tracker_.Release(mrrg_->FuNode(p.cell), p.time, op);
  if (IsMemoryOp(dfg_->op(op).opcode) && BankOf(p.cell) >= 0) {
    const int slot = ((p.time % ii_) + ii_) % ii_;
    --bank_load_[static_cast<size_t>(BankOf(p.cell))][static_cast<size_t>(slot)];
  }
  place_[static_cast<size_t>(op)] = Placement{};
  --placed_count_;
  telemetry::SearchRecordEviction();
}

Mapping PlaceRouteState::Finalize() const {
  Mapping m;
  m.ii = ii_;
  m.place = place_;
  int length = 1;
  for (const Placement& p : place_) {
    if (p.cell >= 0) length = std::max(length, p.time + 1);
  }
  m.length = std::max(length, ii_);
  m.routes.resize(edges_.size());
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (routes_[e].has_value()) m.routes[e] = *routes_[e];
  }
  return m;
}

}  // namespace cgra
