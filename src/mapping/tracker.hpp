// Modulo resource occupancy tracking.
//
// Every physical resource exists once per II slot (time mod II); this
// tracker counts which *values* occupy which (node, slot) pair so
// capacities are enforced during placement and routing. Two subtleties
// the survey's problem statement implies:
//   * net sharing — the same value fanning out to several consumers may
//     reuse a hold/route step at no extra cost (counted once);
//   * modulo self-overlap — the same value alive at absolute times t
//     and t+II occupies the SAME slot twice (two iterations' copies are
//     live simultaneously), so it consumes two capacity units.
//
// Storage is flat: one contiguous array of kInlineOccupants entries
// per (node, slot) pair plus a contiguous occupant count, so the
// CanOccupy/Occupy/Release inner loop — the hottest code in the whole
// mapper portfolio after the router — touches exactly one cache line
// per query and allocates nothing. Slots holding more occupants than
// the inline block (a transient state the router creates while
// double-checking a committed route, plus high-capacity shared
// register files) spill to one shared overflow list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/mrrg.hpp"

namespace cgra {

/// Identifies a value: the op producing it (one value per op per
/// iteration; iteration offsets are captured by the absolute time).
using ValueId = std::int32_t;

class ResourceTracker {
 public:
  /// Occupants stored in the flat per-slot block; chosen to cover the
  /// default register-file capacity so spilling is the exception.
  static constexpr int kInlineOccupants = 4;

  ResourceTracker(const Mrrg& mrrg, int ii);

  int ii() const { return ii_; }
  const Mrrg& mrrg() const { return *mrrg_; }

  /// True if `value` may (additionally) occupy `node` at absolute
  /// `time` without exceeding capacity. Re-occupying an entry the
  /// value already holds at the same absolute time is always allowed.
  bool CanOccupy(int node, int time, ValueId value) const;

  /// Records the occupancy (reference-counted per (node,time,value) so
  /// shared route prefixes release correctly).
  void Occupy(int node, int time, ValueId value);

  /// Releases one reference.
  void Release(int node, int time, ValueId value);

  /// Number of distinct (value, abs-time) occupants of the slot.
  int Load(int node, int slot) const {
    return counts_[SlotIndex(node, slot)];
  }

  /// Remaining capacity of (node, time mod ii) for a NEW occupant.
  int Headroom(int node, int time) const;

  /// Clears everything (used when restarting at a different II).
  void Reset();

  /// Entries currently living in the shared overflow list (testing /
  /// diagnostics; 0 in steady state).
  int SpilledEntries() const { return static_cast<int>(spill_.size()); }

 private:
  struct Entry {
    ValueId value;
    std::int32_t time;  // absolute
    std::int32_t refs;
  };
  struct SpillEntry {
    std::uint32_t slot_index;  // SlotIndex(node, slot) this entry belongs to
    Entry entry;
  };

  size_t SlotIndex(int node, int s) const {
    return static_cast<size_t>(node) * static_cast<size_t>(ii_) +
           static_cast<size_t>(s);
  }
  int Slot(int time) const { return ((time % ii_) + ii_) % ii_; }

  const Mrrg* mrrg_;
  int ii_;
  /// kInlineOccupants entries per (node, slot), contiguous.
  std::vector<Entry> inline_;
  /// Occupant count per (node, slot) — inline entries + spilled ones.
  std::vector<std::int32_t> counts_;
  /// Overflow beyond the inline block, shared across all slots and
  /// scanned linearly (it is almost always empty).
  std::vector<SpillEntry> spill_;
};

}  // namespace cgra
