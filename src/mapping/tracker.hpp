// Modulo resource occupancy tracking.
//
// Every physical resource exists once per II slot (time mod II); this
// tracker counts which *values* occupy which (node, slot) pair so
// capacities are enforced during placement and routing. Two subtleties
// the survey's problem statement implies:
//   * net sharing — the same value fanning out to several consumers may
//     reuse a hold/route step at no extra cost (counted once);
//   * modulo self-overlap — the same value alive at absolute times t
//     and t+II occupies the SAME slot twice (two iterations' copies are
//     live simultaneously), so it consumes two capacity units.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/mrrg.hpp"

namespace cgra {

/// Identifies a value: the op producing it (one value per op per
/// iteration; iteration offsets are captured by the absolute time).
using ValueId = std::int32_t;

class ResourceTracker {
 public:
  ResourceTracker(const Mrrg& mrrg, int ii);

  int ii() const { return ii_; }
  const Mrrg& mrrg() const { return *mrrg_; }

  /// True if `value` may (additionally) occupy `node` at absolute
  /// `time` without exceeding capacity. Re-occupying an entry the
  /// value already holds at the same absolute time is always allowed.
  bool CanOccupy(int node, int time, ValueId value) const;

  /// Records the occupancy (reference-counted per (node,time,value) so
  /// shared route prefixes release correctly).
  void Occupy(int node, int time, ValueId value);

  /// Releases one reference.
  void Release(int node, int time, ValueId value);

  /// Number of distinct (value, abs-time) occupants of the slot.
  int Load(int node, int slot) const;

  /// Remaining capacity of (node, time mod ii) for a NEW occupant.
  int Headroom(int node, int time) const;

  /// Clears everything (used when restarting at a different II).
  void Reset();

 private:
  struct Entry {
    ValueId value;
    int time;  // absolute
    int refs;
  };
  const std::vector<Entry>& slot(int node, int s) const {
    return occ_[static_cast<size_t>(node) * static_cast<size_t>(ii_) +
                static_cast<size_t>(s)];
  }
  std::vector<Entry>& slot(int node, int s) {
    return occ_[static_cast<size_t>(node) * static_cast<size_t>(ii_) +
                static_cast<size_t>(s)];
  }

  const Mrrg* mrrg_;
  int ii_;
  std::vector<std::vector<Entry>> occ_;
};

}  // namespace cgra
