// Modulo resource occupancy tracking.
//
// Every physical resource exists once per II slot (time mod II); this
// tracker counts which *values* occupy which (node, slot) pair so
// capacities are enforced during placement and routing. Two subtleties
// the survey's problem statement implies:
//   * net sharing — the same value fanning out to several consumers may
//     reuse a hold/route step at no extra cost (counted once);
//   * modulo self-overlap — the same value alive at absolute times t
//     and t+II occupies the SAME slot twice (two iterations' copies are
//     live simultaneously), so it consumes two capacity units.
//
// Storage is two-layer (the word layout is part of the documented
// memory contract, docs/MRRG.md):
//   * occupancy bitsets — one slot-major bit plane (bit = node) per
//     derived fact: `usable` (config word not faulted; immutable) and
//     `avail` (usable AND occupant count < capacity; maintained on
//     every Occupy/Release). The common CanOccupy — a
//     slot with headroom — is answered by ONE bit test, and a whole
//     candidate id range (kind blocks are contiguous, see Mrrg) is
//     answered word-parallel, 64 nodes per AND+mask.
//   * occupant entries — kInlineOccupants (value, time, refs) entries
//     per (node, slot) plus a shared spill list, consulted only on the
//     slow path (slot full: is the value already ours?) and for
//     reference-counted release. The inline block no longer sits on
//     the admission fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/mrrg.hpp"

namespace cgra {

/// Identifies a value: the op producing it (one value per op per
/// iteration; iteration offsets are captured by the absolute time).
using ValueId = std::int32_t;

class ResourceTracker {
 public:
  /// Occupants stored in the flat per-slot block; chosen to cover the
  /// default register-file capacity so spilling is the exception.
  static constexpr int kInlineOccupants = 4;

  ResourceTracker(const Mrrg& mrrg, int ii);

  int ii() const { return ii_; }
  const Mrrg& mrrg() const { return *mrrg_; }

  /// True if `value` may (additionally) occupy `node` at absolute
  /// `time` without exceeding capacity. Re-occupying an entry the
  /// value already holds at the same absolute time is always allowed.
  bool CanOccupy(int node, int time, ValueId value) const;

  /// Records the occupancy (reference-counted per (node,time,value) so
  /// shared route prefixes release correctly).
  void Occupy(int node, int time, ValueId value);

  /// Releases one reference.
  void Release(int node, int time, ValueId value);

  /// Number of distinct (value, abs-time) occupants of the slot.
  int Load(int node, int slot) const {
    return counts_[SlotIndex(node, slot)];
  }

  /// Remaining capacity of (node, time mod ii) for a NEW occupant.
  int Headroom(int node, int time) const;

  /// Clears everything (used when restarting at a different II).
  void Reset();

  /// Entries currently living in the shared overflow list (testing /
  /// diagnostics; 0 in steady state).
  int SpilledEntries() const { return static_cast<int>(spill_.size()); }

  // ---- word-parallel candidate-set queries ---------------------------------
  // Bit layout (the contract in docs/MRRG.md): row = time mod II,
  // bit `node` of word `node / 64` in that row. A set `avail` bit
  // means a NEW occupant is admissible (usable slot with headroom) —
  // exactly CanOccupy() for a value not already holding the slot.

  /// Words per slot row: ceil(num_nodes / 64).
  int words_per_slot() const { return words_per_slot_; }

  /// The availability word covering nodes [word*64, word*64+64) at
  /// `time`'s modulo slot.
  std::uint64_t AvailWord(int time, int word) const {
    return avail_[RowIndex(Slot(time)) + static_cast<size_t>(word)];
  }

  /// Number of nodes in [node_begin, node_end) that can admit a new
  /// occupant at `time` (word-parallel popcount).
  int CountAvailable(int time, int node_begin, int node_end) const;

  /// Calls fn(node) for every node in [node_begin, node_end) whose
  /// avail bit is set at `time`'s slot, in ascending id order.
  template <typename Fn>
  void ForEachAvailable(int time, int node_begin, int node_end,
                        Fn&& fn) const {
    const size_t row = RowIndex(Slot(time));
    const int wb = node_begin >> 6, we = (node_end + 63) >> 6;
    for (int w = wb; w < we; ++w) {
      std::uint64_t bits = avail_[row + static_cast<size_t>(w)];
      bits &= RangeMask(w, node_begin, node_end);
      while (bits) {
        const int node = (w << 6) + __builtin_ctzll(bits);
        bits &= bits - 1;
        fn(node);
      }
    }
  }

 private:
  struct Entry {
    ValueId value;
    std::int32_t time;  // absolute
    std::int32_t refs;
  };
  struct SpillEntry {
    std::uint32_t slot_index;  // SlotIndex(node, slot) this entry belongs to
    Entry entry;
  };

  size_t SlotIndex(int node, int s) const {
    return static_cast<size_t>(node) * static_cast<size_t>(ii_) +
           static_cast<size_t>(s);
  }
  size_t RowIndex(int s) const {
    return static_cast<size_t>(s) * static_cast<size_t>(words_per_slot_);
  }
  int Slot(int time) const { return ((time % ii_) + ii_) % ii_; }

  /// Mask selecting the bits of word `w` that fall in [begin, end).
  static std::uint64_t RangeMask(int w, int begin, int end) {
    std::uint64_t mask = ~std::uint64_t{0};
    if (begin > (w << 6)) mask &= ~std::uint64_t{0} << (begin - (w << 6));
    if (end < ((w + 1) << 6)) {
      mask &= ~std::uint64_t{0} >> (((w + 1) << 6) - end);
    }
    return mask;
  }

  bool UsableBit(int node, int s) const {
    return (usable_[RowIndex(s) + static_cast<size_t>(node >> 6)] >>
            (node & 63)) &
           1u;
  }
  /// Re-derives the avail bit of (node, s) after a count change.
  void RefreshAvail(int node, int s) {
    const size_t w = RowIndex(s) + static_cast<size_t>(node >> 6);
    const std::uint64_t bit = std::uint64_t{1} << (node & 63);
    const bool avail = (usable_[w] & bit) &&
                       counts_[SlotIndex(node, s)] < capacity_[node];
    if (avail) {
      avail_[w] |= bit;
    } else {
      avail_[w] &= ~bit;
    }
  }

  const Mrrg* mrrg_;
  int ii_;
  int words_per_slot_;
  Span<std::int32_t> capacity_;  ///< Mrrg's SoA capacity column
  /// kInlineOccupants entries per (node, slot), contiguous.
  std::vector<Entry> inline_;
  /// Occupant count per (node, slot) — inline entries + spilled ones.
  std::vector<std::int32_t> counts_;
  /// Overflow beyond the inline block, shared across all slots and
  /// scanned linearly (it is almost always empty).
  std::vector<SpillEntry> spill_;
  /// Slot-major bit planes (see class comment).
  std::vector<std::uint64_t> usable_;  ///< Mrrg::SlotUsable (immutable)
  std::vector<std::uint64_t> avail_;   ///< usable && count < capacity
};

}  // namespace cgra
