#include "mapping/tracker.hpp"

#include <algorithm>
#include <cassert>

#include "mapping/perf.hpp"

namespace cgra {

ResourceTracker::ResourceTracker(const Mrrg& mrrg, int ii)
    : mrrg_(&mrrg), ii_(ii) {
  assert(ii >= 1);
  const size_t slots =
      static_cast<size_t>(mrrg.num_nodes()) * static_cast<size_t>(ii);
  inline_.resize(slots * static_cast<size_t>(kInlineOccupants));
  counts_.assign(slots, 0);
}

bool ResourceTracker::CanOccupy(int node, int time, ValueId value) const {
  PerfCounters& perf = ThreadPerfCounters();
  ++perf.tracker_checks;
  const int s = Slot(time);
  if (!mrrg_->SlotUsable(node, s)) return false;
  const size_t idx = SlotIndex(node, s);
  const std::int32_t count = counts_[idx];
  const Entry* block = &inline_[idx * static_cast<size_t>(kInlineOccupants)];
  const int in_block = std::min(count, kInlineOccupants);
  for (int i = 0; i < in_block; ++i) {
    if (block[i].value == value && block[i].time == time) {
      ++perf.tracker_check_hits;
      return true;  // already ours
    }
  }
  if (count > kInlineOccupants) {
    const std::uint32_t key = static_cast<std::uint32_t>(idx);
    for (const SpillEntry& se : spill_) {
      if (se.slot_index == key && se.entry.value == value &&
          se.entry.time == time) {
        ++perf.tracker_check_hits;
        return true;
      }
    }
  }
  const bool ok = count < mrrg_->node(node).capacity;
  if (ok) ++perf.tracker_check_hits;
  return ok;
}

void ResourceTracker::Occupy(int node, int time, ValueId value) {
  ++ThreadPerfCounters().tracker_occupies;
  const int s = Slot(time);
  const size_t idx = SlotIndex(node, s);
  std::int32_t& count = counts_[idx];
  Entry* block = &inline_[idx * static_cast<size_t>(kInlineOccupants)];
  const int in_block = std::min(count, static_cast<std::int32_t>(kInlineOccupants));
  for (int i = 0; i < in_block; ++i) {
    if (block[i].value == value && block[i].time == time) {
      ++block[i].refs;
      return;
    }
  }
  if (count > kInlineOccupants) {
    const std::uint32_t key = static_cast<std::uint32_t>(idx);
    for (SpillEntry& se : spill_) {
      if (se.slot_index == key && se.entry.value == value &&
          se.entry.time == time) {
        ++se.entry.refs;
        return;
      }
    }
  }
  if (count < kInlineOccupants) {
    block[count] = Entry{value, time, 1};
  } else {
    spill_.push_back(
        SpillEntry{static_cast<std::uint32_t>(idx), Entry{value, time, 1}});
  }
  ++count;
}

void ResourceTracker::Release(int node, int time, ValueId value) {
  ++ThreadPerfCounters().tracker_releases;
  const int s = Slot(time);
  const size_t idx = SlotIndex(node, s);
  std::int32_t& count = counts_[idx];
  Entry* block = &inline_[idx * static_cast<size_t>(kInlineOccupants)];
  const std::uint32_t key = static_cast<std::uint32_t>(idx);
  const int in_block = std::min(count, static_cast<std::int32_t>(kInlineOccupants));
  for (int i = 0; i < in_block; ++i) {
    if (block[i].value == value && block[i].time == time) {
      if (--block[i].refs == 0) {
        // Keep the block dense: fill the hole with the slot's last
        // occupant — the final inline entry, or one pulled back from
        // the shared overflow list when the slot has spilled.
        if (count > kInlineOccupants) {
          for (size_t j = spill_.size(); j-- > 0;) {
            if (spill_[j].slot_index == key) {
              block[i] = spill_[j].entry;
              spill_[j] = spill_.back();
              spill_.pop_back();
              break;
            }
          }
        } else if (i != count - 1) {
          block[i] = block[count - 1];
        }
        --count;
      }
      return;
    }
  }
  if (count > kInlineOccupants) {
    for (size_t j = 0; j < spill_.size(); ++j) {
      if (spill_[j].slot_index == key && spill_[j].entry.value == value &&
          spill_[j].entry.time == time) {
        if (--spill_[j].entry.refs == 0) {
          spill_[j] = spill_.back();
          spill_.pop_back();
          --count;
        }
        return;
      }
    }
  }
  assert(false && "releasing an occupancy that was never recorded");
}

int ResourceTracker::Headroom(int node, int time) const {
  const int s = Slot(time);
  if (!mrrg_->SlotUsable(node, s)) return 0;
  return mrrg_->node(node).capacity - Load(node, s);
}

void ResourceTracker::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  spill_.clear();
}

}  // namespace cgra
