#include "mapping/tracker.hpp"

#include <algorithm>
#include <cassert>

namespace cgra {

ResourceTracker::ResourceTracker(const Mrrg& mrrg, int ii)
    : mrrg_(&mrrg), ii_(ii) {
  assert(ii >= 1);
  occ_.resize(static_cast<size_t>(mrrg.num_nodes()) * static_cast<size_t>(ii));
}

bool ResourceTracker::CanOccupy(int node, int time, ValueId value) const {
  const int s = ((time % ii_) + ii_) % ii_;
  if (!mrrg_->SlotUsable(node, s)) return false;
  const auto& entries = slot(node, s);
  int occupants = 0;
  for (const Entry& e : entries) {
    if (e.value == value && e.time == time) return true;  // already ours
    ++occupants;
  }
  return occupants < mrrg_->node(node).capacity;
}

void ResourceTracker::Occupy(int node, int time, ValueId value) {
  const int s = ((time % ii_) + ii_) % ii_;
  auto& entries = slot(node, s);
  for (Entry& e : entries) {
    if (e.value == value && e.time == time) {
      ++e.refs;
      return;
    }
  }
  entries.push_back(Entry{value, time, 1});
}

void ResourceTracker::Release(int node, int time, ValueId value) {
  const int s = ((time % ii_) + ii_) % ii_;
  auto& entries = slot(node, s);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].value == value && entries[i].time == time) {
      if (--entries[i].refs == 0) {
        entries[i] = entries.back();
        entries.pop_back();
      }
      return;
    }
  }
  assert(false && "releasing an occupancy that was never recorded");
}

int ResourceTracker::Load(int node, int s) const {
  return static_cast<int>(slot(node, s).size());
}

int ResourceTracker::Headroom(int node, int time) const {
  const int s = ((time % ii_) + ii_) % ii_;
  if (!mrrg_->SlotUsable(node, s)) return 0;
  return mrrg_->node(node).capacity - Load(node, s);
}

void ResourceTracker::Reset() {
  for (auto& v : occ_) v.clear();
}

}  // namespace cgra
