#include "mapping/tracker.hpp"

#include <algorithm>
#include <cassert>

#include "mapping/perf.hpp"

namespace cgra {

ResourceTracker::ResourceTracker(const Mrrg& mrrg, int ii)
    : mrrg_(&mrrg),
      ii_(ii),
      words_per_slot_((mrrg.num_nodes() + 63) / 64),
      capacity_(mrrg.capacities()) {
  assert(ii >= 1);
  const size_t slots =
      static_cast<size_t>(mrrg.num_nodes()) * static_cast<size_t>(ii);
  inline_.resize(slots * static_cast<size_t>(kInlineOccupants));
  counts_.assign(slots, 0);

  // The usable plane is derived once from the (immutable) fault state;
  // the avail plane starts as "usable with any capacity at all" and is
  // maintained incrementally from there.
  const size_t words =
      static_cast<size_t>(ii) * static_cast<size_t>(words_per_slot_);
  usable_.assign(words, 0);
  avail_.assign(words, 0);
  for (int s = 0; s < ii; ++s) {
    for (int n = 0; n < mrrg.num_nodes(); ++n) {
      if (!mrrg.SlotUsable(n, s)) continue;
      const size_t w = RowIndex(s) + static_cast<size_t>(n >> 6);
      const std::uint64_t bit = std::uint64_t{1} << (n & 63);
      usable_[w] |= bit;
      if (capacity_[static_cast<size_t>(n)] > 0) avail_[w] |= bit;
    }
  }
}

bool ResourceTracker::CanOccupy(int node, int time, ValueId value) const {
  PerfCounters& perf = ThreadPerfCounters();
  ++perf.tracker_checks;
  const int s = Slot(time);
  // Fast path: one bit answers "usable slot with headroom" — yes for
  // any value, already an occupant or not.
  const std::uint64_t word =
      avail_[RowIndex(s) + static_cast<size_t>(node >> 6)];
  if ((word >> (node & 63)) & 1u) {
    ++perf.tracker_check_hits;
    return true;
  }
  if (!UsableBit(node, s)) return false;
  // Slot is full (or capacity 0): admissible only if this (value,
  // absolute time) already holds an entry.
  const size_t idx = SlotIndex(node, s);
  const std::int32_t count = counts_[idx];
  const Entry* block = &inline_[idx * static_cast<size_t>(kInlineOccupants)];
  const int in_block = std::min(count, kInlineOccupants);
  for (int i = 0; i < in_block; ++i) {
    if (block[i].value == value && block[i].time == time) {
      ++perf.tracker_check_hits;
      return true;  // already ours
    }
  }
  if (count > kInlineOccupants) {
    const std::uint32_t key = static_cast<std::uint32_t>(idx);
    for (const SpillEntry& se : spill_) {
      if (se.slot_index == key && se.entry.value == value &&
          se.entry.time == time) {
        ++perf.tracker_check_hits;
        return true;
      }
    }
  }
  const bool ok = count < capacity_[static_cast<size_t>(node)];
  if (ok) ++perf.tracker_check_hits;
  return ok;
}

void ResourceTracker::Occupy(int node, int time, ValueId value) {
  ++ThreadPerfCounters().tracker_occupies;
  const int s = Slot(time);
  const size_t idx = SlotIndex(node, s);
  std::int32_t& count = counts_[idx];
  Entry* block = &inline_[idx * static_cast<size_t>(kInlineOccupants)];
  const int in_block = std::min(count, static_cast<std::int32_t>(kInlineOccupants));
  for (int i = 0; i < in_block; ++i) {
    if (block[i].value == value && block[i].time == time) {
      ++block[i].refs;
      return;
    }
  }
  if (count > kInlineOccupants) {
    const std::uint32_t key = static_cast<std::uint32_t>(idx);
    for (SpillEntry& se : spill_) {
      if (se.slot_index == key && se.entry.value == value &&
          se.entry.time == time) {
        ++se.entry.refs;
        return;
      }
    }
  }
  if (count < kInlineOccupants) {
    block[count] = Entry{value, time, 1};
  } else {
    spill_.push_back(
        SpillEntry{static_cast<std::uint32_t>(idx), Entry{value, time, 1}});
  }
  ++count;
  RefreshAvail(node, s);
}

void ResourceTracker::Release(int node, int time, ValueId value) {
  ++ThreadPerfCounters().tracker_releases;
  const int s = Slot(time);
  const size_t idx = SlotIndex(node, s);
  std::int32_t& count = counts_[idx];
  Entry* block = &inline_[idx * static_cast<size_t>(kInlineOccupants)];
  const std::uint32_t key = static_cast<std::uint32_t>(idx);
  const int in_block = std::min(count, static_cast<std::int32_t>(kInlineOccupants));
  for (int i = 0; i < in_block; ++i) {
    if (block[i].value == value && block[i].time == time) {
      if (--block[i].refs == 0) {
        // Keep the block dense: fill the hole with the slot's last
        // occupant — the final inline entry, or one pulled back from
        // the shared overflow list when the slot has spilled.
        if (count > kInlineOccupants) {
          for (size_t j = spill_.size(); j-- > 0;) {
            if (spill_[j].slot_index == key) {
              block[i] = spill_[j].entry;
              spill_[j] = spill_.back();
              spill_.pop_back();
              break;
            }
          }
        } else if (i != count - 1) {
          block[i] = block[count - 1];
        }
        --count;
        RefreshAvail(node, s);
      }
      return;
    }
  }
  if (count > kInlineOccupants) {
    for (size_t j = 0; j < spill_.size(); ++j) {
      if (spill_[j].slot_index == key && spill_[j].entry.value == value &&
          spill_[j].entry.time == time) {
        if (--spill_[j].entry.refs == 0) {
          spill_[j] = spill_.back();
          spill_.pop_back();
          --count;
          RefreshAvail(node, s);
        }
        return;
      }
    }
  }
  assert(false && "releasing an occupancy that was never recorded");
}

int ResourceTracker::Headroom(int node, int time) const {
  const int s = Slot(time);
  if (!UsableBit(node, s)) return 0;
  return capacity_[static_cast<size_t>(node)] - Load(node, s);
}

int ResourceTracker::CountAvailable(int time, int node_begin,
                                    int node_end) const {
  const size_t row = RowIndex(Slot(time));
  const int wb = node_begin >> 6, we = (node_end + 63) >> 6;
  int total = 0;
  for (int w = wb; w < we; ++w) {
    const std::uint64_t bits = avail_[row + static_cast<size_t>(w)] &
                               RangeMask(w, node_begin, node_end);
    total += __builtin_popcountll(bits);
  }
  return total;
}

void ResourceTracker::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  spill_.clear();
  // Empty tracker: avail returns to "usable with nonzero capacity".
  for (int s = 0; s < ii_; ++s) {
    const size_t row = RowIndex(s);
    for (int n = 0; n < mrrg_->num_nodes(); ++n) {
      const size_t w = row + static_cast<size_t>(n >> 6);
      const std::uint64_t bit = std::uint64_t{1} << (n & 63);
      if ((usable_[w] & bit) && capacity_[static_cast<size_t>(n)] > 0) {
        avail_[w] |= bit;
      } else {
        avail_[w] &= ~bit;
      }
    }
  }
}

}  // namespace cgra
