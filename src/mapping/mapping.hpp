// The mapping result type (§II-B "Mapping"): "a binding (and
// scheduling) of operations of the application on the hardware
// resources while guaranteeing the dependencies".
//
// A Mapping holds, per DFG op, the (cell, cycle) pair — the "spatial
// and temporal coordinates" of §II-C — plus, per data edge, the route
// through the time-extended resource graph. Under modulo scheduling
// the schedule repeats every `ii` cycles; `length` is the span of one
// iteration (length == ii for non-pipelined execution, length > ii
// when iterations overlap as in Fig. 3's modulo schedule).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arch/arch.hpp"
#include "arch/mrrg.hpp"
#include "ir/dfg.hpp"
#include "support/status.hpp"

namespace cgra {

/// Spatial + temporal coordinates of one op.
struct Placement {
  int cell = -1;  ///< -1 for folded ops (constants, hw-loop counter)
  int time = -1;  ///< absolute cycle within one iteration's schedule
};

/// One step of a value's journey: MRRG node occupied at absolute time.
struct RouteStep {
  int node = -1;
  int time = -1;

  bool operator==(const RouteStep&) const = default;
};

/// The route of one data edge: starts at the producer cell's HOLD at
/// t_producer+1 (the latch), ends at a hold readable by the consumer
/// at t_consumer. Folded producers have empty routes.
struct Route {
  std::vector<RouteStep> steps;
};

struct Mapping {
  int ii = 1;
  int length = 1;
  std::vector<Placement> place;  ///< indexed by OpId
  /// Routes aligned with Dfg::Edges(/*include_pred=*/true) order;
  /// ordering-only edges keep empty routes.
  std::vector<Route> routes;

  const Placement& of(OpId op) const { return place[static_cast<size_t>(op)]; }
};

/// Quality metrics reported by the benches (§II-C: "such that the
/// application executes as fast as possible" — II is the headline
/// number; the rest explain it).
struct MappingStats {
  int ii = 0;
  int length = 0;
  int ops_mapped = 0;
  int cells_used = 0;
  int route_steps = 0;       ///< total HOLD/RT slot-occupancies
  double fu_utilization = 0; ///< ops / (cells * ii)
  /// Crude energy proxy: active FU slots + routed register writes +
  /// configuration bits fetched per iteration.
  double energy_proxy = 0;
};
MappingStats ComputeStats(const Dfg& dfg, const Architecture& arch,
                          const Mapping& mapping);

/// Human-readable schedule table (cells x time), used by Fig. 3's bench
/// and the quickstart example.
std::string RenderSchedule(const Dfg& dfg, const Architecture& arch,
                           const Mapping& mapping);

// ---- binary round-trip (the mapping cache's on-disk payload) ---------------

/// Bump when the Mapping layout or the wire format changes: a blob
/// written under any other version fails to decode, so every on-disk
/// cache entry from before the change degrades to a clean miss.
inline constexpr std::uint32_t kMappingFormatVersion = 1;

/// Versioned, checksummed, platform-independent binary encoding
/// (magic + version + fields + FNV-1a checksum; support/bytes.hpp).
std::string SerializeMapping(const Mapping& mapping);

/// Inverse of SerializeMapping. Rejects wrong magic, wrong version,
/// checksum mismatch, truncation, and trailing garbage with
/// kInvalidArgument — callers (the cache) treat any failure as a miss.
/// A successful decode is structurally sound but NOT semantically
/// checked; run ValidateMapping against the target fabric before
/// trusting the result.
Result<Mapping> DeserializeMapping(std::string_view bytes);

/// Stable 16-hex-digit digest of a mapping's serialized payload; the
/// batch report uses it to prove warm-cache runs are bit-identical.
std::string MappingDigestHex(const Mapping& mapping);

}  // namespace cgra
