#include "mapping/router.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <unordered_map>

namespace cgra {
namespace {

// Dijkstra state key: (node, time, stay) packed into one integer.
// `stay` counts consecutive cycles already spent in `node`; it bounds
// how many entries one path may stack onto a single (node, slot) pair
// — without it a long wait in one register file could silently exceed
// the file's capacity (each II wrap is another live copy).
std::int64_t Key(int node, int time, int stay) {
  return (static_cast<std::int64_t>(node) << 32) |
         (static_cast<std::int64_t>(stay) << 24) | time;
}

}  // namespace

Result<Route> RouteValue(const Mrrg& mrrg, ResourceTracker& tracker,
                         const RouteRequest& request,
                         const RouterOptions& options) {
  const int ii = tracker.ii();
  const int start_time = request.from_time + 1;
  if (start_time > request.to_time) {
    return Error::Unmappable("consumer issues before the producer's latch");
  }
  const int start_node = mrrg.HoldNode(request.from_cell);
  if (!options.ignore_capacity &&
      !tracker.CanOccupy(start_node, start_time, request.value)) {
    return Error::Unmappable("producer's register file is full at the latch cycle");
  }

  const auto& goals = mrrg.ReadableHolds(request.to_cell);
  auto is_goal = [&](int node, int time) {
    return time == request.to_time &&
           std::find(goals.begin(), goals.end(), node) != goals.end();
  };

  struct State {
    double cost;
    int node;
    int time;
    int stay;
  };
  auto cmp = [](const State& a, const State& b) { return a.cost > b.cost; };
  std::priority_queue<State, std::vector<State>, decltype(cmp)> pq(cmp);
  std::unordered_map<std::int64_t, double> best;
  std::unordered_map<std::int64_t, std::int64_t> parent;

  auto node_cost = [&](int node) {
    double c = options.step_cost;
    if (options.history_cost &&
        static_cast<size_t>(node) < options.history_cost->size()) {
      c += (*options.history_cost)[static_cast<size_t>(node)];
    }
    return c;
  };

  // True when a consecutive chain of `chain_len` cycles ending at
  // (node, end_time) fits the capacity of every slot it touches,
  // together with the existing tracker load. The chain hits the slot
  // of `end_time` exactly floor((chain_len - 1) / ii) + 1 times.
  auto chain_fits = [&](int node, int end_time, int chain_len) {
    if (options.ignore_capacity) return true;
    const int hits = (chain_len - 1) / ii + 1;
    const int slot = ((end_time % ii) + ii) % ii;
    return tracker.Load(node, slot) + hits <= mrrg.node(node).capacity;
  };

  const std::int64_t start_key = Key(start_node, start_time, 0);
  best[start_key] = node_cost(start_node);
  pq.push(State{best[start_key], start_node, start_time, 0});
  int expansions = 0;
  std::int64_t goal_key = -1;

  while (!pq.empty()) {
    const State s = pq.top();
    pq.pop();
    const std::int64_t k = Key(s.node, s.time, s.stay);
    auto it = best.find(k);
    if (it == best.end() || it->second < s.cost) continue;
    if (is_goal(s.node, s.time)) {
      goal_key = k;
      break;
    }
    if (++expansions > options.max_expansions) break;
    for (const Mrrg::Link& link : mrrg.OutLinks(s.node)) {
      const int nt = s.time + link.latency;
      if (nt > request.to_time) continue;
      const bool self_stay = link.to == s.node;
      const int nstay = self_stay ? s.stay + 1 : 0;
      if (self_stay) {
        // The whole consecutive chain (nstay + 1 cycles) must fit.
        if (!chain_fits(link.to, nt, nstay + 1)) continue;
      } else if (!options.ignore_capacity &&
                 !tracker.CanOccupy(link.to, nt, request.value)) {
        continue;
      }
      const double nc = s.cost + node_cost(link.to);
      const std::int64_t nk = Key(link.to, nt, nstay);
      auto bit = best.find(nk);
      if (bit == best.end() || nc < bit->second) {
        best[nk] = nc;
        parent[nk] = k;
        pq.push(State{nc, link.to, nt, nstay});
      }
    }
  }

  if (goal_key < 0) {
    return Error::Unmappable("no capacity-respecting route of the required latency");
  }

  Route route;
  for (std::int64_t k = goal_key;;) {
    route.steps.push_back(
        RouteStep{static_cast<int>(k >> 32),
                  static_cast<int>(k & 0xFFFFFF)});
    auto it = parent.find(k);
    if (it == parent.end()) break;
    k = it->second;
  }
  std::reverse(route.steps.begin(), route.steps.end());

  if (!options.ignore_capacity) {
    for (const RouteStep& step : route.steps) {
      tracker.Occupy(step.node, step.time, request.value);
    }
    // Defence in depth: non-consecutive revisits of a node are not
    // covered by the stay counter; verify the committed load and back
    // out if anything overflowed.
    for (const RouteStep& step : route.steps) {
      const int slot = ((step.time % ii) + ii) % ii;
      if (tracker.Load(step.node, slot) > mrrg.node(step.node).capacity) {
        ReleaseRoute(tracker, route, request.value);
        return Error::Unmappable("route would overflow a register file");
      }
    }
  }
  return route;
}

void ReleaseRoute(ResourceTracker& tracker, const Route& route, ValueId value) {
  for (const RouteStep& step : route.steps) {
    tracker.Release(step.node, step.time, value);
  }
}

}  // namespace cgra
