#include "mapping/router.hpp"

#include <algorithm>
#include <cassert>
#include <climits>
#include <queue>

#include "mapping/perf.hpp"
#include "support/str.hpp"
#include "telemetry/telemetry.hpp"

namespace cgra {
namespace {

// Search state. `stay` counts consecutive cycles already spent in
// `node`; it bounds how many entries one path may stack onto a single
// (node, slot) pair — without it a long wait in one register file
// could silently exceed the file's capacity (each II wrap is another
// live copy).
struct State {
  double f;  ///< g + admissible remaining-cost bound (== g without A*)
  double g;  ///< cost so far
  int node;
  int time;
  int stay;
};

struct StateCmp {
  bool operator()(const State& a, const State& b) const { return a.f > b.f; }
};

// priority_queue subclass that exposes its container, so the heap
// storage can be recycled across queries instead of reallocating.
class StateQueue
    : public std::priority_queue<State, std::vector<State>, StateCmp> {
 public:
  explicit StateQueue(std::vector<State>&& storage)
      : priority_queue(StateCmp{}, std::move(storage)) {}
  std::vector<State> TakeStorage() {
    c.clear();
    return std::move(c);
  }
};

// Per-thread scratch arena: flat best/parent vectors indexed by the
// packed (node, time - start, stay) state. Entries are epoch-stamped —
// an entry belongs to the current query iff stamp == epoch — so reuse
// across queries (and across II-escalation retries inside one mapper
// run) needs no clearing and can never leak a stale parent chain into
// a later route. The goal/hop caches carry their own epoch so a
// RouteFanout batch can keep them warm across consecutive sinks on the
// same consumer cell while the per-state stamps advance.
struct Scratch {
  std::vector<double> best;
  std::vector<std::int32_t> parent;      ///< arena index of predecessor, -1 root
  std::vector<std::uint32_t> stamp;      ///< per-state epoch
  std::vector<std::uint32_t> goal_stamp; ///< per-node: is a goal this goal-epoch
  std::vector<std::uint32_t> hop_stamp;  ///< per-node: hop_lb cache validity
  std::vector<std::int32_t> hop_lb;      ///< per-node cached hops-to-goal bound
  std::vector<State> heap_storage;
  std::uint32_t epoch = 0;
  std::uint32_t goal_epoch = 0;
  std::uint64_t reuses = 0;
  std::uint64_t grows = 0;

  /// Starts a query: bumps the state epoch (clearing all state stamps
  /// on the rare uint32 wrap) and guarantees capacity for `states`
  /// packed states and `nodes` per-node entries. Returns true when the
  /// arena had to (re)allocate, false when the warm arrays were reused
  /// as-is.
  bool Begin(std::size_t states, std::size_t nodes) {
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    bool grew = false;
    if (states > best.size()) {
      best.resize(states);
      parent.resize(states);
      stamp.resize(states, 0u);  // new stamps start invalid
      ++grows;
      grew = true;
    } else {
      ++reuses;
    }
    if (nodes > goal_stamp.size()) {
      goal_stamp.resize(nodes, 0u);
      hop_stamp.resize(nodes, 0u);
      hop_lb.resize(nodes, 0);
    }
    return grew;
  }

  /// Invalidates the goal set and hop-bound caches (same wrap
  /// discipline as the state stamps).
  void BeginGoals() {
    if (++goal_epoch == 0) {
      std::fill(goal_stamp.begin(), goal_stamp.end(), 0u);
      std::fill(hop_stamp.begin(), hop_stamp.end(), 0u);
      goal_epoch = 1;
    }
  }
};

Scratch& TlsScratch() {
  static thread_local Scratch scratch;
  return scratch;
}

// One route query against the calling thread's arena. Exactly the
// semantics RouteValue documents; RouteFanout calls it once per sink.
// `new_goals` == false reuses the previous call's goal set and hop
// cache — valid only when the consumer cell is unchanged (the caches
// are functions of the goal set alone, not of time or tracker state).
Result<Route> RouteOne(const Mrrg& mrrg, ResourceTracker& tracker,
                       const RouteRequest& request,
                       const RouterOptions& options, bool new_goals) {
  PerfCounters& perf = ThreadPerfCounters();
  ++perf.router_queries;

  const int ii = tracker.ii();
  const int start_time = request.from_time + 1;
  if (start_time > request.to_time) {
    return Error::Unmappable("consumer issues before the producer's latch");
  }
  const int start_node = mrrg.HoldNode(request.from_cell);
  if (!options.ignore_capacity &&
      !tracker.CanOccupy(start_node, start_time, request.value)) {
    return Error::Unmappable("producer's register file is full at the latch cycle");
  }

  // ---- arena layout for this query ----------------------------------------
  // State index = (node * horizon + (time - start_time)) * stay_bins + stay.
  // `stay` is bounded by the tightest of: the time window itself (each
  // waited cycle advances time), and — when capacities apply — the
  // largest chain any register file can hold, ceil-free form
  // max_capacity * II (a chain of that length already occupies every
  // capacity unit of its slot).
  const int num_nodes = mrrg.num_nodes();
  const int horizon = request.to_time - start_time + 1;
  const int stay_bins =
      options.ignore_capacity
          ? horizon
          : std::max(1, std::min(horizon, mrrg.max_capacity() * ii));
  const std::size_t states = static_cast<std::size_t>(num_nodes) *
                             static_cast<std::size_t>(horizon) *
                             static_cast<std::size_t>(stay_bins);
  assert(states < static_cast<std::size_t>(INT32_MAX) &&
         "route window too large for the int32 parent arena");

  Scratch& scratch = TlsScratch();
  if (scratch.Begin(states, static_cast<std::size_t>(num_nodes))) {
    ++perf.arena_grows;
  } else {
    ++perf.arena_reuses;
  }
  const std::uint32_t epoch = scratch.epoch;

  auto index = [&](int node, int time, int stay) -> std::size_t {
    return (static_cast<std::size_t>(node) * static_cast<std::size_t>(horizon) +
            static_cast<std::size_t>(time - start_time)) *
               static_cast<std::size_t>(stay_bins) +
           static_cast<std::size_t>(stay);
  };

  const auto goals = mrrg.ReadableHolds(request.to_cell);
  if (new_goals) {
    scratch.BeginGoals();
    for (int g : goals) {
      scratch.goal_stamp[static_cast<std::size_t>(g)] = scratch.goal_epoch;
    }
  }
  const std::uint32_t goal_epoch = scratch.goal_epoch;

  auto node_cost = [&](int node) {
    double c = options.step_cost;
    if (options.history_cost &&
        static_cast<size_t>(node) < options.history_cost->size()) {
      c += (*options.history_cost)[static_cast<size_t>(node)];
    }
    return c;
  };

  // ---- admissible A* bound -------------------------------------------------
  // Every remaining step costs >= step_cost (history costs are
  // non-negative), every step advances time by at most one cycle, and
  // reaching a goal cell from `node`'s cell needs at least the fabric
  // hop distance in both steps and cycles. Shared-RF nodes (cell < 0)
  // contribute no hop bound.
  auto goal_hops = [&](int node) -> int {
    std::uint32_t& cached = scratch.hop_stamp[static_cast<std::size_t>(node)];
    if (cached == goal_epoch) {
      return scratch.hop_lb[static_cast<std::size_t>(node)];
    }
    int bound = 0;
    const int cell = mrrg.cell(node);
    if (cell >= 0) {
      const Architecture& arch = mrrg.arch();
      bound = INT_MAX;
      for (int g : goals) {
        const int gcell = mrrg.cell(g);
        if (gcell < 0) {
          bound = 0;
          break;
        }
        bound = std::min(bound, arch.HopDistance(cell, gcell));
      }
      if (bound == INT_MAX) bound = 0;
    }
    cached = goal_epoch;
    scratch.hop_lb[static_cast<std::size_t>(node)] = bound;
    return bound;
  };
  const bool use_h = options.use_heuristic;
  auto heuristic = [&](int node, int time) -> double {
    if (!use_h) return 0.0;
    const int lb = std::max(request.to_time - time, goal_hops(node));
    return options.step_cost * lb;
  };

  // True when a consecutive chain of `chain_len` cycles ending at
  // (node, end_time) fits the capacity of every slot it touches,
  // together with the existing tracker load. The chain hits the slot
  // of `end_time` exactly floor((chain_len - 1) / ii) + 1 times.
  auto chain_fits = [&](int node, int end_time, int chain_len) {
    if (options.ignore_capacity) return true;
    const int hits = (chain_len - 1) / ii + 1;
    const int slot = ((end_time % ii) + ii) % ii;
    return tracker.Load(node, slot) + hits <= mrrg.capacity(node);
  };

  std::uint64_t pushes = 0, pops = 0;
  const std::size_t start_idx = index(start_node, start_time, 0);
  scratch.best[start_idx] = node_cost(start_node);
  scratch.parent[start_idx] = -1;
  scratch.stamp[start_idx] = epoch;
  StateQueue pq(std::move(scratch.heap_storage));
  pq.push(State{scratch.best[start_idx] + heuristic(start_node, start_time),
                scratch.best[start_idx], start_node, start_time, 0});
  ++pushes;

  int expansions = 0;
  std::int64_t goal_idx = -1;

  while (!pq.empty()) {
    const State s = pq.top();
    pq.pop();
    ++pops;
    const std::size_t k = index(s.node, s.time, s.stay);
    if (scratch.stamp[k] != epoch || scratch.best[k] < s.g) continue;
    if (s.time == request.to_time &&
        scratch.goal_stamp[static_cast<std::size_t>(s.node)] == goal_epoch) {
      goal_idx = static_cast<std::int64_t>(k);
      break;
    }
    if (++expansions > options.max_expansions) break;
    for (const Mrrg::Link& link : mrrg.OutLinks(s.node)) {
      const int nt = s.time + link.latency;
      if (nt > request.to_time) continue;
      const bool self_stay = link.to == s.node;
      const int nstay = self_stay ? s.stay + 1 : 0;
      if (self_stay) {
        // The whole consecutive chain (nstay + 1 cycles) must fit.
        if (!chain_fits(link.to, nt, nstay + 1)) continue;
      } else if (!options.ignore_capacity &&
                 !tracker.CanOccupy(link.to, nt, request.value)) {
        continue;
      }
      // A state that still needs more fabric hops than it has cycles
      // left can never make the consumer's deadline; drop it early.
      if (use_h && goal_hops(link.to) > request.to_time - nt) continue;
      assert(nstay < stay_bins);
      const double nc = s.g + node_cost(link.to);
      const std::size_t nk = index(link.to, nt, nstay);
      if (scratch.stamp[nk] != epoch || nc < scratch.best[nk]) {
        scratch.stamp[nk] = epoch;
        scratch.best[nk] = nc;
        scratch.parent[nk] = static_cast<std::int32_t>(k);
        pq.push(State{nc + heuristic(link.to, nt), nc, link.to, nt, nstay});
        ++pushes;
      }
    }
  }

  scratch.heap_storage = pq.TakeStorage();
  perf.router_pushes += pushes;
  perf.router_pops += pops;
  perf.router_expansions += static_cast<std::uint64_t>(expansions);

  if (goal_idx < 0) {
    return Error::Unmappable("no capacity-respecting route of the required latency");
  }

  Route route;
  const std::size_t plane = static_cast<std::size_t>(stay_bins);
  for (std::int64_t k = goal_idx; k >= 0;
       k = scratch.parent[static_cast<std::size_t>(k)]) {
    const std::size_t uk = static_cast<std::size_t>(k);
    const int node = static_cast<int>(uk / (plane * static_cast<std::size_t>(horizon)));
    const int time =
        start_time + static_cast<int>((uk / plane) % static_cast<std::size_t>(horizon));
    route.steps.push_back(RouteStep{node, time});
  }
  std::reverse(route.steps.begin(), route.steps.end());

  if (!options.ignore_capacity) {
    for (const RouteStep& step : route.steps) {
      tracker.Occupy(step.node, step.time, request.value);
    }
    // Defence in depth: non-consecutive revisits of a node are not
    // covered by the stay counter; verify the committed load and back
    // out if anything overflowed.
    for (const RouteStep& step : route.steps) {
      const int slot = ((step.time % ii) + ii) % ii;
      if (tracker.Load(step.node, slot) > mrrg.capacity(step.node)) {
        ReleaseRoute(tracker, route, request.value);
        return Error::Unmappable("route would overflow a register file");
      }
    }
  }
  ++perf.router_routed;
  return route;
}

}  // namespace

Result<Route> RouteValue(const Mrrg& mrrg, ResourceTracker& tracker,
                         const RouteRequest& request,
                         const RouterOptions& options) {
  // Per-query spans only under the detail gate: a mapper issues
  // thousands of these, which would swamp the rings on a normal trace.
  telemetry::Span query_span(telemetry::DetailEnabled() ? "phase.route"
                                                        : nullptr);
  return RouteOne(mrrg, tracker, request, options, /*new_goals=*/true);
}

Result<std::vector<Route>> RouteFanout(const Mrrg& mrrg,
                                       ResourceTracker& tracker,
                                       const RouteRequest* requests,
                                       std::size_t num_requests,
                                       const RouterOptions& options) {
  telemetry::Span batch_span(telemetry::DetailEnabled() ? "phase.route_fanout"
                                                        : nullptr);
  std::vector<Route> routes;
  routes.reserve(num_requests);
  for (std::size_t i = 1; i < num_requests; ++i) {
    if (requests[i].from_cell != requests[0].from_cell ||
        requests[i].from_time != requests[0].from_time ||
        requests[i].value != requests[0].value) {
      return Error::Internal(
          "RouteFanout requests must share (from_cell, from_time, value)");
    }
  }

  for (std::size_t i = 0; i < num_requests; ++i) {
    // The goal set and hop-bound caches depend only on the consumer
    // cell; consecutive sinks on the same consumer keep them warm.
    const bool new_goals =
        i == 0 || requests[i].to_cell != requests[i - 1].to_cell;
    auto route = RouteOne(mrrg, tracker, requests[i], options, new_goals);
    if (!route.ok()) {
      // Atomic batch: un-commit every earlier sink before reporting.
      if (!options.ignore_capacity) {
        for (std::size_t j = routes.size(); j-- > 0;) {
          ReleaseRoute(tracker, routes[j], requests[j].value);
        }
      }
      return Error::Unmappable(
          StrFormat("fanout sink %d/%d unroutable: %s", static_cast<int>(i),
                    static_cast<int>(num_requests),
                    route.error().message.c_str()));
    }
    routes.push_back(std::move(route).value());
  }

  PerfCounters& perf = ThreadPerfCounters();
  ++perf.fanout_batches;
  perf.fanout_batched_routes += static_cast<std::uint64_t>(num_requests);
  return routes;
}

void ReleaseRoute(ResourceTracker& tracker, const Route& route, ValueId value) {
  for (const RouteStep& step : route.steps) {
    tracker.Release(step.node, step.time, value);
  }
}

namespace router_internal {

ScratchStats CurrentScratchStats() {
  const Scratch& scratch = TlsScratch();
  ScratchStats stats;
  stats.epoch = scratch.epoch;
  stats.capacity = scratch.best.size();
  stats.reuses = scratch.reuses;
  stats.grows = scratch.grows;
  return stats;
}

void ResetScratchForTest() { TlsScratch() = Scratch{}; }

void SetEpochForTest(std::uint32_t epoch) {
  TlsScratch().epoch = epoch;
  TlsScratch().goal_epoch = epoch;
}

}  // namespace router_internal

}  // namespace cgra
