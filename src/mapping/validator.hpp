// Mapping validator: the executable form of the §II-C problem
// statement. EVERY mapper's output must pass this before it counts —
// the property tests and every bench harness enforce it.
//
// Checks:
//  (1) every non-folded op is bound to a capability-compatible cell
//      within the schedule, and II fits the configuration memory;
//  (2) FU exclusivity: one op per (cell, time mod II);
//  (3) memory-bank ports are not oversubscribed in any slot;
//  (4) every data edge has a route that starts at the producer's latch,
//      follows real MRRG links with their latencies, ends in a hold the
//      consumer's FU can read at its exact issue cycle (loop-carried
//      edges shifted by II*distance), and ordering edges are respected;
//  (5) no HOLD/RT resource exceeds capacity in any slot, counting
//      modulo self-overlap and net sharing correctly.
#pragma once

#include <cstddef>

#include "arch/arch.hpp"
#include "arch/mrrg.hpp"
#include "ir/dfg.hpp"
#include "mapping/mapping.hpp"
#include "support/status.hpp"

namespace cgra {

Status ValidateMapping(const Dfg& dfg, const Architecture& arch,
                       const Mapping& mapping);

}  // namespace cgra
