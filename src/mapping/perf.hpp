// Hot-path performance counters.
//
// The router and the resource tracker are the PathFinder-style inner
// loop every mapper funnels through (§II-B routing; DRESC [22] and EMS
// [37] spend their time here). These counters make that loop
// observable at near-zero cost: each worker thread accumulates into
// its own thread-local PerfCounters, and the attempt brackets in
// mappers/common snapshot the delta so every kAttemptDone MapEvent —
// and therefore every MapTrace JSON — carries the router/tracker
// effort behind it. bench/perf_suite turns the same counters into
// queries/sec and hit-rate columns of BENCH_perf.json.
//
// Thread model: counters are strictly per-thread (no atomics, no
// sharing). A mapper attempt runs on one thread, so the delta around
// attempt() is exactly that attempt's work; the portfolio engine's
// racing mappers each accumulate into their own thread's counters.
#pragma once

#include <cstdint>

namespace cgra {

struct PerfCounters {
  /// Saturating add: MapTrace::TotalPerf sums counters across
  /// thousands of batch attempts, and a wrapped uint64 would report a
  /// tiny total instead of "a lot". Pegging at max is the honest
  /// aggregate.
  static std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) {
    const std::uint64_t s = a + b;
    return s < a ? ~std::uint64_t{0} : s;
  }

  // Router (mapping/router.cpp).
  std::uint64_t router_queries = 0;     ///< route queries (RouteValue + RouteFanout sinks)
  std::uint64_t router_routed = 0;      ///< ... that returned a route
  std::uint64_t fanout_batches = 0;     ///< RouteFanout calls (one per placed-op fanout set)
  std::uint64_t fanout_batched_routes = 0;  ///< routes committed via those batches
  std::uint64_t router_pushes = 0;      ///< priority-queue pushes
  std::uint64_t router_pops = 0;        ///< priority-queue pops
  std::uint64_t router_expansions = 0;  ///< states expanded (out-links walked)
  // Router scratch arena (flat best/parent state, epoch-stamped).
  std::uint64_t arena_reuses = 0;       ///< queries served by a warm arena
  std::uint64_t arena_grows = 0;        ///< arena (re)allocations
  // Resource tracker (mapping/tracker.cpp).
  std::uint64_t tracker_checks = 0;     ///< CanOccupy calls
  std::uint64_t tracker_check_hits = 0; ///< ... that said yes
  std::uint64_t tracker_occupies = 0;   ///< Occupy calls
  std::uint64_t tracker_releases = 0;   ///< Release calls

  /// Aggregation saturates instead of wrapping (see SatAdd). The
  /// per-thread accumulators this diffs over are nowhere near 2^64, so
  /// only cross-attempt aggregation needed the guard.
  PerfCounters& operator+=(const PerfCounters& o) {
    router_queries = SatAdd(router_queries, o.router_queries);
    router_routed = SatAdd(router_routed, o.router_routed);
    fanout_batches = SatAdd(fanout_batches, o.fanout_batches);
    fanout_batched_routes = SatAdd(fanout_batched_routes, o.fanout_batched_routes);
    router_pushes = SatAdd(router_pushes, o.router_pushes);
    router_pops = SatAdd(router_pops, o.router_pops);
    router_expansions = SatAdd(router_expansions, o.router_expansions);
    arena_reuses = SatAdd(arena_reuses, o.arena_reuses);
    arena_grows = SatAdd(arena_grows, o.arena_grows);
    tracker_checks = SatAdd(tracker_checks, o.tracker_checks);
    tracker_check_hits = SatAdd(tracker_check_hits, o.tracker_check_hits);
    tracker_occupies = SatAdd(tracker_occupies, o.tracker_occupies);
    tracker_releases = SatAdd(tracker_releases, o.tracker_releases);
    return *this;
  }

  /// Counter-wise difference (for before/after snapshots around an
  /// attempt). Counters are monotonic per thread, so `after - before`
  /// never underflows when taken on the same thread.
  PerfCounters operator-(const PerfCounters& o) const {
    PerfCounters d;
    d.router_queries = router_queries - o.router_queries;
    d.router_routed = router_routed - o.router_routed;
    d.fanout_batches = fanout_batches - o.fanout_batches;
    d.fanout_batched_routes = fanout_batched_routes - o.fanout_batched_routes;
    d.router_pushes = router_pushes - o.router_pushes;
    d.router_pops = router_pops - o.router_pops;
    d.router_expansions = router_expansions - o.router_expansions;
    d.arena_reuses = arena_reuses - o.arena_reuses;
    d.arena_grows = arena_grows - o.arena_grows;
    d.tracker_checks = tracker_checks - o.tracker_checks;
    d.tracker_check_hits = tracker_check_hits - o.tracker_check_hits;
    d.tracker_occupies = tracker_occupies - o.tracker_occupies;
    d.tracker_releases = tracker_releases - o.tracker_releases;
    return d;
  }

  bool Any() const {
    return router_queries | router_pushes | router_pops | tracker_checks |
           tracker_occupies | tracker_releases;
  }
};

/// This thread's accumulator. Router and tracker bump it directly;
/// consumers snapshot before/after a unit of work and diff.
inline PerfCounters& ThreadPerfCounters() {
  static thread_local PerfCounters counters;
  return counters;
}

}  // namespace cgra
