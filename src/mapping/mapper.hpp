// The Mapper interface — the library's core abstraction.
//
// Table I of the survey classifies twenty years of techniques along
// two axes: solution strategy (heuristic / meta-heuristic / exact) and
// problem slice (spatial mapping / temporal mapping / binding-only /
// scheduling-only). Every implementation in src/mappers realises one
// cell of that table behind this single interface, so the Table-I
// bench can run them head-to-head on identical inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "ir/dfg.hpp"
#include "mapping/mapping.hpp"
#include "mapping/observer.hpp"
#include "support/status.hpp"
#include "support/stop_token.hpp"
#include "support/timer.hpp"

namespace cgra {

class ByteWriter;  // support/bytes.hpp
class MrrgCache;   // arch/mrrg_cache.hpp

/// Table I taxonomy coordinates.
enum class TechniqueClass {
  kHeuristic,
  kMetaPopulation,  ///< GA / QEA
  kMetaLocalSearch, ///< simulated annealing
  kExactIlp,        ///< ILP or branch & bound
  kExactCsp,        ///< CP / SAT / SMT
};
std::string_view TechniqueClassName(TechniqueClass c);

enum class MappingKind {
  kSpatial,    ///< binding only, II == 1, fully pipelined fabric
  kTemporal,   ///< binding + scheduling solved together
  kBinding,    ///< binding under an externally fixed schedule
  kScheduling, ///< scheduling with binding delegated to a helper
};
std::string_view MappingKindName(MappingKind k);

struct MapperOptions {
  int min_ii = 1;             ///< II floor (harnesses raise it when code
                              ///< generation rejects a low-II mapping)
  int max_ii = 16;            ///< II ceiling for the escalation loop
  int extra_slack = 8;        ///< schedule-length slack beyond critical path
  Deadline deadline;          ///< overall time budget
  std::uint64_t seed = 1;     ///< stochastic mappers are deterministic per seed
  bool verbose = false;

  /// Cooperative cancellation. CONTRACT: Map() implementations must
  /// check `stop` at least once per II attempt (EscalateIi does this
  /// for every escalating mapper) and surface cancellation as
  /// Error::Code::kResourceLimit. Long-running search loops — the
  /// exact solvers, branch & bound, annealing/GA generations — poll it
  /// from their inner loops so the portfolio engine can cancel losing
  /// mappers mid-search.
  StopToken stop;

  /// Optional progress sink (see mapping/observer.hpp). May be invoked
  /// concurrently when mappers race; implementations must be
  /// thread-safe. Null disables observation.
  MapObserver* observer = nullptr;

  /// Collect a per-attempt SearchLog (telemetry/search_log.hpp) and
  /// attach it to each kAttemptDone event. Requires an observer; also
  /// gated by the process-wide telemetry::SearchDetail level and by
  /// -DCGRA_TELEMETRY. Collection never changes what the mapper
  /// computes, so — like the observer — this is NOT a semantic field
  /// and stays out of AppendCanonicalBytes.
  bool search_log = false;

  /// Optional shared MRRG memo (arch/mrrg_cache.hpp). When set,
  /// mappers obtain the time-extended resource graph through the cache
  /// instead of rebuilding it; the portfolio engine shares one cache
  /// across every racing mapper. Null means build-your-own.
  MrrgCache* mrrg_cache = nullptr;

  /// Canonical byte encoding of the SEMANTIC fields only — min_ii,
  /// max_ii, extra_slack, seed. The deadline, stop token, observer and
  /// caches steer *how long* a mapper searches, not *which problem* it
  /// solves, and verbose only changes logging; none of them belong in
  /// a content-addressed cache key (docs/CACHE.md spells out the
  /// resulting staleness contract). Layout carries a version tag.
  void AppendCanonicalBytes(ByteWriter& w) const;

  /// Stable 16-hex-digit digest of the canonical encoding; the options
  /// component of the mapping-cache key (src/cache).
  std::string Digest() const;
};

struct MapOutcome {
  Mapping mapping;
  int attempts = 0;       ///< II values / restarts tried
  double seconds = 0.0;   ///< wall time spent
};

class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual std::string name() const = 0;
  virtual TechniqueClass technique() const = 0;
  virtual MappingKind kind() const = 0;
  /// Which surveyed work this mapper is modelled after (citation tag).
  virtual std::string lineage() const = 0;

  /// Maps `dfg` onto `arch`. The result, when ok, is guaranteed by the
  /// implementations to pass ValidateMapping (and the test suite
  /// re-checks it).
  virtual Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                              const MapperOptions& options) const = 0;
};

/// Compatibility wrapper: freshly constructed instances of every
/// shipped mapper, in the registry's stable order. New code should use
/// MapperRegistry (mappers/registry.hpp), which adds name / technique /
/// kind lookup on shared instances.
std::vector<std::unique_ptr<Mapper>> MakeAllMappers();

}  // namespace cgra
