// Incremental place-and-route state shared by the heuristic and
// meta-heuristic mappers.
//
// Maintains a partial mapping at a fixed II: op placements, FU/RF/route
// occupancy, memory-bank port usage, and the routes of every data edge
// whose two endpoints are placed. TryPlace is transactional — if any
// incident edge cannot be routed the placement rolls back — which is
// what lets schedulers backtrack cheaply (the Das et al. [24] style of
// exploring partial solutions).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "arch/mrrg.hpp"
#include "ir/dfg.hpp"
#include "mapping/mapping.hpp"
#include "mapping/router.hpp"
#include "mapping/tracker.hpp"

namespace cgra {

class PlaceRouteState {
 public:
  /// `mrrg` must outlive the state. `ii` >= 1.
  PlaceRouteState(const Dfg& dfg, const Architecture& arch, const Mrrg& mrrg,
                  int ii);

  const Dfg& dfg() const { return *dfg_; }
  const Architecture& arch() const { return *arch_; }
  int ii() const { return ii_; }

  bool IsPlaced(OpId op) const {
    return place_[static_cast<size_t>(op)].cell >= 0;
  }
  const Placement& placement(OpId op) const {
    return place_[static_cast<size_t>(op)];
  }

  /// Ops that must be placed (folded constants excluded).
  const std::vector<OpId>& MappableOps() const { return mappable_; }

  /// Cells whose FU can execute `op` at all (capability only).
  std::vector<int> CandidateCells(OpId op) const;

  /// Attempts to place `op` on `cell` at absolute `time`, routing every
  /// data edge whose other endpoint is already placed and checking
  /// ordering edges and bank ports. All-or-nothing.
  bool TryPlace(OpId op, int cell, int time,
                const RouterOptions& router_options = {});

  /// Removes `op`, releasing its FU slot, bank port and incident routes.
  void Unplace(OpId op);

  /// Number of ops currently placed.
  int placed_count() const { return placed_count_; }

  /// Total route steps created by the last successful TryPlace (the
  /// routing cost of that placement; used by cost-driven mappers).
  int last_route_steps() const { return last_route_steps_; }

  /// Why the last TryPlace failed (diagnostics for RAMP-style
  /// failure-driven escalation).
  enum class FailReason {
    kNone,
    kIncompatibleCell,
    kFuBusy,
    kBankPortConflict,
    kTimingViolated,  ///< an incident edge's latency would be < 1
    kRouteCongested,  ///< router found no capacity-respecting path
  };
  FailReason last_fail() const { return last_fail_; }

  /// Assembles the final Mapping; call only when every mappable op is
  /// placed.
  Mapping Finalize() const;

 private:
  struct EdgeRef {
    int edge_index;  ///< into edges_
  };

  bool RouteEdge(int edge_index, const RouterOptions& options);
  void UnrouteEdge(int edge_index);
  int BankOf(int cell) const { return arch_->caps(cell).bank; }

  const Dfg* dfg_;
  const Architecture* arch_;
  const Mrrg* mrrg_;
  int ii_;
  ResourceTracker tracker_;
  std::vector<Placement> place_;
  std::vector<DfgEdge> edges_;             ///< Dfg::Edges(true) order
  std::vector<std::optional<Route>> routes_;
  std::vector<std::vector<int>> edges_of_; ///< op -> incident edge indices
  std::vector<std::vector<int>> bank_load_;///< bank -> per-slot access count
  int placed_count_ = 0;
  std::vector<OpId> mappable_;
  FailReason last_fail_ = FailReason::kNone;
  int last_route_steps_ = 0;
};

}  // namespace cgra
