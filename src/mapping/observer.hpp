// Mapping observability: a progress-event sink for mappers.
//
// The survey's Table I bench used to report only that an exact cell
// timed out; with an observer attached the harness can say *why*: which
// II attempts ran, how long each took, which error ended them, and how
// hard the backing solver worked. MapperOptions carries an optional
// MapObserver*; EscalateIi (mappers/common) emits one kAttemptStart /
// kAttemptDone pair per II tried, the solver-backed mappers add kNote
// events with their iteration counts, and the portfolio engine
// (src/engine) brackets each mapper with kMapperStart / kMapperDone.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "mapping/perf.hpp"
#include "support/status.hpp"
#include "telemetry/search_log.hpp"

namespace cgra {

/// One progress event. Which fields are meaningful depends on `kind`;
/// unused numeric fields keep their defaults.
struct MapEvent {
  enum class Kind {
    kMapperStart,  ///< a mapper began (engine-emitted)
    kAttemptStart, ///< one II attempt began
    kAttemptDone,  ///< one II attempt finished (ok or error filled in)
    kMapperDone,   ///< a mapper finished (ok/error + total seconds)
    kNote,         ///< free-form detail (e.g. solver iteration counts)
    /// One mapping-cache probe (engine-emitted, src/cache). Field
    /// reuse: `message` holds the 16-hex cache key, `mapper` the tier
    /// that answered ("mem"/"disk", empty on a miss), `ok` whether the
    /// lookup was served from cache, and `error_code` is kInternal
    /// when a candidate entry was found but degraded to a miss
    /// (validation or decode failure). MapTrace::ToJson serialises
    /// these as the "cache" array.
    kCacheLookup,
  };

  Kind kind = Kind::kNote;
  std::string mapper;                     ///< Mapper::name()
  int ii = -1;                            ///< attempted II (-1: not an attempt)
  bool ok = false;                        ///< kAttemptDone / kMapperDone
  std::optional<Error::Code> error_code;  ///< failure tag when !ok
  std::string message;                    ///< error message or note text
  double seconds = 0.0;                   ///< wall time of the attempt/mapper
  std::int64_t solver_steps = -1;         ///< conflicts/nodes/iterations, -1 unknown
  int repair_round = 0;                   ///< RunWithRepair round (0 = first try)
  std::string fault_digest;               ///< FaultModel::Digest() of the fabric
  /// Telemetry correlation id (telemetry::NewCorrelation) shared with
  /// the span bracketing the same attempt, so a MapTrace row can be
  /// joined against the Chrome-trace spans and metrics behind it.
  /// 0 when tracing was off.
  std::uint64_t correlation = 0;
  /// Router/tracker hot-path effort behind this attempt (the delta of
  /// the worker thread's PerfCounters across attempt(); see
  /// mapping/perf.hpp). All-zero for events that bracket no search.
  PerfCounters perf;
  /// Process-isolation outcome of the bracketing entry (engine-emitted;
  /// see EngineAttempt::sandbox for the vocabulary). Empty for
  /// in-process runs, so existing traces are unchanged.
  std::string sandbox;
  /// Search introspection for this attempt (telemetry/search_log.hpp):
  /// placement counters, fabric congestion heatmap, solver progress,
  /// cost curves. Attached to kAttemptDone when
  /// MapperOptions::search_log collection was active; null otherwise
  /// (and always null under -DCGRA_TELEMETRY=0).
  std::shared_ptr<const telemetry::SearchLog> search;
};

/// Progress sink. The portfolio engine invokes a single observer from
/// every racing mapper thread concurrently, so implementations MUST be
/// thread-safe (MapTrace in src/engine locks internally).
class MapObserver {
 public:
  virtual ~MapObserver() = default;
  virtual void OnEvent(const MapEvent& event) = 0;
};

/// Null-safe notification helper used by mappers.
inline void NotifyObserver(MapObserver* observer, const MapEvent& event) {
  if (observer) observer->OnEvent(event);
}

}  // namespace cgra
