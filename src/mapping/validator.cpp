#include "mapping/validator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "mapping/tracker.hpp"
#include "support/str.hpp"

namespace cgra {

Status ValidateMapping(const Dfg& dfg, const Architecture& arch,
                       const Mapping& m) {
  if (Status s = dfg.Verify(); !s.ok()) return s;
  if (Status s = arch.Validate(); !s.ok()) return s;
  if (m.ii < 1) return Error::InvalidArgument("II must be >= 1");
  if (m.ii > arch.MaxIi()) {
    return Error::InvalidArgument(
        StrFormat("II %d exceeds the configuration depth %d", m.ii, arch.MaxIi()));
  }
  if (static_cast<int>(m.place.size()) != dfg.num_ops()) {
    return Error::InvalidArgument("placement vector size mismatch");
  }

  const Mrrg mrrg(arch);
  auto slot_of = [&](int time) { return ((time % m.ii) + m.ii) % m.ii; };

  // (1) + (2): placements and FU exclusivity.
  std::map<std::pair<int, int>, OpId> fu_busy;  // (cell, slot) -> op
  std::map<std::pair<int, int>, int> bank_use;  // (bank, slot) -> count
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    const Op& o = dfg.op(op);
    const Placement& p = m.place[static_cast<size_t>(op)];
    if (arch.IsFolded(o.opcode)) {
      if (p.cell >= 0) {
        return Error::InvalidArgument(
            StrFormat("folded op %s must not occupy a cell", o.name.c_str()));
      }
      continue;
    }
    if (p.cell < 0 || p.cell >= arch.num_cells()) {
      return Error::InvalidArgument(
          StrFormat("op %s is not placed", o.name.c_str()));
    }
    if (p.time < 0 || p.time >= m.length) {
      return Error::InvalidArgument(
          StrFormat("op %s scheduled at %d outside [0, %d)", o.name.c_str(),
                    p.time, m.length));
    }
    if (!arch.CellAlive(p.cell)) {
      return Error::InvalidArgument(
          StrFormat("op %s bound to faulted cell %d", o.name.c_str(), p.cell));
    }
    if (!arch.CanExecute(p.cell, o)) {
      return Error::InvalidArgument(
          StrFormat("op %s bound to incompatible cell %d", o.name.c_str(), p.cell));
    }
    if (arch.ContextSlotFaulted(p.cell, slot_of(p.time))) {
      return Error::InvalidArgument(StrFormat(
          "op %s scheduled in faulted context slot %d of cell %d",
          o.name.c_str(), slot_of(p.time), p.cell));
    }
    const auto key = std::make_pair(p.cell, slot_of(p.time));
    auto [it, inserted] = fu_busy.emplace(key, op);
    if (!inserted) {
      return Error::InvalidArgument(StrFormat(
          "ops %s and %s share cell %d in slot %d",
          dfg.op(it->second).name.c_str(), o.name.c_str(), p.cell, key.second));
    }
    if (IsMemoryOp(o.opcode)) {
      const int bank = arch.caps(p.cell).bank;
      if (bank >= 0) {
        const int use = ++bank_use[{bank, slot_of(p.time)}];
        if (use > arch.params().bank_ports) {
          return Error::InvalidArgument(StrFormat(
              "bank %d oversubscribed in slot %d (%d > %d ports)", bank,
              slot_of(p.time), use, arch.params().bank_ports));
        }
      }
    }
  }

  // (4): edges and routes.
  const std::vector<DfgEdge> edges = dfg.Edges(/*include_pred=*/true);
  if (m.routes.size() != edges.size()) {
    return Error::InvalidArgument(
        StrFormat("route vector has %zu entries for %zu edges", m.routes.size(),
                  edges.size()));
  }
  // Occupancy sets for (5): distinct (value, node, abs-time).
  std::set<std::tuple<ValueId, int, int>> occupancy;

  for (size_t e = 0; e < edges.size(); ++e) {
    const DfgEdge& edge = edges[e];
    const Op& from_op = dfg.op(edge.from);
    const Op& to_op = dfg.op(edge.to);
    const Placement& pf = m.place[static_cast<size_t>(edge.from)];
    const Placement& pt = m.place[static_cast<size_t>(edge.to)];

    if (edge.to_port == kOrderPort) {
      if (arch.IsFolded(from_op.opcode) || arch.IsFolded(to_op.opcode)) continue;
      if (pt.time + m.ii * edge.distance < pf.time + 1) {
        return Error::InvalidArgument(StrFormat(
            "ordering edge %s -> %s violated", from_op.name.c_str(),
            to_op.name.c_str()));
      }
      continue;
    }
    if (arch.IsFolded(from_op.opcode)) {
      if (!m.routes[e].steps.empty()) {
        return Error::InvalidArgument(
            StrFormat("edge from folded op %s must not be routed",
                      from_op.name.c_str()));
      }
      continue;
    }

    const int arrive = pt.time + m.ii * edge.distance;
    if (arrive < pf.time + 1) {
      return Error::InvalidArgument(StrFormat(
          "edge %s -> %s needs latency %d (< 1 cycle)", from_op.name.c_str(),
          to_op.name.c_str(), arrive - pf.time));
    }
    const Route& route = m.routes[e];
    if (route.steps.empty()) {
      return Error::InvalidArgument(StrFormat(
          "edge %s -> %s has no route", from_op.name.c_str(), to_op.name.c_str()));
    }
    // Starts at the producer's latch.
    if (route.steps.front().node != mrrg.HoldNode(pf.cell) ||
        route.steps.front().time != pf.time + 1) {
      return Error::InvalidArgument(StrFormat(
          "edge %s -> %s: route does not start at the producer's latch",
          from_op.name.c_str(), to_op.name.c_str()));
    }
    // Follows real links with matching latency.
    for (size_t i = 0; i + 1 < route.steps.size(); ++i) {
      const RouteStep& a = route.steps[i];
      const RouteStep& b = route.steps[i + 1];
      bool ok = false;
      for (const Mrrg::Link& link : mrrg.OutLinks(a.node)) {
        if (link.to == b.node && a.time + link.latency == b.time) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        return Error::InvalidArgument(StrFormat(
            "edge %s -> %s: route step %zu does not follow an MRRG link",
            from_op.name.c_str(), to_op.name.c_str(), i));
      }
    }
    // Ends in a hold the consumer reads at its issue cycle.
    const RouteStep& last = route.steps.back();
    const auto& readable = mrrg.ReadableHolds(pt.cell);
    if (last.time != arrive ||
        std::find(readable.begin(), readable.end(), last.node) == readable.end()) {
      return Error::InvalidArgument(StrFormat(
          "edge %s -> %s: route does not deliver to a readable hold at t=%d",
          from_op.name.c_str(), to_op.name.c_str(), arrive));
    }
    for (const RouteStep& step : route.steps) {
      const Mrrg::Node& n = mrrg.node(step.node);
      if (n.cell >= 0 && !arch.CellAlive(n.cell)) {
        return Error::InvalidArgument(StrFormat(
            "edge %s -> %s: route passes through faulted cell %d",
            from_op.name.c_str(), to_op.name.c_str(), n.cell));
      }
      if (!mrrg.SlotUsable(step.node, slot_of(step.time))) {
        return Error::InvalidArgument(StrFormat(
            "edge %s -> %s: route uses faulted context slot %d of cell %d",
            from_op.name.c_str(), to_op.name.c_str(), slot_of(step.time),
            n.cell));
      }
      occupancy.insert({edge.from, step.node, step.time});
    }
  }

  // (5): capacities per (node, slot).
  std::map<std::pair<int, int>, int> load;
  for (const auto& [value, node, time] : occupancy) {
    (void)value;
    const int use = ++load[{node, slot_of(time)}];
    if (use > mrrg.node(node).capacity) {
      const Mrrg::Node& n = mrrg.node(node);
      const char* kind = n.kind == Mrrg::Kind::kHold ? "register file"
                         : n.kind == Mrrg::Kind::kRt ? "route channel"
                                                     : "FU";
      return Error::InvalidArgument(
          StrFormat("%s of cell %d oversubscribed in slot %d (%d > %d)", kind,
                    n.cell, slot_of(time), use, n.capacity));
    }
  }
  return Status::Ok();
}

}  // namespace cgra
