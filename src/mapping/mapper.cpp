#include "mapping/mapper.hpp"

namespace cgra {

std::string_view TechniqueClassName(TechniqueClass c) {
  switch (c) {
    case TechniqueClass::kHeuristic: return "heuristic";
    case TechniqueClass::kMetaPopulation: return "meta(population)";
    case TechniqueClass::kMetaLocalSearch: return "meta(local search)";
    case TechniqueClass::kExactIlp: return "exact(ILP/B&B)";
    case TechniqueClass::kExactCsp: return "exact(CSP)";
  }
  return "?";
}

std::string_view MappingKindName(MappingKind k) {
  switch (k) {
    case MappingKind::kSpatial: return "spatial";
    case MappingKind::kTemporal: return "temporal";
    case MappingKind::kBinding: return "binding";
    case MappingKind::kScheduling: return "scheduling";
  }
  return "?";
}

}  // namespace cgra
