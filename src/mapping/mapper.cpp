#include "mapping/mapper.hpp"

#include "support/bytes.hpp"

namespace cgra {

void MapperOptions::AppendCanonicalBytes(ByteWriter& w) const {
  w.Str("OPTS");
  w.U32(1);  // encoding version: bump when a semantic field is added
  w.I32(min_ii);
  w.I32(max_ii);
  w.I32(extra_slack);
  w.U64(seed);
}

std::string MapperOptions::Digest() const {
  ByteWriter w;
  AppendCanonicalBytes(w);
  return Hex16(Fnv1a64(w.bytes()));
}

std::string_view TechniqueClassName(TechniqueClass c) {
  switch (c) {
    case TechniqueClass::kHeuristic: return "heuristic";
    case TechniqueClass::kMetaPopulation: return "meta(population)";
    case TechniqueClass::kMetaLocalSearch: return "meta(local search)";
    case TechniqueClass::kExactIlp: return "exact(ILP/B&B)";
    case TechniqueClass::kExactCsp: return "exact(CSP)";
  }
  return "?";
}

std::string_view MappingKindName(MappingKind k) {
  switch (k) {
    case MappingKind::kSpatial: return "spatial";
    case MappingKind::kTemporal: return "temporal";
    case MappingKind::kBinding: return "binding";
    case MappingKind::kScheduling: return "scheduling";
  }
  return "?";
}

}  // namespace cgra
