// Time-extended router (§II-B "Routing": "use an existing link without
// interfering with already existing communications using this link").
//
// Routes one value from its producer's latch to a hold readable by the
// consumer at exactly the consumer's issue cycle, by A* (Dijkstra plus
// an admissible lower bound) over (MRRG node, absolute time) states.
// Hold self-links let a value wait in a register, so any arrival cycle
// >= producer+1 is reachable if capacity permits.
//
// The search state lives in a per-thread scratch arena: flat best-cost
// / parent vectors indexed by the packed (node, time, stay) state and
// stamped with a query epoch, so consecutive queries reuse the arrays
// without clearing them. This is the hot path of every PathFinder-style
// negotiated-routing mapper (DRESC [22], EMS [37]); see docs/PERF.md
// for the measured effect of the flat rewrite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/mrrg.hpp"
#include "mapping/mapping.hpp"
#include "mapping/tracker.hpp"
#include "support/status.hpp"

namespace cgra {

struct RouteRequest {
  int from_cell = -1;
  int from_time = -1;  ///< producer issue cycle
  int to_cell = -1;
  int to_time = -1;    ///< consumer issue cycle + II*distance (absolute)
  ValueId value = -1;  ///< producer op id (nets sharing a value share steps)
};

struct RouterOptions {
  /// Per-MRRG-node extra cost (PathFinder-style history); may be null.
  /// Entries must be non-negative: the A* lower bound assumes every
  /// step costs at least `step_cost` (disable `use_heuristic` if you
  /// need negative history costs).
  const std::vector<double>* history_cost = nullptr;
  /// Base cost of occupying one (node, time) step.
  double step_cost = 1.0;
  /// Hard cap on search expansions (guards pathological searches).
  int max_expansions = 1 << 18;
  /// DRESC-style congestion-negotiating mode: ignore capacities and do
  /// NOT record occupancy in the tracker — the caller accounts overuse
  /// itself and anneals it away (Mei et al. [22]).
  bool ignore_capacity = false;
  /// Guide the search with an admissible A* heuristic built from the
  /// hop-distance tables the Architecture precomputes: remaining cost
  /// >= step_cost * max(cycles-to-deadline, hops-to-consumer). Never
  /// changes which routes are reachable or their cost; prunes states
  /// that provably cannot reach the consumer in time. Off by default
  /// because A* pops equal-cost states in a different order than plain
  /// Dijkstra, which can return a different (equal-cost) route and so
  /// perturb tie-break-sensitive search mappers; turn it on when exact
  /// route identity with the Dijkstra order does not matter.
  bool use_heuristic = false;
};

/// On success the returned route's steps are already recorded in the
/// tracker (call ReleaseRoute to undo). Fails with kUnmappable when no
/// capacity-respecting path of the exact required latency exists.
Result<Route> RouteValue(const Mrrg& mrrg, ResourceTracker& tracker,
                         const RouteRequest& request,
                         const RouterOptions& options = {});

/// Batched multi-query routing: routes every fanout edge of one placed
/// op — all requests MUST share (from_cell, from_time, value) — in one
/// arena pass. Requests are served in order with semantics bit-identical
/// to calling RouteValue sequentially (same tie-breaking, same tracker
/// evolution; asserted by tests/test_router_golden.cpp), but the batch
/// shares the scratch arena, the recycled heap storage, and — across
/// consecutive sinks on the same consumer cell — the goal set and
/// hop-bound caches, instead of paying per-query setup.
///
/// Atomic: on success every returned route is recorded in the tracker
/// (routes[i] answers requests[i]); on failure NOTHING is recorded —
/// routes committed before the failing sink are released again — and
/// the error names the failing sink. See docs/MRRG.md §RouteFanout.
Result<std::vector<Route>> RouteFanout(const Mrrg& mrrg,
                                       ResourceTracker& tracker,
                                       const RouteRequest* requests,
                                       std::size_t num_requests,
                                       const RouterOptions& options = {});

/// Releases every step of `route` for `value`.
void ReleaseRoute(ResourceTracker& tracker, const Route& route, ValueId value);

// Test-only visibility into this thread's router scratch arena (the
// epoch mechanism is a correctness feature: a stale best/parent entry
// surviving into a later query — e.g. across II-escalation retries
// inside one mapper run — would corrupt routes, so tests pin it down).
namespace router_internal {

struct ScratchStats {
  std::uint32_t epoch = 0;     ///< current query stamp
  std::size_t capacity = 0;    ///< allocated (node, time, stay) states
  std::uint64_t reuses = 0;    ///< queries that reused a warm arena
  std::uint64_t grows = 0;     ///< queries that (re)allocated
};

/// Stats of the calling thread's arena.
ScratchStats CurrentScratchStats();

/// Drops the calling thread's arena (next query reallocates).
void ResetScratchForTest();

/// Forces the epoch counter, e.g. to just below wrap-around, so tests
/// can exercise the wrap path without 2^32 queries.
void SetEpochForTest(std::uint32_t epoch);

}  // namespace router_internal

}  // namespace cgra
