// Time-extended router (§II-B "Routing": "use an existing link without
// interfering with already existing communications using this link").
//
// Routes one value from its producer's latch to a hold readable by the
// consumer at exactly the consumer's issue cycle, by Dijkstra over
// (MRRG node, absolute time) states. Hold self-links let a value wait
// in a register, so any arrival cycle >= producer+1 is reachable if
// capacity permits.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/mrrg.hpp"
#include "mapping/mapping.hpp"
#include "mapping/tracker.hpp"
#include "support/status.hpp"

namespace cgra {

struct RouteRequest {
  int from_cell = -1;
  int from_time = -1;  ///< producer issue cycle
  int to_cell = -1;
  int to_time = -1;    ///< consumer issue cycle + II*distance (absolute)
  ValueId value = -1;  ///< producer op id (nets sharing a value share steps)
};

struct RouterOptions {
  /// Per-MRRG-node extra cost (PathFinder-style history); may be null.
  const std::vector<double>* history_cost = nullptr;
  /// Base cost of occupying one (node, time) step.
  double step_cost = 1.0;
  /// Hard cap on Dijkstra expansions (guards pathological searches).
  int max_expansions = 1 << 18;
  /// DRESC-style congestion-negotiating mode: ignore capacities and do
  /// NOT record occupancy in the tracker — the caller accounts overuse
  /// itself and anneals it away (Mei et al. [22]).
  bool ignore_capacity = false;
};

/// On success the returned route's steps are already recorded in the
/// tracker (call ReleaseRoute to undo). Fails with kUnmappable when no
/// capacity-respecting path of the exact required latency exists.
Result<Route> RouteValue(const Mrrg& mrrg, ResourceTracker& tracker,
                         const RouteRequest& request,
                         const RouterOptions& options = {});

/// Releases every step of `route` for `value`.
void ReleaseRoute(ResourceTracker& tracker, const Route& route, ValueId value);

}  // namespace cgra
