// Shared machinery for the mapper collection.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "arch/arch.hpp"
#include "arch/mrrg.hpp"
#include "ir/dfg.hpp"
#include "mapping/mapper.hpp"
#include "mapping/place_route.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace cgra {

/// Lower bounds on the initiation interval (§II-B modulo scheduling).
struct MiiBounds {
  int res_mii = 1;  ///< resource-constrained (per capability class)
  int rec_mii = 1;  ///< recurrence-constrained
  int mii() const { return res_mii > rec_mii ? res_mii : rec_mii; }
};
MiiBounds ComputeMii(const Dfg& dfg, const Architecture& arch, int max_ii);

/// Modulo-aware earliest start times: the least t per op satisfying
/// t_v >= t_u + 1 - II*distance over all dependence edges (Bellman-Ford
/// longest path; empty when the recurrence is infeasible at this II).
std::vector<int> ModuloAsap(const Dfg& dfg, const Architecture& arch, int ii);

/// Height-based priority: ops on longer paths to a sink first
/// (classic IMS ordering). Ties broken by op id for determinism.
std::vector<OpId> HeightPriorityOrder(const Dfg& dfg, const Architecture& arch);

/// Cells allowed for each op (capability filter), optionally
/// restricted to `region` (HiMap-style sub-arrays).
std::vector<std::vector<int>> CandidateCellTable(
    const Dfg& dfg, const Architecture& arch,
    const std::vector<int>* region = nullptr);

/// The workhorse: iterative modulo place-and-route at a fixed II.
/// Schedules ops in `order`, placing each at the earliest feasible
/// (cell, time); on failure within the time window it evicts the
/// blocking ops (IMS-style "force and re-schedule") up to `budget`
/// evictions. Randomisation (`rng` non-null) turns it into CRIMSON-
/// style randomized IMS.
struct ImsOptions {
  int eviction_budget_factor = 8;  ///< budget = factor * num_ops
  Rng* rng = nullptr;              ///< shuffle cell order / time choice
  const std::vector<std::vector<int>>* candidate_cells = nullptr;
  int extra_slack = 8;             ///< window beyond ASAP for start times
  Deadline deadline;
};
Result<Mapping> ImsPlaceRoute(const Dfg& dfg, const Architecture& arch,
                              const Mrrg& mrrg, int ii,
                              const std::vector<OpId>& order,
                              const ImsOptions& options);

/// Binds ops to cells under an externally fixed schedule: depth-first
/// search in time order over affinity-ordered candidate cells, with a
/// node budget. Used by the decoupled schedulers (ILP scheduling, CP
/// realizations) whose "binding is someone else's problem".
Result<Mapping> BindAtFixedTimes(const Dfg& dfg, const Architecture& arch,
                                 const Mrrg& mrrg, int ii,
                                 const std::vector<int>& times,
                                 const Deadline& deadline,
                                 int node_budget = 20000);

/// Runs `attempt(ii)` for ii from max(mii, 1) to min(max_ii, arch max),
/// returning the first success; aggregates attempts into `attempts`.
Result<Mapping> EscalateIi(const Dfg& dfg, const Architecture& arch,
                           const MapperOptions& options,
                           const std::function<Result<Mapping>(int)>& attempt);

/// True when every op of the DFG has at least one compatible cell (a
/// cheap pre-check that gives exact mappers their "prove infeasible"
/// behaviour early).
Status CheckMappable(const Dfg& dfg, const Architecture& arch);

}  // namespace cgra
