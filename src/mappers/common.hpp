// Shared machinery for the mapper collection.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "arch/arch.hpp"
#include "arch/mrrg.hpp"
#include "arch/mrrg_cache.hpp"
#include "ir/dfg.hpp"
#include "mapping/mapper.hpp"
#include "mapping/place_route.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace cgra {

/// The time-extended resource graph for `arch`: served from
/// options.mrrg_cache when the portfolio engine shares one, freshly
/// built otherwise. Mappers hold the returned pointer for the duration
/// of Map() so a cache Clear() cannot pull the graph out from under a
/// running search.
std::shared_ptr<const Mrrg> AcquireMrrg(const Architecture& arch,
                                        const MapperOptions& options);

/// True when options.stop or options.deadline says to give up; the
/// standard poll long loops pair with their iteration checks.
inline bool ShouldAbort(const MapperOptions& options) {
  return options.stop.StopRequested() || options.deadline.Expired();
}

/// Lower bounds on the initiation interval (§II-B modulo scheduling).
struct MiiBounds {
  int res_mii = 1;  ///< resource-constrained (per capability class)
  int rec_mii = 1;  ///< recurrence-constrained
  int mii() const { return res_mii > rec_mii ? res_mii : rec_mii; }
};
MiiBounds ComputeMii(const Dfg& dfg, const Architecture& arch, int max_ii);

/// Modulo-aware earliest start times: the least t per op satisfying
/// t_v >= t_u + 1 - II*distance over all dependence edges (Bellman-Ford
/// longest path; empty when the recurrence is infeasible at this II).
std::vector<int> ModuloAsap(const Dfg& dfg, const Architecture& arch, int ii);

/// Height-based priority: ops on longer paths to a sink first
/// (classic IMS ordering). Ties broken by op id for determinism.
std::vector<OpId> HeightPriorityOrder(const Dfg& dfg, const Architecture& arch);

/// Cells allowed for each op (capability filter), optionally
/// restricted to `region` (HiMap-style sub-arrays).
std::vector<std::vector<int>> CandidateCellTable(
    const Dfg& dfg, const Architecture& arch,
    const std::vector<int>* region = nullptr);

/// The workhorse: iterative modulo place-and-route at a fixed II.
/// Schedules ops in `order`, placing each at the earliest feasible
/// (cell, time); on failure within the time window it evicts the
/// blocking ops (IMS-style "force and re-schedule") up to `budget`
/// evictions. Randomisation (`rng` non-null) turns it into CRIMSON-
/// style randomized IMS.
struct ImsOptions {
  int eviction_budget_factor = 8;  ///< budget = factor * num_ops
  Rng* rng = nullptr;              ///< shuffle cell order / time choice
  const std::vector<std::vector<int>>* candidate_cells = nullptr;
  int extra_slack = 8;             ///< window beyond ASAP for start times
  Deadline deadline;
  StopToken stop;                  ///< cooperative cancellation
};
Result<Mapping> ImsPlaceRoute(const Dfg& dfg, const Architecture& arch,
                              const Mrrg& mrrg, int ii,
                              const std::vector<OpId>& order,
                              const ImsOptions& options);

/// Binds ops to cells under an externally fixed schedule: depth-first
/// search in time order over affinity-ordered candidate cells, with a
/// node budget. Used by the decoupled schedulers (ILP scheduling, CP
/// realizations) whose "binding is someone else's problem".
Result<Mapping> BindAtFixedTimes(const Dfg& dfg, const Architecture& arch,
                                 const Mrrg& mrrg, int ii,
                                 const std::vector<int>& times,
                                 const Deadline& deadline,
                                 int node_budget = 20000,
                                 const StopToken& stop = {});

/// Runs `attempt(ii)` for ii from max(mii, 1) to min(max_ii, arch max),
/// returning the first success. Checks options.stop / options.deadline
/// before every attempt (this is how every escalating mapper meets the
/// MapperOptions cancellation contract) and reports each attempt to
/// options.observer as kAttemptStart / kAttemptDone events under
/// `self`'s name.
Result<Mapping> EscalateIi(const Mapper& self, const Dfg& dfg,
                           const Architecture& arch,
                           const MapperOptions& options,
                           const std::function<Result<Mapping>(int)>& attempt);

/// Single-shot analogue of EscalateIi for mappers that try exactly one
/// II (the spatial mappers, pinned to II = 1): checks stop/deadline,
/// then runs `attempt()` bracketed by kAttemptStart / kAttemptDone
/// events so single-attempt mappers appear in traces too.
Result<Mapping> ObservedAttempt(const Mapper& self,
                                const MapperOptions& options, int ii,
                                const std::function<Result<Mapping>()>& attempt);

/// Reports solver effort (conflicts / nodes / generations) for the
/// attempt at `ii` to options.observer as a kNote event.
void NoteSolverSteps(const Mapper& self, const MapperOptions& options, int ii,
                     std::string_view what, std::int64_t steps);

/// True when every op of the DFG has at least one compatible cell (a
/// cheap pre-check that gives exact mappers their "prove infeasible"
/// behaviour early).
Status CheckMappable(const Dfg& dfg, const Architecture& arch);

}  // namespace cgra
