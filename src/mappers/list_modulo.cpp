// Iterative modulo scheduling (IMS) and its randomized variant.
//
// IMS is the survey's "most widely used technique to map loops on the
// CGRA" (§III-B2): height-priority list scheduling into a modulo
// reservation table, with eviction ("force and re-schedule") when an
// op's window is full, escalating II when the budget runs out — the
// shape introduced by Rau and brought to CGRAs by Mei et al. [61].
//
// CRIMSON [52] observed that the deterministic priority order explores
// a tiny corner of the solution space and randomizes it: random
// priority perturbations and randomized (cell, time) choices across
// restarts, keeping the best II found.
#include <algorithm>
#include <cstddef>

#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "support/rng.hpp"

namespace cgra {
namespace {

class IterativeModuloScheduler final : public Mapper {
 public:
  std::string name() const override { return "ims"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "iterative modulo scheduling (Rau; Mei et al. [61], DRESC flow)";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    const auto order = HeightPriorityOrder(dfg, arch);
    return EscalateIi(*this, dfg, arch, options, [&](int ii) {
      ImsOptions ims;
      ims.deadline = options.deadline;
      ims.stop = options.stop;
      ims.extra_slack = options.extra_slack;
      return ImsPlaceRoute(dfg, arch, mrrg, ii, order, ims);
    });
  }
};

class CrimsonScheduler final : public Mapper {
 public:
  std::string name() const override { return "crimson"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kScheduling; }
  std::string lineage() const override {
    return "randomized iterative modulo scheduling (CRIMSON [52])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);
    const auto base_order = HeightPriorityOrder(dfg, arch);
    constexpr int kRestartsPerIi = 6;

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      Error last = Error::Unmappable("no randomized restart succeeded");
      for (int restart = 0; restart < kRestartsPerIi; ++restart) {
        if (ShouldAbort(options)) {
          return Error::ResourceLimit("CRIMSON deadline expired");
        }
        // Random priority perturbation: swap a few adjacent ranks.
        std::vector<OpId> order = base_order;
        const int swaps = static_cast<int>(order.size()) / 3 + 1;
        for (int s = 0; s < swaps && order.size() > 1; ++s) {
          const size_t i = rng.NextIndex(order.size() - 1);
          std::swap(order[i], order[i + 1]);
        }
        Rng attempt_rng = rng.Split();
        ImsOptions ims;
        ims.deadline = options.deadline;
        ims.stop = options.stop;
        ims.extra_slack = options.extra_slack;
        ims.rng = &attempt_rng;
        Result<Mapping> r = ImsPlaceRoute(dfg, arch, mrrg, ii, order, ims);
        if (r.ok()) return r;
        last = r.error();
      }
      return last;
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeIterativeModuloScheduler() {
  return std::make_unique<IterativeModuloScheduler>();
}

std::unique_ptr<Mapper> MakeCrimsonScheduler() {
  return std::make_unique<CrimsonScheduler>();
}

}  // namespace cgra
