#include "mappers/registry.hpp"

#include <cstddef>
#include <utility>

#include "mappers/mappers.hpp"

namespace cgra {
namespace {

// The single source of truth for "every shipped mapper, in a stable
// order": Table I column order (heuristics, meta-heuristics, exact
// ILP / B&B, exact CSP). Both the registry and the MakeAllMappers()
// compatibility wrapper construct from this list.
using MapperFactory = std::unique_ptr<Mapper> (*)();

constexpr MapperFactory kFactories[] = {
    // Heuristics.
    &MakeSpatialGreedyMapper,
    &MakeGraphDrawingMapper,
    &MakeIterativeModuloScheduler,
    &MakeUltraFastScheduler,
    &MakeEdgeCentricMapper,
    &MakeRampMapper,
    &MakeEpimapStyleMapper,
    &MakeBackwardBeamMapper,
    &MakeCrimsonScheduler,
    &MakeHierarchicalMapper,
    // Meta-heuristics.
    &MakeAnnealingSpatialMapper,
    &MakeDrescAnnealingMapper,
    &MakeAnnealingBinder,
    &MakeGeneticSpatialMapper,
    &MakeQeaBinder,
    // Exact: ILP / B&B.
    &MakeIlpSpatialMapper,
    &MakeIlpTemporalMapper,
    &MakeIlpBinder,
    &MakeIlpScheduler,
    &MakeBranchBoundMapper,
    // Exact: CSP.
    &MakeCpTemporalMapper,
    &MakeSatTemporalMapper,
    &MakeSmtTemporalMapper,
};

}  // namespace

MapperRegistry::MapperRegistry() {
  mappers_.reserve(std::size(kFactories));
  for (MapperFactory make : kFactories) mappers_.push_back(make());
  // Test fixtures: resolvable by name, invisible to enumeration.
  fixtures_.push_back(MakeThrowingMapper());
  fixtures_.push_back(MakeSegvMapper());
  fixtures_.push_back(MakeSpinMapper());
  fixtures_.push_back(MakeAllocBombMapper());
}

const MapperRegistry& MapperRegistry::Global() {
  static const MapperRegistry registry;
  return registry;
}

const Mapper* MapperRegistry::Find(std::string_view name) const {
  for (const auto& m : mappers_) {
    if (m->name() == name) return m.get();
  }
  for (const auto& m : fixtures_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

std::vector<const Mapper*> MapperRegistry::ByTechnique(
    TechniqueClass technique) const {
  std::vector<const Mapper*> out;
  for (const auto& m : mappers_) {
    if (m->technique() == technique) out.push_back(m.get());
  }
  return out;
}

std::vector<const Mapper*> MapperRegistry::ByKind(MappingKind kind) const {
  std::vector<const Mapper*> out;
  for (const auto& m : mappers_) {
    if (m->kind() == kind) out.push_back(m.get());
  }
  return out;
}

std::vector<const Mapper*> MapperRegistry::All() const {
  std::vector<const Mapper*> out;
  out.reserve(mappers_.size());
  for (const auto& m : mappers_) out.push_back(m.get());
  return out;
}

std::vector<std::unique_ptr<Mapper>> MakeAllMappers() {
  std::vector<std::unique_ptr<Mapper>> mappers;
  mappers.reserve(std::size(kFactories));
  for (MapperFactory make : kFactories) mappers.push_back(make());
  return mappers;
}

}  // namespace cgra
