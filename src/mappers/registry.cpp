#include <cstddef>

#include "mappers/mappers.hpp"

namespace cgra {

std::vector<std::unique_ptr<Mapper>> MakeAllMappers() {
  std::vector<std::unique_ptr<Mapper>> mappers;
  // Heuristics.
  mappers.push_back(MakeSpatialGreedyMapper());
  mappers.push_back(MakeGraphDrawingMapper());
  mappers.push_back(MakeIterativeModuloScheduler());
  mappers.push_back(MakeUltraFastScheduler());
  mappers.push_back(MakeEdgeCentricMapper());
  mappers.push_back(MakeRampMapper());
  mappers.push_back(MakeEpimapStyleMapper());
  mappers.push_back(MakeBackwardBeamMapper());
  mappers.push_back(MakeCrimsonScheduler());
  mappers.push_back(MakeHierarchicalMapper());
  // Meta-heuristics.
  mappers.push_back(MakeAnnealingSpatialMapper());
  mappers.push_back(MakeDrescAnnealingMapper());
  mappers.push_back(MakeAnnealingBinder());
  mappers.push_back(MakeGeneticSpatialMapper());
  mappers.push_back(MakeQeaBinder());
  // Exact: ILP / B&B.
  mappers.push_back(MakeIlpSpatialMapper());
  mappers.push_back(MakeIlpTemporalMapper());
  mappers.push_back(MakeIlpBinder());
  mappers.push_back(MakeIlpScheduler());
  mappers.push_back(MakeBranchBoundMapper());
  // Exact: CSP.
  mappers.push_back(MakeCpTemporalMapper());
  mappers.push_back(MakeSatTemporalMapper());
  mappers.push_back(MakeSmtTemporalMapper());
  return mappers;
}

}  // namespace cgra
