// ILP-based mappers (the Table I "ILP/B&B" column), on the in-tree
// branch-and-bound MILP solver.
//
// All four formulations use the "restricted routing" relation the
// exact literature favours ([34]'s direct-connect mode, [44]'s
// restricted routing networks): a value travels by waiting in its
// producer's register file and being read by a cell with a direct
// link. Longer routes are the heuristics' territory; the exact mappers
// prove optimality/infeasibility within this relation, which is
// exactly the trade-off §III-A describes.
//
//  * ilp-spatial  — Chin & Anderson [34]: x[op][cell] binaries.
//  * ilp-temporal — Brenner et al. [41]: x[op][cell][t], modulo
//    exclusivity, implication rows for dependencies.
//  * ilp-bind     — Guo et al. [15]: binding under a fixed schedule
//    with data-arrival feasibility rows.
//  * ilp-sched    — Mu et al. [53]: time-indexed scheduling that
//    maximises inter-op routing slack, then greedy binding.
#include <algorithm>
#include <cstddef>
#include <functional>

#include "graph/algos.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "solver/ilp.hpp"

namespace cgra {
namespace {

bool DirectlyReadable(const Architecture& arch, int producer, int consumer) {
  const auto& r = arch.ReadableFrom(consumer);
  return std::find(r.begin(), r.end(), producer) != r.end();
}

// Shared guard: the dense simplex underneath cannot take huge models.
// Exact mappers refusing big instances *is the finding* the Table I
// bench reports, so surface it as a resource limit, not a crash.
Status GuardModelSize(int vars, int rows) {
  if (vars > 4000 || rows > 6000) {
    return Error::ResourceLimit(
        "instance too large for the built-in exact solver");
  }
  return Status::Ok();
}

// Greedy realization used by all ILP mappers once placement (and
// times) are fixed by the solver.
Result<Mapping> RealizePinned(const Dfg& dfg, const Architecture& arch,
                              const Mrrg& mrrg, int ii,
                              const std::vector<Placement>& pins) {
  PlaceRouteState state(dfg, arch, mrrg, ii);
  std::vector<OpId> order;
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    if (!arch.IsFolded(dfg.op(op).opcode)) order.push_back(op);
  }
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return pins[static_cast<size_t>(a)].time < pins[static_cast<size_t>(b)].time;
  });
  for (OpId op : order) {
    if (!state.TryPlace(op, pins[static_cast<size_t>(op)].cell,
                        pins[static_cast<size_t>(op)].time)) {
      return Error::Unmappable(
          "solver placement not realizable (register pressure)");
    }
  }
  return state.Finalize();
}

class IlpSpatialMapper final : public Mapper {
 public:
  std::string name() const override { return "ilp-spatial"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactIlp; }
  MappingKind kind() const override { return MappingKind::kSpatial; }
  std::string lineage() const override {
    return "architecture-agnostic ILP placement (Chin & Anderson [34])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    if (Status s = CheckMappable(dfg, arch); !s.ok()) return s.error();
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    const int ii = 1;
    const auto est = ModuloAsap(dfg, arch, ii);
    if (est.empty()) return Error::Unmappable("recurrences infeasible at II=1");

    std::vector<OpId> ops;
    for (OpId op = 0; op < dfg.num_ops(); ++op) {
      if (!arch.IsFolded(dfg.op(op).opcode)) ops.push_back(op);
    }
    const int cells = arch.num_cells();

    IlpModel model;
    // x[i][c]
    std::vector<std::vector<int>> x(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      for (int c = 0; c < cells; ++c) x[i].push_back(model.AddBinary());
    }
    int rows = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      std::vector<LinearTerm> one;
      for (int c = 0; c < cells; ++c) {
        one.push_back({x[i][static_cast<size_t>(c)], 1.0});
        if (!arch.CanExecute(c, dfg.op(ops[i]))) {
          model.AddConstraint({{x[i][static_cast<size_t>(c)], 1.0}}, Rel::kEq, 0);
          ++rows;
        }
      }
      model.AddConstraint(std::move(one), Rel::kEq, 1);
      ++rows;
    }
    for (int c = 0; c < cells; ++c) {
      std::vector<LinearTerm> cap;
      for (size_t i = 0; i < ops.size(); ++i) cap.push_back({x[i][static_cast<size_t>(c)], 1.0});
      model.AddConstraint(std::move(cap), Rel::kLe, 1);
      ++rows;
    }
    // Dependence reach: [34] models the routing fabric, so an edge may
    // span up to kMaxHops link hops (each extra hop costs a cycle
    // through a neighbour's routing channel at realization time).
    constexpr int kMaxHops = 2;
    std::vector<int> compact(static_cast<size_t>(dfg.num_ops()), -1);
    for (size_t i = 0; i < ops.size(); ++i) compact[static_cast<size_t>(ops[i])] = static_cast<int>(i);
    for (const DfgEdge& e : dfg.Edges(true)) {
      if (e.to_port == kOrderPort) continue;
      if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
      const int u = compact[static_cast<size_t>(e.from)];
      const int v = compact[static_cast<size_t>(e.to)];
      if (u == v) continue;  // self loop: trivially readable
      for (int p = 0; p < cells; ++p) {
        // If u sits on p, v must sit within routing reach of p.
        std::vector<LinearTerm> row{{x[static_cast<size_t>(u)][static_cast<size_t>(p)], -1.0}};
        for (int q = 0; q < cells; ++q) {
          const int hops = arch.HopDistance(p, q);
          if (q != p && hops >= 0 && hops <= kMaxHops) {
            row.push_back({x[static_cast<size_t>(v)][static_cast<size_t>(q)], 1.0});
          }
        }
        model.AddConstraint(std::move(row), Rel::kGe, 0);
        ++rows;
      }
    }
    if (Status s = GuardModelSize(model.num_vars(), rows); !s.ok()) return s.error();

    IlpModel::SolveOptions so;
    so.deadline = options.deadline;
    so.stop = options.stop;
    auto sol = model.Solve(so);
    if (sol.ok()) {
      NoteSolverSteps(*this, options, ii, "ilp b&b nodes",
                      sol->nodes_explored);
    }
    if (!sol.ok()) return sol.error();

    std::vector<int> cell_of(static_cast<size_t>(dfg.num_ops()), -1);
    for (size_t i = 0; i < ops.size(); ++i) {
      for (int c = 0; c < cells; ++c) {
        if (sol->Int(x[i][static_cast<size_t>(c)]) == 1) {
          cell_of[static_cast<size_t>(ops[i])] = c;
        }
      }
    }
    // Realize: cells are fixed by the solver; search schedule offsets
    // with backtracking (2-hop routes contend for routing channels, so
    // a one-way greedy slide is not enough).
    const auto topo = TopologicalOrder(dfg.ToDigraph(/*include_carried=*/false));
    if (!topo) return Error::InvalidArgument("DFG has a same-iteration cycle");
    std::vector<OpId> order;
    for (OpId op : *topo) {
      if (!arch.IsFolded(dfg.op(op).opcode)) order.push_back(op);
    }
    PlaceRouteState state(dfg, arch, mrrg, ii);
    const auto edges = dfg.Edges(true);
    int budget = 20000;
    std::function<bool(size_t)> realize = [&](size_t depth) -> bool {
      if (depth == order.size()) return true;
      if (--budget <= 0 || ShouldAbort(options)) return false;
      const OpId op = order[depth];
      const int cell = cell_of[static_cast<size_t>(op)];
      int t = est[static_cast<size_t>(op)];
      for (const DfgEdge& e : edges) {
        if (e.to != op || e.from == op) continue;
        if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
        if (state.IsPlaced(e.from)) {
          const Placement& pf = state.placement(e.from);
          t = std::max(t, pf.time +
                              std::max(1, arch.HopDistance(pf.cell, cell)) -
                              ii * e.distance);
        }
      }
      for (int dt = 0; dt <= options.extra_slack; ++dt) {
        if (state.TryPlace(op, cell, t + dt)) {
          if (realize(depth + 1)) return true;
          state.Unplace(op);
          if (budget <= 0) return false;
        }
      }
      return false;
    };
    if (!realize(0)) {
      return Error::Unmappable("ILP spatial placement not routable");
    }
    return state.Finalize();
  }
};

class IlpTemporalMapper final : public Mapper {
 public:
  std::string name() const override { return "ilp-temporal"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactIlp; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "simultaneous scheduling+binding MILP (Brenner et al. [41])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      const int horizon =
          *std::max_element(est.begin(), est.end()) + std::min(3, ii) + 1;
      std::vector<OpId> ops;
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        if (!arch.IsFolded(dfg.op(op).opcode)) ops.push_back(op);
      }
      const int cells = arch.num_cells();
      const int T = horizon + 1;

      IlpModel model;
      int rows = 0;
      // x[i][c][t]
      auto index = [&](size_t i, int c, int t) {
        return static_cast<int>((i * static_cast<size_t>(cells) + static_cast<size_t>(c)) *
                                    static_cast<size_t>(T) +
                                static_cast<size_t>(t));
      };
      const int first = model.AddBinary();
      for (size_t k = 1; k < ops.size() * static_cast<size_t>(cells) * static_cast<size_t>(T); ++k) {
        model.AddBinary();
      }
      (void)first;
      if (Status s = GuardModelSize(model.num_vars(), 0); !s.ok()) return s.error();

      for (size_t i = 0; i < ops.size(); ++i) {
        std::vector<LinearTerm> one;
        for (int c = 0; c < cells; ++c) {
          const bool capable = arch.CanExecute(c, dfg.op(ops[i]));
          for (int t = 0; t < T; ++t) {
            if (capable && t >= est[static_cast<size_t>(ops[i])]) {
              one.push_back({index(i, c, t), 1.0});
            } else {
              model.AddConstraint({{index(i, c, t), 1.0}}, Rel::kEq, 0);
              ++rows;
            }
          }
        }
        model.AddConstraint(std::move(one), Rel::kEq, 1);
        ++rows;
      }
      // Modulo FU exclusivity.
      for (int c = 0; c < cells; ++c) {
        for (int slot = 0; slot < ii; ++slot) {
          std::vector<LinearTerm> cap;
          for (size_t i = 0; i < ops.size(); ++i) {
            for (int t = slot; t < T; t += ii) cap.push_back({index(i, c, t), 1.0});
          }
          model.AddConstraint(std::move(cap), Rel::kLe, 1);
          ++rows;
        }
      }
      // Dependence implications.
      std::vector<int> compact(static_cast<size_t>(dfg.num_ops()), -1);
      for (size_t i = 0; i < ops.size(); ++i) compact[static_cast<size_t>(ops[i])] = static_cast<int>(i);
      for (const DfgEdge& e : dfg.Edges(true)) {
        if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
        const size_t u = static_cast<size_t>(compact[static_cast<size_t>(e.from)]);
        const size_t v = static_cast<size_t>(compact[static_cast<size_t>(e.to)]);
        for (int p = 0; p < cells; ++p) {
          for (int t = 0; t < T; ++t) {
            std::vector<LinearTerm> row{{index(u, p, t), -1.0}};
            for (int q = 0; q < cells; ++q) {
              const bool reach = e.to_port == kOrderPort
                                     ? true  // ordering only needs timing
                                     : DirectlyReadable(arch, p, q);
              if (!reach) continue;
              for (int t2 = 0; t2 < T; ++t2) {
                if (t2 + ii * e.distance >= t + 1) {
                  if (u == v && t2 == t && p == q) {
                    // A self-loop satisfied by its own placement.
                    row.push_back({index(v, q, t2), 1.0});
                  } else if (u != v) {
                    row.push_back({index(v, q, t2), 1.0});
                  }
                }
              }
            }
            if (u == v && row.size() == 1) {
              // Self edge impossible from (p, t): forbid it.
              model.AddConstraint({{index(u, p, t), 1.0}}, Rel::kEq, 0);
            } else {
              model.AddConstraint(std::move(row), Rel::kGe, 0);
            }
            ++rows;
          }
        }
        if (Status s = GuardModelSize(model.num_vars(), rows); !s.ok()) {
          return s.error();
        }
      }

      IlpModel::SolveOptions so;
      so.deadline = options.deadline;
      so.stop = options.stop;
      auto sol = model.Solve(so);
      if (sol.ok()) {
        NoteSolverSteps(*this, options, ii, "ilp b&b nodes",
                        sol->nodes_explored);
      }
      if (!sol.ok()) return sol.error();

      std::vector<Placement> pins(static_cast<size_t>(dfg.num_ops()));
      for (size_t i = 0; i < ops.size(); ++i) {
        for (int c = 0; c < cells; ++c) {
          for (int t = 0; t < T; ++t) {
            if (sol->Int(index(i, c, t)) == 1) {
              pins[static_cast<size_t>(ops[i])] = Placement{c, t};
            }
          }
        }
      }
      return RealizePinned(dfg, arch, mrrg, ii, pins);
    });
  }
};

class IlpBinder final : public Mapper {
 public:
  std::string name() const override { return "ilp-bind"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactIlp; }
  MappingKind kind() const override { return MappingKind::kBinding; }
  std::string lineage() const override {
    return "ILP binding with data-arrival feasibility (Guo et al. [15])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto times = ModuloAsap(dfg, arch, ii);
      if (times.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      std::vector<OpId> ops;
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        if (!arch.IsFolded(dfg.op(op).opcode)) ops.push_back(op);
      }
      const int cells = arch.num_cells();

      IlpModel model;
      int rows = 0;
      std::vector<std::vector<int>> y(ops.size());
      for (size_t i = 0; i < ops.size(); ++i) {
        for (int c = 0; c < cells; ++c) y[i].push_back(model.AddBinary());
      }
      for (size_t i = 0; i < ops.size(); ++i) {
        std::vector<LinearTerm> one;
        for (int c = 0; c < cells; ++c) {
          if (arch.CanExecute(c, dfg.op(ops[i]))) {
            one.push_back({y[i][static_cast<size_t>(c)], 1.0});
          } else {
            model.AddConstraint({{y[i][static_cast<size_t>(c)], 1.0}}, Rel::kEq, 0);
            ++rows;
          }
        }
        model.AddConstraint(std::move(one), Rel::kEq, 1);
        ++rows;
      }
      // FU exclusivity per (cell, slot) under the fixed schedule.
      for (int c = 0; c < cells; ++c) {
        for (int slot = 0; slot < ii; ++slot) {
          std::vector<LinearTerm> cap;
          for (size_t i = 0; i < ops.size(); ++i) {
            if (((times[static_cast<size_t>(ops[i])] % ii) + ii) % ii == slot) {
              cap.push_back({y[i][static_cast<size_t>(c)], 1.0});
            }
          }
          if (cap.size() > 1) {
            model.AddConstraint(std::move(cap), Rel::kLe, 1);
            ++rows;
          }
        }
      }
      // Data arrival: consumer must be able to read the producer.
      std::vector<int> compact(static_cast<size_t>(dfg.num_ops()), -1);
      for (size_t i = 0; i < ops.size(); ++i) compact[static_cast<size_t>(ops[i])] = static_cast<int>(i);
      for (const DfgEdge& e : dfg.Edges(true)) {
        if (e.to_port == kOrderPort) continue;
        if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
        const size_t u = static_cast<size_t>(compact[static_cast<size_t>(e.from)]);
        const size_t v = static_cast<size_t>(compact[static_cast<size_t>(e.to)]);
        if (u == v) continue;
        for (int p = 0; p < cells; ++p) {
          std::vector<LinearTerm> row{{y[u][static_cast<size_t>(p)], -1.0}};
          for (int q = 0; q < cells; ++q) {
            if (DirectlyReadable(arch, p, q)) row.push_back({y[v][static_cast<size_t>(q)], 1.0});
          }
          model.AddConstraint(std::move(row), Rel::kGe, 0);
          ++rows;
        }
      }
      if (Status s = GuardModelSize(model.num_vars(), rows); !s.ok()) {
        return s.error();
      }

      IlpModel::SolveOptions so;
      so.deadline = options.deadline;
      so.stop = options.stop;
      auto sol = model.Solve(so);
      if (sol.ok()) {
        NoteSolverSteps(*this, options, ii, "ilp b&b nodes",
                        sol->nodes_explored);
      }
      if (!sol.ok()) return sol.error();

      std::vector<Placement> pins(static_cast<size_t>(dfg.num_ops()));
      for (size_t i = 0; i < ops.size(); ++i) {
        for (int c = 0; c < cells; ++c) {
          if (sol->Int(y[i][static_cast<size_t>(c)]) == 1) {
            pins[static_cast<size_t>(ops[i])] =
                Placement{c, times[static_cast<size_t>(ops[i])]};
          }
        }
      }
      return RealizePinned(dfg, arch, mrrg, ii, pins);
    });
  }
};

class IlpScheduler final : public Mapper {
 public:
  std::string name() const override { return "ilp-sched"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactIlp; }
  MappingKind kind() const override { return MappingKind::kScheduling; }
  std::string lineage() const override {
    return "routability-enhanced time-indexed ILP scheduling (Mu et al. [53])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      const int T = *std::max_element(est.begin(), est.end()) + ii + 1;
      std::vector<OpId> ops;
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        if (!arch.IsFolded(dfg.op(op).opcode)) ops.push_back(op);
      }

      IlpModel model;
      int rows = 0;
      std::vector<std::vector<int>> z(ops.size());
      for (size_t i = 0; i < ops.size(); ++i) {
        for (int t = 0; t < T; ++t) z[i].push_back(model.AddBinary());
        std::vector<LinearTerm> one;
        for (int t = 0; t < T; ++t) one.push_back({z[i][static_cast<size_t>(t)], 1.0});
        model.AddConstraint(std::move(one), Rel::kEq, 1);
        ++rows;
        for (int t = 0; t < est[static_cast<size_t>(ops[i])]; ++t) {
          model.AddConstraint({{z[i][static_cast<size_t>(t)], 1.0}}, Rel::kEq, 0);
          ++rows;
        }
      }
      // Resource-class capacity per modulo slot.
      auto class_of = [&](OpId op) -> int {
        const Op& o = dfg.op(op);
        if (IsMemoryOp(o.opcode)) return 0;
        if (IsIoOp(o.opcode)) return 1;
        if (o.opcode == Opcode::kMul || o.opcode == Opcode::kDiv) return 2;
        return 3;
      };
      int class_cells[4] = {0, 0, 0, 0};
      for (int c = 0; c < arch.num_cells(); ++c) {
        if (arch.caps(c).mem) ++class_cells[0];
        if (arch.caps(c).io) ++class_cells[1];
        if (arch.caps(c).mul) ++class_cells[2];
        ++class_cells[3];
      }
      for (int k = 0; k < 4; ++k) {
        for (int slot = 0; slot < ii; ++slot) {
          std::vector<LinearTerm> cap;
          for (size_t i = 0; i < ops.size(); ++i) {
            if (class_of(ops[i]) != k && k != 3) continue;
            for (int t = slot; t < T; t += ii) cap.push_back({z[i][static_cast<size_t>(t)], 1.0});
          }
          if (!cap.empty()) {
            model.AddConstraint(std::move(cap), Rel::kLe, class_cells[k]);
            ++rows;
          }
        }
      }
      // Precedence on expected times. Objective: minimise total edge
      // latency, so values spend the least possible time parked in
      // registers — the routability-enhancing objective in the spirit
      // of [53] (slack where it helps, no gratuitous register pressure).
      std::vector<int> compact(static_cast<size_t>(dfg.num_ops()), -1);
      for (size_t i = 0; i < ops.size(); ++i) compact[static_cast<size_t>(ops[i])] = static_cast<int>(i);
      std::vector<double> objective(static_cast<size_t>(model.num_vars()), 0.0);
      for (const DfgEdge& e : dfg.Edges(true)) {
        if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
        const size_t u = static_cast<size_t>(compact[static_cast<size_t>(e.from)]);
        const size_t v = static_cast<size_t>(compact[static_cast<size_t>(e.to)]);
        if (u == v) continue;
        std::vector<LinearTerm> row;
        for (int t = 0; t < T; ++t) {
          row.push_back({z[v][static_cast<size_t>(t)], static_cast<double>(t)});
          row.push_back({z[u][static_cast<size_t>(t)], -static_cast<double>(t)});
          objective[static_cast<size_t>(z[v][static_cast<size_t>(t)])] += t;
          objective[static_cast<size_t>(z[u][static_cast<size_t>(t)])] -= t;
        }
        model.AddConstraint(std::move(row), Rel::kGe, 1.0 - ii * e.distance);
        ++rows;
      }
      if (Status s = GuardModelSize(model.num_vars(), rows); !s.ok()) {
        return s.error();
      }
      model.SetObjective(std::move(objective), /*maximize=*/false);

      IlpModel::SolveOptions so;
      so.deadline = options.deadline;
      so.stop = options.stop;
      auto sol = model.Solve(so);
      if (sol.ok()) {
        NoteSolverSteps(*this, options, ii, "ilp b&b nodes",
                        sol->nodes_explored);
      }
      if (!sol.ok()) return sol.error();

      // Bind greedily at the solved times.
      std::vector<int> solved_times(static_cast<size_t>(dfg.num_ops()), 0);
      for (size_t i = 0; i < ops.size(); ++i) {
        for (int t = 0; t < T; ++t) {
          if (sol->Int(z[i][static_cast<size_t>(t)]) == 1) {
            solved_times[static_cast<size_t>(ops[i])] = t;
          }
        }
      }
      return BindAtFixedTimes(dfg, arch, mrrg, ii, solved_times,
                              options.deadline, /*node_budget=*/20000,
                              options.stop);
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeIlpSpatialMapper() {
  return std::make_unique<IlpSpatialMapper>();
}
std::unique_ptr<Mapper> MakeIlpTemporalMapper() {
  return std::make_unique<IlpTemporalMapper>();
}
std::unique_ptr<Mapper> MakeIlpBinder() {
  return std::make_unique<IlpBinder>();
}
std::unique_ptr<Mapper> MakeIlpScheduler() {
  return std::make_unique<IlpScheduler>();
}

}  // namespace cgra
