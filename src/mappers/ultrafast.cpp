// Ultra-fast scheduler, after Lee & Carlson [16].
//
// Built for run-time (re)compilation: a single greedy pass, no
// eviction, no backtracking — every op is dropped at its earliest
// feasible slot on the first cell that accepts it, with candidate cell
// lists precomputed once. When the pass fails the II escalates
// immediately. Trades mapping quality (higher II) for orders of
// magnitude less work, which is exactly the trade the Table I bench
// shows against IMS.
#include <algorithm>
#include <cstddef>

#include "graph/algos.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"

namespace cgra {
namespace {

class UltraFastScheduler final : public Mapper {
 public:
  std::string name() const override { return "ultrafast"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "ultra-fast single-pass scheduling (Lee & Carlson [16])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    const auto candidates = CandidateCellTable(dfg, arch);
    // Dependence order (not height priority: cheapest possible order).
    const auto topo = TopologicalOrder(dfg.ToDigraph(/*include_carried=*/false));
    if (!topo) return Error::InvalidArgument("DFG has a same-iteration cycle");

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      PlaceRouteState state(dfg, arch, mrrg, ii);
      const auto edges = dfg.Edges(true);
      for (OpId op : *topo) {
        if (arch.IsFolded(dfg.op(op).opcode)) continue;
        int t = est[static_cast<size_t>(op)];
        for (const DfgEdge& e : edges) {
          if (e.to != op || e.from == op) continue;
          if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
          if (state.IsPlaced(e.from)) {
            t = std::max(t, state.placement(e.from).time + 1 - ii * e.distance);
          }
        }
        bool placed = false;
        // One window of II slots, first-fit cell; no second chances.
        for (int dt = 0; dt < ii + options.extra_slack && !placed; ++dt) {
          for (int cell : candidates[static_cast<size_t>(op)]) {
            if (state.TryPlace(op, cell, t + dt)) {
              placed = true;
              break;
            }
          }
          // Carried self-dependences cap how far the op may slide.
          bool can_slide = true;
          for (const DfgEdge& e : edges) {
            if (e.from == op && e.to == op && e.distance > 0) can_slide = false;
          }
          if (!can_slide) break;
        }
        if (!placed) {
          return Error::Unmappable("single-pass scheduling failed at this II");
        }
      }
      return state.Finalize();
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeUltraFastScheduler() {
  return std::make_unique<UltraFastScheduler>();
}

}  // namespace cgra
