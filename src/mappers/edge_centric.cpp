// Edge-centric modulo scheduling, after Park et al.'s EMS [37].
//
// Op-centric schedulers pick a slot first and hope the routes exist;
// EMS inverts this: routing cost drives placement. For every op we
// evaluate ALL feasible (cell, time) pairs in its window and commit to
// the one whose incident edges route most cheaply — placement falls
// out of the routing search rather than preceding it. Ops are visited
// in decreasing edge criticality (height, then fan-out).
#include <algorithm>
#include <cstddef>
#include <limits>

#include "mappers/common.hpp"
#include "mappers/mappers.hpp"

namespace cgra {
namespace {

class EdgeCentricMapper final : public Mapper {
 public:
  std::string name() const override { return "ems"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "edge-centric modulo scheduling (Park et al. [37])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    const auto candidates = CandidateCellTable(dfg, arch);
    // Criticality order: height first, fan-out as tie-break (edges of
    // high-fan-out ops are the hardest nets to route).
    std::vector<OpId> order = HeightPriorityOrder(dfg, arch);
    const auto fan = dfg.FanOut();
    std::stable_sort(order.begin(), order.end(), [&](OpId a, OpId b) {
      return fan[static_cast<size_t>(a)] > fan[static_cast<size_t>(b)];
    });
    // Re-apply height as the primary key (stable sort keeps fan order
    // within equal heights).
    {
      std::vector<OpId> by_height = HeightPriorityOrder(dfg, arch);
      std::vector<int> hrank(static_cast<size_t>(dfg.num_ops()), 0);
      for (size_t i = 0; i < by_height.size(); ++i) hrank[static_cast<size_t>(by_height[i])] = static_cast<int>(i);
      std::stable_sort(order.begin(), order.end(), [&](OpId a, OpId b) {
        return hrank[static_cast<size_t>(a)] < hrank[static_cast<size_t>(b)];
      });
    }

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      PlaceRouteState state(dfg, arch, mrrg, ii);
      const auto edges = dfg.Edges(true);
      for (OpId op : order) {
        if (ShouldAbort(options)) {
          return Error::ResourceLimit("EMS deadline expired");
        }
        int t0 = est[static_cast<size_t>(op)];
        for (const DfgEdge& e : edges) {
          if (e.to != op || e.from == op) continue;
          if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
          if (state.IsPlaced(e.from)) {
            t0 = std::max(t0, state.placement(e.from).time + 1 - ii * e.distance);
          }
        }
        // Exhaustive window scan; keep the cheapest-routing placement.
        // The window spans the II slots plus slack start cycles (at
        // II=1 a bare window would be a single candidate time).
        int best_cost = std::numeric_limits<int>::max();
        int best_cell = -1, best_time = -1;
        for (int t = t0; t < t0 + ii + options.extra_slack; ++t) {
          for (int cell : candidates[static_cast<size_t>(op)]) {
            if (!state.TryPlace(op, cell, t)) continue;
            const int cost = state.last_route_steps() * ii + (t - t0);
            state.Unplace(op);
            if (cost < best_cost) {
              best_cost = cost;
              best_cell = cell;
              best_time = t;
            }
          }
        }
        if (best_cell < 0 || !state.TryPlace(op, best_cell, best_time)) {
          return Error::Unmappable("no routable placement in the window");
        }
      }
      return state.Finalize();
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeEdgeCentricMapper() {
  return std::make_unique<EdgeCentricMapper>();
}

}  // namespace cgra
