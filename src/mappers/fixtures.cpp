// Test-fixture mappers: registered under the registry's Find-only
// fixtures section so engine tests can assemble hostile portfolios by
// name, without the fixtures ever appearing in All()/ByTechnique()
// enumeration (a bench sweep must not race a booby trap by accident).
//
// The `crashy` family (segv / spin / allocbomb) fails harder than
// try/catch can contain — each one models a real failure mode of the
// survey's exact mappers (wild pointer in monomorphism enumeration, a
// search loop that never polls its StopToken, unbounded clause
// learning) and is only survivable behind the process sandbox
// (EngineOptions::isolation, engine/sandbox.hpp). The chaos CI job
// races all three against healthy mappers through cgra_serve.
#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mappers/mappers.hpp"

namespace cgra {
namespace {

// A deliberately misbehaving portfolio entry: Map() throws instead of
// returning a Result. The engine's crash isolation must convert this
// into a failed EngineAttempt with Error::Code::kInternal and let the
// rest of the race proceed.
class ThrowingMapper final : public Mapper {
 public:
  std::string name() const override { return "throwing"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kHeuristic;
  }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "test fixture: the mapper that throws";
  }

  Result<Mapping> Map(const Dfg&, const Architecture&,
                      const MapperOptions&) const override {
    throw std::runtime_error("deliberate test-fixture crash");
  }
};

// Dereferences a null pointer: SIGSEGV, no exception to catch. Only
// the process boundary survives this one.
class SegvMapper final : public Mapper {
 public:
  std::string name() const override { return "segv"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kHeuristic;
  }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "test fixture: the mapper that segfaults";
  }

  Result<Mapping> Map(const Dfg&, const Architecture&,
                      const MapperOptions&) const override {
    // volatile so the write cannot be optimised out (a compiler is
    // allowed to delete UB it can prove).
    volatile int* p = nullptr;
    *p = 42;  // NOLINT: deliberate crash
    return Error::Internal("unreachable");
  }
};

// A hard infinite loop that never polls the deadline or the stop
// token — the wedge that motivates the parent-side watchdog and the
// CPU rlimit. The loop body does real atomic work so the optimiser
// cannot collapse it.
class SpinMapper final : public Mapper {
 public:
  std::string name() const override { return "spin"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kHeuristic;
  }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "test fixture: the mapper that never returns";
  }

  Result<Mapping> Map(const Dfg&, const Architecture&,
                      const MapperOptions&) const override {
    std::atomic<std::uint64_t> x{0};
    for (;;) {
      x.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

// Allocates without bound until std::bad_alloc (under a sandbox
// memory rlimit) or the OOM killer intervenes. Touches every page so
// the memory is actually resident, not just reserved.
class AllocBombMapper final : public Mapper {
 public:
  std::string name() const override { return "allocbomb"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kHeuristic;
  }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "test fixture: the mapper that eats all memory";
  }

  Result<Mapping> Map(const Dfg&, const Architecture&,
                      const MapperOptions&) const override {
    std::vector<std::unique_ptr<char[]>> hoard;
    constexpr std::size_t kChunk = 16u << 20;  // 16 MiB per step
    for (;;) {
      auto chunk = std::make_unique<char[]>(kChunk);
      for (std::size_t i = 0; i < kChunk; i += 4096) chunk[i] = 1;
      hoard.push_back(std::move(chunk));
    }
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeThrowingMapper() {
  return std::make_unique<ThrowingMapper>();
}

std::unique_ptr<Mapper> MakeSegvMapper() {
  return std::make_unique<SegvMapper>();
}

std::unique_ptr<Mapper> MakeSpinMapper() {
  return std::make_unique<SpinMapper>();
}

std::unique_ptr<Mapper> MakeAllocBombMapper() {
  return std::make_unique<AllocBombMapper>();
}

}  // namespace cgra
