// Test-fixture mappers: registered under the registry's Find-only
// fixtures section so engine tests can assemble hostile portfolios by
// name, without the fixtures ever appearing in All()/ByTechnique()
// enumeration (a bench sweep must not race a booby trap by accident).
#include <memory>
#include <stdexcept>

#include "mappers/mappers.hpp"

namespace cgra {
namespace {

// A deliberately misbehaving portfolio entry: Map() throws instead of
// returning a Result. The engine's crash isolation must convert this
// into a failed EngineAttempt with Error::Code::kInternal and let the
// rest of the race proceed.
class ThrowingMapper final : public Mapper {
 public:
  std::string name() const override { return "throwing"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kHeuristic;
  }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "test fixture: the mapper that throws";
  }

  Result<Mapping> Map(const Dfg&, const Architecture&,
                      const MapperOptions&) const override {
    throw std::runtime_error("deliberate test-fixture crash");
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeThrowingMapper() {
  return std::make_unique<ThrowingMapper>();
}

}  // namespace cgra
