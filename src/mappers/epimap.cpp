// EPIMap-style binding via maximum common subgraph, after Hamzeh et
// al. [28] (and the backward simultaneous variant of Peyret [47] uses
// the same compatibility machinery).
//
// The schedule is produced first (modulo-ASAP levels); binding is then
// the problem of embedding the scheduled DFG into the time-extended
// CGRA graph. We build graph A = scheduled ops (edges = same/carried
// dependencies) and graph B = (cell, slot) pairs with edges wherever a
// one-hop-or-wait transfer of the required latency exists, and run the
// MCS search with compatibility = capability + slot agreement. When
// the embedding misses ops (MCS < |A|), the DFG is transformed the
// EPIMap way — a kRoute node is inserted to stretch the failing edge —
// and the process repeats (the "epimorphism" iteration).
#include <algorithm>
#include <cstddef>
#include <map>

#include "graph/mcs.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"

namespace cgra {
namespace {

class EpimapStyleMapper final : public Mapper {
 public:
  std::string name() const override { return "epimap"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kBinding; }
  std::string lineage() const override {
    return "max-common-subgraph binding with recompute/route transforms "
           "(EPIMap [28]; cf. Peyret et al. [47])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      Dfg work = dfg;  // transformed copy (route insertions)
      for (int transform_round = 0; transform_round < 4; ++transform_round) {
        if (ShouldAbort(options)) {
          return Error::ResourceLimit("EPIMap deadline expired");
        }
        Result<Mapping> r = TryBind(work, dfg, arch, mrrg, ii, options);
        if (r.ok()) return r;
        // Transform: stretch the longest same-iteration edge of the
        // highest-fanout op with a route node, then retry.
        const auto fan = work.FanOut();
        OpId worst = kNoOp;
        int worst_fan = 1;
        for (OpId op = 0; op < work.num_ops(); ++op) {
          if (arch.IsFolded(work.op(op).opcode)) continue;
          if (fan[static_cast<size_t>(op)] > worst_fan) {
            worst_fan = fan[static_cast<size_t>(op)];
            worst = op;
          }
        }
        if (worst == kNoOp) return r;
        const OpId route =
            work.AddUnary(Opcode::kRoute, worst, work.op(worst).name + "_rt");
        int toggle = 0;
        for (OpId consumer = 0; consumer < work.num_ops(); ++consumer) {
          if (consumer == route) continue;
          for (Operand& o : work.mutable_op(consumer).operands) {
            if (o.producer == worst && o.distance == 0 && toggle++ % 2 == 1) {
              o.producer = route;
            }
          }
        }
      }
      return Error::Unmappable("EPIMap transforms exhausted at this II");
    });
  }

 private:
  // One embed attempt for the (possibly transformed) DFG `work`. The
  // result is projected onto `original` if `work` == `original` in op
  // prefix (synthetic routes are appended, so original placements are
  // a prefix); we re-pin-and-route the original ops.
  Result<Mapping> TryBind(const Dfg& work, const Dfg& original,
                          const Architecture& arch, const Mrrg& mrrg, int ii,
                          const MapperOptions& options) const {
    const auto times = ModuloAsap(work, arch, ii);
    if (times.empty()) {
      return Error::Unmappable("recurrences infeasible at this II");
    }

    // Graph A: mappable scheduled ops with their dependence edges.
    std::vector<OpId> mappable;
    std::vector<int> compact(static_cast<size_t>(work.num_ops()), -1);
    for (OpId op = 0; op < work.num_ops(); ++op) {
      if (!arch.IsFolded(work.op(op).opcode)) {
        compact[static_cast<size_t>(op)] = static_cast<int>(mappable.size());
        mappable.push_back(op);
      }
    }
    Digraph a(static_cast<int>(mappable.size()));
    struct AEdge {
      int from, to, latency;
    };
    std::vector<AEdge> a_edges;
    for (const DfgEdge& e : work.Edges(true)) {
      if (e.to_port == kOrderPort) continue;
      if (arch.IsFolded(work.op(e.from).opcode)) continue;
      const int fa = compact[static_cast<size_t>(e.from)];
      const int ta = compact[static_cast<size_t>(e.to)];
      a.AddEdge(fa, ta);
      a_edges.push_back(
          AEdge{fa, ta,
                times[static_cast<size_t>(e.to)] + ii * e.distance -
                    times[static_cast<size_t>(e.from)]});
    }

    // Graph B: one node per (cell, slot); edge p->q when a value
    // produced on p can be read by q after a wait-or-one-hop transfer
    // (the restricted-routing relation).
    const int cells = arch.num_cells();
    Digraph b(cells * ii);
    auto bnode = [&](int cell, int slot) { return cell * ii + slot; };
    for (int p = 0; p < cells; ++p) {
      for (int sp = 0; sp < ii; ++sp) {
        for (int q = 0; q < cells; ++q) {
          const auto& readable = arch.ReadableFrom(q);
          const bool direct =
              std::find(readable.begin(), readable.end(), p) != readable.end();
          if (!direct) continue;
          for (int sq = 0; sq < ii; ++sq) {
            b.AddEdge(bnode(p, sp), bnode(q, sq));
          }
        }
      }
    }

    // Compatibility: capability + slot agreement with the schedule.
    McsOptions mcs;
    mcs.deadline = options.deadline.RemainingSeconds() > 2.0
                       ? Deadline::AfterSeconds(2.0)
                       : options.deadline;
    mcs.require_edge_preservation = true;
    mcs.node_compatible = [&](NodeId va, NodeId vb) {
      const OpId op = mappable[static_cast<size_t>(va)];
      const int cell = vb / ii;
      const int slot = vb % ii;
      const int want = ((times[static_cast<size_t>(op)] % ii) + ii) % ii;
      return slot == want && arch.CanExecute(cell, work.op(op));
    };
    const auto match = MaxCommonSubgraph(a, b, mcs);
    if (match.size() != mappable.size()) {
      return Error::Unmappable("MCS embedding left ops unmapped");
    }

    // Realize with the real router at the matched cells/times.
    PlaceRouteState state(work, arch, mrrg, ii);
    std::vector<std::pair<OpId, int>> placement;  // (op, cell)
    for (const auto& [va, vb] : match) {
      placement.push_back({mappable[static_cast<size_t>(va)], vb / ii});
    }
    std::sort(placement.begin(), placement.end(), [&](const auto& x, const auto& y) {
      return times[static_cast<size_t>(x.first)] < times[static_cast<size_t>(y.first)];
    });
    for (const auto& [op, cell] : placement) {
      if (!state.TryPlace(op, cell, times[static_cast<size_t>(op)])) {
        return Error::Unmappable("MCS embedding not routable");
      }
    }
    Mapping full = state.Finalize();
    if (work.num_ops() == original.num_ops()) return full;

    // Project the transformed mapping back onto the original DFG.
    PlaceRouteState pinned(original, arch, mrrg, ii);
    std::vector<OpId> by_time;
    for (OpId op = 0; op < original.num_ops(); ++op) {
      if (!arch.IsFolded(original.op(op).opcode)) by_time.push_back(op);
    }
    std::sort(by_time.begin(), by_time.end(), [&](OpId x, OpId y) {
      return full.place[static_cast<size_t>(x)].time <
             full.place[static_cast<size_t>(y)].time;
    });
    for (OpId op : by_time) {
      const Placement& p = full.place[static_cast<size_t>(op)];
      if (!pinned.TryPlace(op, p.cell, p.time)) {
        return Error::Unmappable("projection of transformed mapping failed");
      }
    }
    return pinned.Finalize();
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeEpimapStyleMapper() {
  return std::make_unique<EpimapStyleMapper>();
}

}  // namespace cgra
