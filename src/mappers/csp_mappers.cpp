// Constraint-satisfaction mappers (the Table I "CSP" column): CP, SAT
// and SMT formulations of temporal mapping, each on the corresponding
// in-tree solver. All three use the restricted-routing relation (wait
// in the producer's RF, then one direct link), like the exact ILP
// mappers — see ilp_mappers.cpp's header comment.
#include <algorithm>
#include <cstddef>

#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "solver/cp.hpp"
#include "solver/sat.hpp"
#include "solver/smt.hpp"

namespace cgra {
namespace {

bool DirectlyReadable(const Architecture& arch, int producer, int consumer) {
  const auto& r = arch.ReadableFrom(consumer);
  return std::find(r.begin(), r.end(), producer) != r.end();
}

// Shared post-solve realization.
Result<Mapping> RealizePinned(const Dfg& dfg, const Architecture& arch,
                              const Mrrg& mrrg, int ii,
                              const std::vector<Placement>& pins) {
  PlaceRouteState state(dfg, arch, mrrg, ii);
  std::vector<OpId> order;
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    if (!arch.IsFolded(dfg.op(op).opcode)) order.push_back(op);
  }
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return pins[static_cast<size_t>(a)].time < pins[static_cast<size_t>(b)].time;
  });
  for (OpId op : order) {
    if (!state.TryPlace(op, pins[static_cast<size_t>(op)].cell,
                        pins[static_cast<size_t>(op)].time)) {
      return Error::Unmappable("solver assignment not realizable");
    }
  }
  return state.Finalize();
}

// ---------------------------------------------------------------------------
// CP: one finite-domain variable per op over (cell, time) pairs.
// ---------------------------------------------------------------------------
class CpTemporalMapper final : public Mapper {
 public:
  std::string name() const override { return "cp"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactCsp; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "constraint programming over placements (Raffin et al. [43])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      const int T = *std::max_element(est.begin(), est.end()) + std::min(3, ii) + 1;
      const int cells = arch.num_cells();
      auto encode = [&](int cell, int t) { return cell * T + t; };

      std::vector<OpId> ops;
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        if (!arch.IsFolded(dfg.op(op).opcode)) ops.push_back(op);
      }
      CpModel model;
      std::vector<CpVar> var(static_cast<size_t>(dfg.num_ops()), -1);
      for (OpId op : ops) {
        std::vector<int> domain;
        for (int c = 0; c < cells; ++c) {
          if (!arch.CanExecute(c, dfg.op(op))) continue;
          for (int t = est[static_cast<size_t>(op)]; t < T; ++t) {
            domain.push_back(encode(c, t));
          }
        }
        if (domain.empty()) {
          return Error::Unmappable("an op has an empty placement domain");
        }
        var[static_cast<size_t>(op)] = model.AddVarWithDomain(std::move(domain),
                                                              dfg.op(op).name);
      }
      // FU exclusivity: pairwise (cell, slot) difference.
      for (size_t i = 0; i < ops.size(); ++i) {
        for (size_t j = i + 1; j < ops.size(); ++j) {
          model.AddBinary(var[static_cast<size_t>(ops[i])], var[static_cast<size_t>(ops[j])],
                          [T, ii](int a, int b) {
                            const int ca = a / T, ta = a % T;
                            const int cb = b / T, tb = b % T;
                            return ca != cb || (ta % ii) != (tb % ii);
                          });
        }
      }
      // Dependence + restricted routing.
      for (const DfgEdge& e : dfg.Edges(true)) {
        if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
        if (e.from == e.to) {
          // Self loop: only timing (own RF is always readable).
          if (ii * e.distance < 1) {
            return Error::Unmappable("self dependence unsatisfiable");
          }
          continue;
        }
        const bool order_only = e.to_port == kOrderPort;
        const int dist = e.distance;
        const Architecture* ap = &arch;
        model.AddBinary(var[static_cast<size_t>(e.from)], var[static_cast<size_t>(e.to)],
                        [T, ii, dist, order_only, ap](int a, int b) {
                          const int ca = a / T, ta = a % T;
                          const int cb = b / T, tb = b % T;
                          if (tb + ii * dist < ta + 1) return false;
                          if (order_only) return true;
                          return DirectlyReadable(*ap, ca, cb);
                        });
      }

      CpModel::SolveStats stats;
      auto sol = model.Solve(options.deadline, &stats, options.stop);
      NoteSolverSteps(*this, options, ii, "cp search nodes", stats.nodes);
      if (!sol.ok()) return sol.error();

      std::vector<Placement> pins(static_cast<size_t>(dfg.num_ops()));
      for (OpId op : ops) {
        const int v = (*sol)[static_cast<size_t>(var[static_cast<size_t>(op)])];
        pins[static_cast<size_t>(op)] = Placement{v / T, v % T};
      }
      return RealizePinned(dfg, arch, mrrg, ii, pins);
    });
  }
};

// ---------------------------------------------------------------------------
// SAT: booleans x[op][(cell, t)] with CNF structure.
// ---------------------------------------------------------------------------
class SatTemporalMapper final : public Mapper {
 public:
  std::string name() const override { return "sat"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactCsp; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "SAT-based DFG mapping (Miyasaka et al. [17])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      const int T = *std::max_element(est.begin(), est.end()) + std::min(3, ii) + 1;
      const int cells = arch.num_cells();
      std::vector<OpId> ops;
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        if (!arch.IsFolded(dfg.op(op).opcode)) ops.push_back(op);
      }

      SatSolver solver;
      const int base = solver.NewVars(static_cast<int>(ops.size()) * cells * T);
      auto x = [&](size_t i, int c, int t) {
        return PosLit(base + static_cast<int>((i * static_cast<size_t>(cells) +
                                               static_cast<size_t>(c)) *
                                                  static_cast<size_t>(T) +
                                              static_cast<size_t>(t)));
      };

      for (size_t i = 0; i < ops.size(); ++i) {
        std::vector<Lit> one;
        for (int c = 0; c < cells; ++c) {
          const bool capable = arch.CanExecute(c, dfg.op(ops[i]));
          for (int t = 0; t < T; ++t) {
            if (capable && t >= est[static_cast<size_t>(ops[i])]) {
              one.push_back(x(i, c, t));
            } else {
              solver.AddUnit(Negate(x(i, c, t)));
            }
          }
        }
        if (one.empty()) return Error::Unmappable("empty placement domain");
        solver.ExactlyOne(one);
      }
      // FU exclusivity per (cell, slot).
      for (int c = 0; c < cells; ++c) {
        for (int slot = 0; slot < ii; ++slot) {
          std::vector<Lit> group;
          for (size_t i = 0; i < ops.size(); ++i) {
            for (int t = slot; t < T; t += ii) group.push_back(x(i, c, t));
          }
          solver.AtMostOneSequential(group);
        }
      }
      // Dependences: x[u][p][t] -> OR of allowed consumer placements.
      std::vector<int> compact(static_cast<size_t>(dfg.num_ops()), -1);
      for (size_t i = 0; i < ops.size(); ++i) compact[static_cast<size_t>(ops[i])] = static_cast<int>(i);
      for (const DfgEdge& e : dfg.Edges(true)) {
        if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
        if (e.from == e.to) continue;  // timing trivially ok (dist >= 1)
        const size_t u = static_cast<size_t>(compact[static_cast<size_t>(e.from)]);
        const size_t v = static_cast<size_t>(compact[static_cast<size_t>(e.to)]);
        for (int p = 0; p < cells; ++p) {
          for (int t = 0; t < T; ++t) {
            std::vector<Lit> clause{Negate(x(u, p, t))};
            for (int q = 0; q < cells; ++q) {
              if (e.to_port != kOrderPort && !DirectlyReadable(arch, p, q)) {
                continue;
              }
              for (int t2 = 0; t2 < T; ++t2) {
                if (t2 + ii * e.distance >= t + 1) clause.push_back(x(v, q, t2));
              }
            }
            solver.AddClause(std::move(clause));
          }
        }
      }

      const SatResult r = solver.Solve(options.deadline, options.stop);
      NoteSolverSteps(*this, options, ii, "sat conflicts", solver.conflicts());
      if (r == SatResult::kUnknown) {
        return Error::ResourceLimit("SAT mapper hit the deadline");
      }
      if (r == SatResult::kUnsat) {
        return Error::Unmappable(
            "SAT proved: no mapping at this II under restricted routing");
      }
      std::vector<Placement> pins(static_cast<size_t>(dfg.num_ops()));
      for (size_t i = 0; i < ops.size(); ++i) {
        for (int c = 0; c < cells; ++c) {
          for (int t = 0; t < T; ++t) {
            if (solver.Value(VarOf(x(i, c, t)))) {
              pins[static_cast<size_t>(ops[i])] = Placement{c, t};
            }
          }
        }
      }
      return RealizePinned(dfg, arch, mrrg, ii, pins);
    });
  }
};

// ---------------------------------------------------------------------------
// SMT: placement booleans + difference-logic issue times, DPLL(T).
// Works on non-pipelined schedules (II == schedule length) because
// modulo congruences are outside difference logic — exactly the kind
// of restriction [44] calls "restricted routing networks".
// ---------------------------------------------------------------------------
class SmtTemporalMapper final : public Mapper {
 public:
  std::string name() const override { return "smt"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactCsp; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "SMT (difference logic) mapping (Donovick et al. [44])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    if (Status s = CheckMappable(dfg, arch); !s.ok()) return s.error();
    // Non-pipelined: II == schedule length L; escalate L.
    const auto est0 = ModuloAsap(dfg, arch, arch.MaxIi());
    if (est0.empty()) {
      return Error::Unmappable("recurrences infeasible even at max II");
    }
    const int min_len =
        *std::max_element(est0.begin(), est0.end()) + 1;
    Error last = Error::Unmappable("no schedule length attempted");
    for (int len = min_len; len <= std::min(options.max_ii + min_len, arch.MaxIi());
         ++len) {
      if (ShouldAbort(options)) {
        return Error::ResourceLimit(
            "SMT mapper stopped (deadline or cancellation)");
      }
      // The SMT mapper escalates schedule length rather than II, so it
      // reports its attempts itself (EscalateIi does this for the rest).
      MapEvent start;
      start.kind = MapEvent::Kind::kAttemptStart;
      start.mapper = name();
      start.ii = len;
      NotifyObserver(options.observer, start);
      WallTimer attempt_timer;
      Result<Mapping> r = TryLength(dfg, arch, mrrg, len, options);
      MapEvent done;
      done.kind = MapEvent::Kind::kAttemptDone;
      done.mapper = name();
      done.ii = len;
      done.ok = r.ok();
      done.seconds = attempt_timer.Seconds();
      if (!r.ok()) {
        done.error_code = r.error().code;
        done.message = r.error().message;
      }
      NotifyObserver(options.observer, done);
      if (r.ok()) return r;
      last = r.error();
    }
    return last;
  }

 private:
  Result<Mapping> TryLength(const Dfg& dfg, const Architecture& arch,
                            const Mrrg& mrrg, int len,
                            const MapperOptions& options) const {
    const int cells = arch.num_cells();
    std::vector<OpId> ops;
    for (OpId op = 0; op < dfg.num_ops(); ++op) {
      if (!arch.IsFolded(dfg.op(op).opcode)) ops.push_back(op);
    }

    SmtSolver smt;
    const int zero = smt.NewTerm();  // reference point (time 0)
    std::vector<int> t_term(static_cast<size_t>(dfg.num_ops()), -1);
    std::vector<std::vector<int>> b(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      const OpId op = ops[i];
      t_term[static_cast<size_t>(op)] = smt.NewTerm();
      // 0 <= t < len  (relative to `zero`).
      smt.AssertLe(zero, t_term[static_cast<size_t>(op)], 0);
      smt.AssertLe(t_term[static_cast<size_t>(op)], zero, len - 1);
      std::vector<Lit> one;
      for (int c = 0; c < cells; ++c) {
        b[i].push_back(smt.NewBool());
        if (!arch.CanExecute(c, dfg.op(op))) {
          smt.AddClause({NegLit(b[i][static_cast<size_t>(c)])});
        } else {
          one.push_back(PosLit(b[i][static_cast<size_t>(c)]));
        }
      }
      smt.AddClause(one);  // at least one cell
      smt.sat().AtMostOneSequential([&] {
        std::vector<Lit> lits;
        for (int c = 0; c < cells; ++c) lits.push_back(PosLit(b[i][static_cast<size_t>(c)]));
        return lits;
      }());
    }
    // FU exclusivity (non-pipelined: same cell => different times).
    for (size_t i = 0; i < ops.size(); ++i) {
      for (size_t j = i + 1; j < ops.size(); ++j) {
        const Lit ne1 = smt.AtomLe(t_term[static_cast<size_t>(ops[i])],
                                   t_term[static_cast<size_t>(ops[j])], -1);
        const Lit ne2 = smt.AtomLe(t_term[static_cast<size_t>(ops[j])],
                                   t_term[static_cast<size_t>(ops[i])], -1);
        for (int c = 0; c < cells; ++c) {
          smt.AddClause({NegLit(b[i][static_cast<size_t>(c)]),
                         NegLit(b[j][static_cast<size_t>(c)]), ne1, ne2});
        }
      }
    }
    // Dependences: timing in the theory, adjacency in the booleans.
    std::vector<int> compact(static_cast<size_t>(dfg.num_ops()), -1);
    for (size_t i = 0; i < ops.size(); ++i) compact[static_cast<size_t>(ops[i])] = static_cast<int>(i);
    for (const DfgEdge& e : dfg.Edges(true)) {
      if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
      const int tu = t_term[static_cast<size_t>(e.from)];
      const int tv = t_term[static_cast<size_t>(e.to)];
      // t_u - t_v <= len*distance - 1.
      smt.AssertLe(tu, tv, len * e.distance - 1);
      if (e.to_port == kOrderPort || e.from == e.to) continue;
      const size_t u = static_cast<size_t>(compact[static_cast<size_t>(e.from)]);
      const size_t v = static_cast<size_t>(compact[static_cast<size_t>(e.to)]);
      for (int p = 0; p < cells; ++p) {
        for (int q = 0; q < cells; ++q) {
          if (!DirectlyReadable(arch, p, q)) {
            smt.AddClause({NegLit(b[u][static_cast<size_t>(p)]),
                           NegLit(b[v][static_cast<size_t>(q)])});
          }
        }
      }
    }

    const SmtSolver::Outcome r = smt.Solve(options.deadline, options.stop);
    NoteSolverSteps(*this, options, len, "smt sat conflicts",
                    smt.sat().conflicts());
    if (r == SmtSolver::Outcome::kUnknown) {
      return Error::ResourceLimit("SMT mapper hit the deadline");
    }
    if (r == SmtSolver::Outcome::kUnsat) {
      return Error::Unmappable(
          "SMT proved: no non-pipelined mapping at this length");
    }
    const int t0 = smt.TermValue(0);
    std::vector<Placement> pins(static_cast<size_t>(dfg.num_ops()));
    for (size_t i = 0; i < ops.size(); ++i) {
      int cell = -1;
      for (int c = 0; c < cells; ++c) {
        if (smt.BoolValue(b[i][static_cast<size_t>(c)])) {
          cell = c;
          break;
        }
      }
      pins[static_cast<size_t>(ops[i])] =
          Placement{cell, smt.TermValue(t_term[static_cast<size_t>(ops[i])]) - t0};
    }
    return RealizePinned(dfg, arch, mrrg, len, pins);
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeCpTemporalMapper() {
  return std::make_unique<CpTemporalMapper>();
}
std::unique_ptr<Mapper> MakeSatTemporalMapper() {
  return std::make_unique<SatTemporalMapper>();
}
std::unique_ptr<Mapper> MakeSmtTemporalMapper() {
  return std::make_unique<SmtTemporalMapper>();
}

}  // namespace cgra
