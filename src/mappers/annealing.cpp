// The simulated-annealing family (Table I's "local search" column).
//
// One annealer core, three mappers:
//  * dresc-sa  — DRESC [22]: anneals BOTH binding and schedule slots at
//    a fixed II, with congestion-negotiating (capacity-blind) routing;
//    overuse is a cost term that the cooling schedule drives to zero.
//  * spr-sa    — SPR [49] / Hatanaka [30]: the schedule comes from list
//    modulo scheduling and stays fixed; annealing explores binding only.
//  * sa-spatial — SNAFU [33]/DSAGEN [32] style: II = 1 placement
//    annealing for spatial fabrics.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <tuple>

#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "support/rng.hpp"
#include "telemetry/search_log.hpp"

namespace cgra {
namespace {

struct SaConfig {
  bool move_time = true;   ///< DRESC moves slots too; binders do not
  int iterations_per_op = 400;
  double t0_scale = 2.0;
  double cooling = 0.995;
};

// Annealer working state: a full assignment op -> (cell, time), with
// per-edge capacity-blind routes and an overuse score.
class Annealer {
 public:
  Annealer(const Dfg& dfg, const Architecture& arch, const Mrrg& mrrg, int ii,
           const std::vector<int>& est, Rng& rng)
      : dfg_(dfg),
        arch_(arch),
        mrrg_(mrrg),
        ii_(ii),
        est_(est),
        rng_(rng),
        blind_tracker_(mrrg, ii),
        candidates_(CandidateCellTable(dfg, arch)),
        place_(static_cast<size_t>(dfg.num_ops())) {
    edges_ = dfg_.Edges(true);
    for (size_t e = 0; e < edges_.size(); ++e) {
      edges_of_[edges_[e].from].push_back(static_cast<int>(e));
      if (edges_[e].to != edges_[e].from) {
        edges_of_[edges_[e].to].push_back(static_cast<int>(e));
      }
    }
    routes_.resize(edges_.size());
  }

  /// Random initial assignment: ASAP slot (plus jitter when times move),
  /// random capable cell.
  void RandomInit(bool jitter_time) {
    for (OpId op = 0; op < dfg_.num_ops(); ++op) {
      if (arch_.IsFolded(dfg_.op(op).opcode)) continue;
      const auto& cells = candidates_[static_cast<size_t>(op)];
      const int cell = cells[rng_.NextIndex(cells.size())];
      int t = est_[static_cast<size_t>(op)];
      if (jitter_time) t += static_cast<int>(rng_.NextIndex(static_cast<size_t>(ii_)));
      place_[static_cast<size_t>(op)] = Placement{cell, t};
    }
    for (size_t e = 0; e < edges_.size(); ++e) RerouteEdge(static_cast<int>(e));
  }

  void SetTimesFixed(const std::vector<int>& times) {
    for (OpId op = 0; op < dfg_.num_ops(); ++op) {
      if (arch_.IsFolded(dfg_.op(op).opcode)) continue;
      place_[static_cast<size_t>(op)].time = times[static_cast<size_t>(op)];
    }
    for (size_t e = 0; e < edges_.size(); ++e) RerouteEdge(static_cast<int>(e));
  }

  double Cost() const {
    // FU overuse.
    std::map<std::pair<int, int>, int> fu;
    std::map<std::pair<int, int>, int> bank;
    double timing_violations = 0;
    for (OpId op = 0; op < dfg_.num_ops(); ++op) {
      if (arch_.IsFolded(dfg_.op(op).opcode)) continue;
      const Placement& p = place_[static_cast<size_t>(op)];
      ++fu[{p.cell, Slot(p.time)}];
      if (IsMemoryOp(dfg_.op(op).opcode) && arch_.caps(p.cell).bank >= 0) {
        ++bank[{arch_.caps(p.cell).bank, Slot(p.time)}];
      }
    }
    double over = 0;
    for (const auto& [key, n] : fu) over += std::max(0, n - 1);
    for (const auto& [key, n] : bank) {
      over += std::max(0, n - arch_.params().bank_ports);
    }
    // Route overuse from cached routes (net-shared steps deduped).
    std::set<std::tuple<ValueId, int, int>> occ;
    double steps = 0;
    for (size_t e = 0; e < edges_.size(); ++e) {
      const DfgEdge& edge = edges_[e];
      if (edge.to_port == kOrderPort) {
        const int arrive = place_[static_cast<size_t>(edge.to)].time + ii_ * edge.distance;
        if (!arch_.IsFolded(dfg_.op(edge.from).opcode) &&
            arrive < place_[static_cast<size_t>(edge.from)].time + 1) {
          timing_violations += 1;
        }
        continue;
      }
      if (arch_.IsFolded(dfg_.op(edge.from).opcode)) continue;
      if (!routes_[e].has_value()) {
        timing_violations += 1;  // unroutable (usually a timing problem)
        continue;
      }
      for (const RouteStep& s : routes_[e]->steps) {
        occ.insert({edge.from, s.node, s.time});
      }
      steps += static_cast<double>(routes_[e]->steps.size());
    }
    std::map<std::pair<int, int>, int> load;
    for (const auto& [v, node, time] : occ) {
      (void)v;
      ++load[{node, Slot(time)}];
    }
    for (const auto& [key, n] : load) {
      over += std::max(0, n - mrrg_.node(key.first).capacity);
    }
    return 100.0 * timing_violations + 10.0 * over + 0.01 * steps;
  }

  /// Applies one random move; returns (op, old placement) for undo.
  std::pair<OpId, Placement> Mutate(bool move_time) {
    OpId op;
    do {
      op = static_cast<OpId>(rng_.NextIndex(static_cast<size_t>(dfg_.num_ops())));
    } while (arch_.IsFolded(dfg_.op(op).opcode));
    const Placement old = place_[static_cast<size_t>(op)];
    const auto& cells = candidates_[static_cast<size_t>(op)];
    Placement next = old;
    next.cell = cells[rng_.NextIndex(cells.size())];
    if (move_time && rng_.NextBool(0.5)) {
      next.time = est_[static_cast<size_t>(op)] +
                  static_cast<int>(rng_.NextIndex(static_cast<size_t>(2 * ii_)));
    }
    place_[static_cast<size_t>(op)] = next;
    for (int e : edges_of_[op]) RerouteEdge(e);
    return {op, old};
  }

  void Undo(const std::pair<OpId, Placement>& undo) {
    place_[static_cast<size_t>(undo.first)] = undo.second;
    for (int e : edges_of_[undo.first]) RerouteEdge(e);
  }

  /// Tries to rebuild the current assignment with hard capacities.
  Result<Mapping> Realize() const {
    PlaceRouteState state(dfg_, arch_, mrrg_, ii_);
    // Place in time order so producers tend to precede consumers.
    std::vector<OpId> order;
    for (OpId op = 0; op < dfg_.num_ops(); ++op) {
      if (!arch_.IsFolded(dfg_.op(op).opcode)) order.push_back(op);
    }
    std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
      const int ta = place_[static_cast<size_t>(a)].time;
      const int tb = place_[static_cast<size_t>(b)].time;
      return ta != tb ? ta < tb : a < b;
    });
    for (OpId op : order) {
      const Placement& p = place_[static_cast<size_t>(op)];
      if (!state.TryPlace(op, p.cell, p.time)) {
        return Error::Unmappable("hard-capacity realization failed");
      }
    }
    return state.Finalize();
  }

 private:
  int Slot(int t) const { return ((t % ii_) + ii_) % ii_; }

  void RerouteEdge(int e) {
    const DfgEdge& edge = edges_[static_cast<size_t>(e)];
    routes_[static_cast<size_t>(e)].reset();
    if (edge.to_port == kOrderPort) return;
    if (arch_.IsFolded(dfg_.op(edge.from).opcode)) return;
    const Placement& pf = place_[static_cast<size_t>(edge.from)];
    const Placement& pt = place_[static_cast<size_t>(edge.to)];
    RouteRequest req;
    req.from_cell = pf.cell;
    req.from_time = pf.time;
    req.to_cell = pt.cell;
    req.to_time = pt.time + ii_ * edge.distance;
    req.value = edge.from;
    RouterOptions blind;
    blind.ignore_capacity = true;
    auto r = RouteValue(mrrg_, blind_tracker_, req, blind);
    if (r.ok()) routes_[static_cast<size_t>(e)] = std::move(r).value();
  }

  const Dfg& dfg_;
  const Architecture& arch_;
  const Mrrg& mrrg_;
  int ii_;
  std::vector<int> est_;
  Rng& rng_;
  mutable ResourceTracker blind_tracker_;  // untouched in blind mode
  std::vector<std::vector<int>> candidates_;
  std::vector<Placement> place_;
  std::vector<DfgEdge> edges_;
  std::map<OpId, std::vector<int>> edges_of_;
  std::vector<std::optional<Route>> routes_;
};

Result<Mapping> AnnealAtIi(const Dfg& dfg, const Architecture& arch,
                           const Mrrg& mrrg, int ii, const SaConfig& cfg,
                           const MapperOptions& options, Rng& rng,
                           const std::vector<int>* fixed_times) {
  const auto est = ModuloAsap(dfg, arch, ii);
  if (est.empty()) {
    return Error::Unmappable("recurrences infeasible at this II");
  }
  Annealer annealer(dfg, arch, mrrg, ii, est, rng);
  annealer.RandomInit(/*jitter_time=*/cfg.move_time);
  if (fixed_times) annealer.SetTimesFixed(*fixed_times);

  double cost = annealer.Cost();
  double temperature = std::max(1.0, cost * cfg.t0_scale);
  const int total_iters = cfg.iterations_per_op * std::max(1, dfg.num_ops());
  for (int iter = 0; iter < total_iters; ++iter) {
    if ((iter & 63) == 0 && ShouldAbort(options)) {
      return Error::ResourceLimit("SA deadline expired");
    }
    if (cost < 1e-9 || (cost < 1.0 && (iter & 15) == 0)) {
      // Overuse-free: try to realize with hard capacities.
      Result<Mapping> m = annealer.Realize();
      if (m.ok()) return m;
    }
    const auto undo = annealer.Mutate(cfg.move_time && fixed_times == nullptr);
    const double next = annealer.Cost();
    const double delta = next - cost;
    if (delta <= 0 || rng.NextDouble() < std::exp(-delta / temperature)) {
      cost = next;
    } else {
      annealer.Undo(undo);
    }
    temperature = std::max(0.01, temperature * cfg.cooling);
    // Energy-vs-iteration curve, decimated inside the log (iteration-
    // keyed, so repeated identical runs record identical curves).
    telemetry::SearchRecordCost(iter, cost);
  }
  if (cost < 1.0) {
    Result<Mapping> m = annealer.Realize();
    if (m.ok()) return m;
  }
  return Error::Unmappable("annealing did not reach an overuse-free state");
}

class DrescAnnealingMapper final : public Mapper {
 public:
  std::string name() const override { return "dresc-sa"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kMetaLocalSearch;
  }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "simulated annealing over the MRRG with congestion negotiation "
           "(DRESC, Mei et al. [22])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);
    SaConfig cfg;
    cfg.move_time = true;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) {
      return AnnealAtIi(dfg, arch, mrrg, ii, cfg, options, rng, nullptr);
    });
  }
};

class AnnealingBinder final : public Mapper {
 public:
  std::string name() const override { return "spr-sa"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kMetaLocalSearch;
  }
  MappingKind kind() const override { return MappingKind::kBinding; }
  std::string lineage() const override {
    return "annealed binding under a fixed modulo schedule (SPR [49], "
           "Hatanaka & Bagherzadeh [30])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);
    SaConfig cfg;
    cfg.move_time = false;
    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      // Fixed schedule: modulo-ASAP times (the decoupled "scheduling
      // then binding" split of Table I's Binding row).
      const auto times = ModuloAsap(dfg, arch, ii);
      if (times.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      return AnnealAtIi(dfg, arch, mrrg, ii, cfg, options, rng, &times);
    });
  }
};

class AnnealingSpatialMapper final : public Mapper {
 public:
  std::string name() const override { return "sa-spatial"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kMetaLocalSearch;
  }
  MappingKind kind() const override { return MappingKind::kSpatial; }
  std::string lineage() const override {
    return "annealed spatial placement (SNAFU [33], DSAGEN [32])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);
    if (Status s = CheckMappable(dfg, arch); !s.ok()) return s.error();
    SaConfig cfg;
    cfg.move_time = true;  // pipeline stage may still slide in time
    return AnnealAtIi(dfg, arch, mrrg, /*ii=*/1, cfg, options, rng, nullptr);
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeDrescAnnealingMapper() {
  return std::make_unique<DrescAnnealingMapper>();
}
std::unique_ptr<Mapper> MakeAnnealingBinder() {
  return std::make_unique<AnnealingBinder>();
}
std::unique_ptr<Mapper> MakeAnnealingSpatialMapper() {
  return std::make_unique<AnnealingSpatialMapper>();
}

}  // namespace cgra
