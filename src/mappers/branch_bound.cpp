// Branch-and-bound temporal mapper, after DNestMap [42].
//
// Exhaustive DFS over (cell, time) assignments in dependence order,
// with TryPlace pruning the subtree the moment a partial assignment is
// unroutable. Within its time horizon (ASAP + slack) the search is
// complete: if it terminates without a solution, no mapping exists at
// that II with schedule lengths inside the horizon — the exact-method
// behaviour Table I attributes to B&B. A deadline turns it into an
// anytime method (kResourceLimit instead of kUnmappable).
#include <algorithm>
#include <cstddef>
#include <functional>

#include "graph/algos.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"

namespace cgra {
namespace {

class BranchBoundMapper final : public Mapper {
 public:
  std::string name() const override { return "bnb"; }
  TechniqueClass technique() const override { return TechniqueClass::kExactIlp; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "branch & bound over placements (DNestMap, Karunaratne et al. [42])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    const auto candidates = CandidateCellTable(dfg, arch);
    const auto topo = TopologicalOrder(dfg.ToDigraph(/*include_carried=*/false));
    if (!topo) return Error::InvalidArgument("DFG has a same-iteration cycle");
    std::vector<OpId> order;
    for (OpId op : *topo) {
      if (!arch.IsFolded(dfg.op(op).opcode)) order.push_back(op);
    }

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      const int horizon = *std::max_element(est.begin(), est.end()) +
                          std::min(options.extra_slack, ii + 2);
      PlaceRouteState state(dfg, arch, mrrg, ii);
      bool timed_out = false;

      // Depth-first with explicit recursion over `order`.
      std::function<bool(size_t)> dfs = [&](size_t depth) -> bool {
        if (depth == order.size()) return true;
        if (ShouldAbort(options)) {
          timed_out = true;
          return false;
        }
        const OpId op = order[depth];
        int t0 = est[static_cast<size_t>(op)];
        const auto edges = dfg.Edges(true);
        for (const DfgEdge& e : edges) {
          if (e.to != op || e.from == op) continue;
          if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
          if (state.IsPlaced(e.from)) {
            t0 = std::max(t0, state.placement(e.from).time + 1 - ii * e.distance);
          }
        }
        for (int t = t0; t <= horizon; ++t) {
          for (int cell : candidates[static_cast<size_t>(op)]) {
            if (state.TryPlace(op, cell, t)) {
              if (dfs(depth + 1)) return true;
              state.Unplace(op);
              if (timed_out) return false;
            }
          }
        }
        return false;
      };

      if (dfs(0)) return state.Finalize();
      if (timed_out) {
        return Error::ResourceLimit("branch & bound hit the deadline");
      }
      return Error::Unmappable(
          "B&B proved: no mapping at this II within the schedule horizon");
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeBranchBoundMapper() {
  return std::make_unique<BranchBoundMapper>();
}

}  // namespace cgra
