// Hierarchical mapping for scalability, after HiMap [26].
//
// Flat mappers degrade on big arrays because the search space grows
// with (cells x slots)^ops. HiMap's answer — and this mapper's — is
// divide and conquer: cluster the DFG (Kernighan-Lin recursive
// bisection), carve the fabric into sub-arrays (quadrants), pin each
// cluster into its own sub-array, and let the detailed placer work in
// the tiny per-cluster space; only inter-cluster edges cross regions.
// The scalability bench (DESIGN.md "§IV-B scalability") measures this
// against flat IMS on 4x4 -> 16x16 fabrics.
#include <algorithm>
#include <cstddef>

#include "graph/partition.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "support/rng.hpp"

namespace cgra {
namespace {

class HierarchicalMapper final : public Mapper {
 public:
  std::string name() const override { return "himap"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "hierarchical clustering + per-region mapping (HiMap [26])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    const auto order = HeightPriorityOrder(dfg, arch);
    Rng rng(options.seed);

    // Small fabrics gain nothing from hierarchy: delegate to flat IMS.
    const bool split = arch.rows() >= 4 && arch.cols() >= 4 &&
                       static_cast<int>(order.size()) >= 6;
    std::vector<std::vector<int>> restricted;
    if (split) {
      // Quadrant regions.
      std::vector<std::vector<int>> region(4);
      for (int c = 0; c < arch.num_cells(); ++c) {
        const int qr = arch.RowOf(c) < arch.rows() / 2 ? 0 : 1;
        const int qc = arch.ColOf(c) < arch.cols() / 2 ? 0 : 1;
        region[static_cast<size_t>(qr * 2 + qc)].push_back(c);
      }
      // DFG clusters (4-way).
      const Digraph g = dfg.ToDigraph(true);
      const std::vector<int> cluster = RecursiveBisection(g, 4, rng);
      // Per-op candidate cells: capability within the cluster's region,
      // falling back to the whole fabric when the region lacks the
      // needed capability (e.g. memory column in one quadrant only).
      restricted.resize(static_cast<size_t>(dfg.num_ops()));
      for (OpId op = 0; op < dfg.num_ops(); ++op) {
        if (arch.IsFolded(dfg.op(op).opcode)) continue;
        for (int c : region[static_cast<size_t>(cluster[static_cast<size_t>(op)])]) {
          if (arch.CanExecute(c, dfg.op(op))) {
            restricted[static_cast<size_t>(op)].push_back(c);
          }
        }
        if (restricted[static_cast<size_t>(op)].empty()) {
          for (int c = 0; c < arch.num_cells(); ++c) {
            if (arch.CanExecute(c, dfg.op(op))) {
              restricted[static_cast<size_t>(op)].push_back(c);
            }
          }
        }
      }
    }

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      ImsOptions ims;
      ims.deadline = options.deadline;
      ims.stop = options.stop;
      ims.extra_slack = options.extra_slack;
      if (split) ims.candidate_cells = &restricted;
      Result<Mapping> r = ImsPlaceRoute(dfg, arch, mrrg, ii, order, ims);
      if (r.ok() || !split) return r;
      // HiMap "terminates when a valid mapping is found": if the
      // hierarchical restriction was too tight at this II, retry flat
      // before escalating.
      ims.candidate_cells = nullptr;
      return ImsPlaceRoute(dfg, arch, mrrg, ii, order, ims);
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeHierarchicalMapper() {
  return std::make_unique<HierarchicalMapper>();
}

}  // namespace cgra
