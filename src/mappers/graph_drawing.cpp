// Graph-drawing-based spatial mapper, after Yoon et al. [23].
//
// Treats placement as a drawing problem: a force-directed layout of
// the DFG pulls connected ops together; the continuous positions are
// then legalised onto the PE grid with a minimum-cost assignment
// (Hungarian), with per-pair costs mixing geometric distance and
// capability feasibility. Scheduling is ASAP; routing uses the real
// router. Retries with fresh layouts on failure.
#include <algorithm>
#include <cmath>
#include <cstddef>

#include "graph/layout.hpp"
#include "graph/matching.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "support/rng.hpp"

namespace cgra {
namespace {

class GraphDrawingMapper final : public Mapper {
 public:
  std::string name() const override { return "graph-drawing"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kSpatial; }
  std::string lineage() const override {
    return "graph drawing based spatial mapping (Yoon et al. [23])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    if (Status s = CheckMappable(dfg, arch); !s.ok()) return s.error();
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);

    std::vector<OpId> mappable;
    for (OpId op = 0; op < dfg.num_ops(); ++op) {
      if (!arch.IsFolded(dfg.op(op).opcode)) mappable.push_back(op);
    }
    if (static_cast<int>(mappable.size()) > arch.num_cells()) {
      return Error::Unmappable("more ops than cells: spatial mapping impossible");
    }

    // The drawing operates on the compacted op graph.
    Digraph g(static_cast<int>(mappable.size()));
    std::vector<int> compact(static_cast<size_t>(dfg.num_ops()), -1);
    for (size_t i = 0; i < mappable.size(); ++i) compact[static_cast<size_t>(mappable[i])] = static_cast<int>(i);
    for (const DfgEdge& e : dfg.Edges(true)) {
      if (compact[static_cast<size_t>(e.from)] >= 0 && compact[static_cast<size_t>(e.to)] >= 0) {
        g.AddEdge(compact[static_cast<size_t>(e.from)], compact[static_cast<size_t>(e.to)]);
      }
    }

    const auto est = ModuloAsap(dfg, arch, /*ii=*/1);
    if (est.empty()) return Error::Unmappable("recurrences infeasible at II=1");

    // All layout restarts are one II=1 attempt from the trace's point
    // of view.
    return ObservedAttempt(*this, options, /*ii=*/1, [&]() -> Result<Mapping> {
    Error last = Error::Unmappable("no layout attempt succeeded");
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (ShouldAbort(options)) {
        return Error::ResourceLimit("graph-drawing deadline expired");
      }
      LayoutOptions lo;
      lo.area_width = arch.cols();
      lo.area_height = arch.rows();
      const auto pos = ForceDirectedLayout(g, rng, lo);

      // Legalise: assignment ops -> cells minimising distance; forbid
      // incompatible pairs.
      std::vector<std::vector<std::int64_t>> cost(
          mappable.size(),
          std::vector<std::int64_t>(static_cast<size_t>(arch.num_cells()), 0));
      for (size_t i = 0; i < mappable.size(); ++i) {
        for (int c = 0; c < arch.num_cells(); ++c) {
          if (!arch.CanExecute(c, dfg.op(mappable[i]))) {
            cost[i][static_cast<size_t>(c)] = kInfeasibleAssign;
            continue;
          }
          const double dx = pos[i].x - (arch.ColOf(c) + 0.5);
          const double dy = pos[i].y - (arch.RowOf(c) + 0.5);
          cost[i][static_cast<size_t>(c)] =
              static_cast<std::int64_t>(100.0 * std::sqrt(dx * dx + dy * dy));
        }
      }
      const std::vector<int> assign = HungarianAssign(cost);
      if (assign.empty()) {
        last = Error::Unmappable("no feasible legalisation of the drawing");
        continue;
      }

      // Place in ASAP order on the assigned cells and route for real.
      PlaceRouteState state(dfg, arch, mrrg, /*ii=*/1);
      std::vector<OpId> order = mappable;
      std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
        return est[static_cast<size_t>(a)] != est[static_cast<size_t>(b)]
                   ? est[static_cast<size_t>(a)] < est[static_cast<size_t>(b)]
                   : a < b;
      });
      bool ok = true;
      for (OpId op : order) {
        const int cell = assign[static_cast<size_t>(compact[static_cast<size_t>(op)])];
        // Earliest time compatible with already-placed producers.
        int t = est[static_cast<size_t>(op)];
        for (const DfgEdge& e : dfg.Edges(true)) {
          if (e.to != op || e.from == op) continue;
          if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
          if (state.IsPlaced(e.from)) {
            t = std::max(t, state.placement(e.from).time + 1 - e.distance);
          }
        }
        bool placed = false;
        for (int dt = 0; dt <= options.extra_slack && !placed; ++dt) {
          placed = state.TryPlace(op, cell, t + dt);
        }
        if (!placed) {
          ok = false;
          last = Error::Unmappable("drawing legalisation not routable");
          break;
        }
      }
      if (ok) return state.Finalize();
    }
    return last;
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeGraphDrawingMapper() {
  return std::make_unique<GraphDrawingMapper>();
}

}  // namespace cgra
