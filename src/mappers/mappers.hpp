// The mapper collection: one representative implementation per cell of
// the survey's Table I. See DESIGN.md §3 for the coverage map and the
// lineage of each algorithm.
#pragma once

#include <cstddef>
#include <memory>

#include "mapping/mapper.hpp"

namespace cgra {

// ---- heuristics -------------------------------------------------------------
std::unique_ptr<Mapper> MakeSpatialGreedyMapper();      ///< spatial, greedy list
std::unique_ptr<Mapper> MakeGraphDrawingMapper();       ///< spatial, Yoon [23]
std::unique_ptr<Mapper> MakeIterativeModuloScheduler(); ///< temporal, Rau IMS / Mei [61]
std::unique_ptr<Mapper> MakeUltraFastScheduler();       ///< temporal, Lee&Carlson [16]
std::unique_ptr<Mapper> MakeEdgeCentricMapper();        ///< temporal, EMS [37]
std::unique_ptr<Mapper> MakeRampMapper();               ///< temporal, RAMP [38]
std::unique_ptr<Mapper> MakeEpimapStyleMapper();        ///< binding, EPIMap [28]
std::unique_ptr<Mapper> MakeBackwardBeamMapper();       ///< binding, Peyret [47]/Das [24]
std::unique_ptr<Mapper> MakeCrimsonScheduler();         ///< scheduling, CRIMSON [52]
std::unique_ptr<Mapper> MakeHierarchicalMapper();       ///< temporal, HiMap [26]

// ---- meta-heuristics ---------------------------------------------------------
std::unique_ptr<Mapper> MakeAnnealingSpatialMapper();   ///< spatial SA, SNAFU/DSAGEN
std::unique_ptr<Mapper> MakeDrescAnnealingMapper();     ///< temporal SA, DRESC [22]
std::unique_ptr<Mapper> MakeAnnealingBinder();          ///< binding SA, SPR [49]
std::unique_ptr<Mapper> MakeGeneticSpatialMapper();     ///< spatial GA, GenMap [19]
std::unique_ptr<Mapper> MakeQeaBinder();                ///< binding QEA, Lee [48]

// ---- exact: ILP / branch & bound ---------------------------------------------
std::unique_ptr<Mapper> MakeIlpSpatialMapper();         ///< Chin&Anderson [34]
std::unique_ptr<Mapper> MakeIlpTemporalMapper();        ///< Brenner [41]
std::unique_ptr<Mapper> MakeIlpBinder();                ///< Guo [15]
std::unique_ptr<Mapper> MakeIlpScheduler();             ///< Mu [53]
std::unique_ptr<Mapper> MakeBranchBoundMapper();        ///< DNestMap [42] + pruning [24]

// ---- exact: CSP ----------------------------------------------------------------
std::unique_ptr<Mapper> MakeCpTemporalMapper();         ///< Raffin [43]
std::unique_ptr<Mapper> MakeSatTemporalMapper();        ///< Miyasaka [17]
std::unique_ptr<Mapper> MakeSmtTemporalMapper();        ///< Donovick [44]

// ---- test fixtures (registry Find-only; never enumerated) -------------------
std::unique_ptr<Mapper> MakeThrowingMapper();           ///< throws from Map()
// The `crashy` family: survivable only behind the process sandbox
// (EngineOptions::isolation); the chaos harness races them by name.
std::unique_ptr<Mapper> MakeSegvMapper();               ///< SIGSEGVs in Map()
std::unique_ptr<Mapper> MakeSpinMapper();               ///< never returns
std::unique_ptr<Mapper> MakeAllocBombMapper();          ///< allocates forever

}  // namespace cgra
