// Population-based meta-heuristics (Table I "population-based" column).
//
//  * ga-spatial — GenMap [19]: a genetic algorithm over placement
//    genomes (one cell gene per op) for spatial fabrics; tournament
//    selection, uniform crossover, per-gene mutation, elitism.
//  * qea-bind  — Lee et al. [48]: quantum-inspired evolutionary
//    algorithm for binding under a fixed modulo schedule; a probability
//    vector per op over candidate cells is sampled ("observed") and
//    rotated toward the best individual each generation.
#include <algorithm>
#include <cstddef>
#include <optional>

#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "support/rng.hpp"
#include "telemetry/search_log.hpp"

namespace cgra {
namespace {

// Scores a binding genome by greedy realization: ops are placed in
// schedule order on their genome cells (sliding up to `slide_slack`
// cycles when allowed); unplaceable ops are skipped so the fitness
// stays informative ("how much of the DFG this genome maps").
struct GenomeEval {
  int placed = 0;
  int route_steps = 0;
  std::optional<Mapping> mapping;

  // Higher is better.
  double Fitness(int total_ops) const {
    return placed * 1000.0 - route_steps + (placed == total_ops ? 1e6 : 0.0);
  }
};

GenomeEval EvaluateGenome(const Dfg& dfg, const Architecture& arch,
                          const Mrrg& mrrg, int ii,
                          const std::vector<int>& cell_of_op,
                          const std::vector<int>& times, int slide_slack) {
  PlaceRouteState state(dfg, arch, mrrg, ii);
  std::vector<OpId> order = state.MappableOps();
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return times[static_cast<size_t>(a)] != times[static_cast<size_t>(b)]
               ? times[static_cast<size_t>(a)] < times[static_cast<size_t>(b)]
               : a < b;
  });
  GenomeEval eval;
  int steps = 0;
  for (OpId op : order) {
    const int cell = cell_of_op[static_cast<size_t>(op)];
    bool placed = false;
    for (int dt = 0; dt <= slide_slack && !placed; ++dt) {
      placed = state.TryPlace(op, cell, times[static_cast<size_t>(op)] + dt);
    }
    if (placed) {
      ++eval.placed;
      steps += state.last_route_steps();
    }
  }
  eval.route_steps = steps;
  if (eval.placed == static_cast<int>(state.MappableOps().size())) {
    eval.mapping = state.Finalize();
  }
  return eval;
}

class GeneticSpatialMapper final : public Mapper {
 public:
  std::string name() const override { return "ga-spatial"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kMetaPopulation;
  }
  MappingKind kind() const override { return MappingKind::kSpatial; }
  std::string lineage() const override {
    return "genetic algorithm for spatial mapping (GenMap, Kojima et al. [19])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    if (Status s = CheckMappable(dfg, arch); !s.ok()) return s.error();
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);
    const int ii = 1;
    const auto times = ModuloAsap(dfg, arch, ii);
    if (times.empty()) return Error::Unmappable("recurrences infeasible at II=1");
    const auto candidates = CandidateCellTable(dfg, arch);
    const int n = dfg.num_ops();

    constexpr int kPopulation = 24;
    constexpr int kGenerations = 60;
    constexpr int kTournament = 3;
    constexpr double kMutate = 0.15;

    auto random_genome = [&] {
      std::vector<int> g(static_cast<size_t>(n), -1);
      for (OpId op = 0; op < n; ++op) {
        const auto& cells = candidates[static_cast<size_t>(op)];
        if (!cells.empty()) g[static_cast<size_t>(op)] = cells[rng.NextIndex(cells.size())];
      }
      return g;
    };

    std::vector<std::vector<int>> pop;
    std::vector<GenomeEval> evals;
    std::vector<double> fitness;
    const int total_ops = [&] {
      int k = 0;
      for (OpId op = 0; op < n; ++op) {
        if (!arch.IsFolded(dfg.op(op).opcode)) ++k;
      }
      return k;
    }();

    for (int i = 0; i < kPopulation; ++i) {
      pop.push_back(random_genome());
      evals.push_back(EvaluateGenome(dfg, arch, mrrg, ii, pop.back(), times,
                                     options.extra_slack));
      if (evals.back().mapping) return *evals.back().mapping;
      fitness.push_back(evals.back().Fitness(total_ops));
    }

    for (int gen = 0; gen < kGenerations; ++gen) {
      if (ShouldAbort(options)) {
        return Error::ResourceLimit("GA deadline expired");
      }
      auto tournament = [&]() -> const std::vector<int>& {
        size_t best = rng.NextIndex(pop.size());
        for (int k = 1; k < kTournament; ++k) {
          const size_t j = rng.NextIndex(pop.size());
          if (fitness[j] > fitness[best]) best = j;
        }
        return pop[best];
      };
      // Elite survives; the rest is bred.
      const size_t elite = static_cast<size_t>(
          std::max_element(fitness.begin(), fitness.end()) - fitness.begin());
      telemetry::SearchRecordCost(gen, fitness[elite]);
      std::vector<std::vector<int>> next{pop[elite]};
      while (next.size() < pop.size()) {
        const auto& a = tournament();
        const auto& b = tournament();
        std::vector<int> child(a.size());
        for (size_t g = 0; g < child.size(); ++g) {
          child[g] = rng.NextBool() ? a[g] : b[g];
          if (rng.NextDouble() < kMutate) {
            const auto& cells = candidates[g];
            if (!cells.empty()) child[g] = cells[rng.NextIndex(cells.size())];
          }
        }
        next.push_back(std::move(child));
      }
      pop = std::move(next);
      for (size_t i = 0; i < pop.size(); ++i) {
        evals[i] = EvaluateGenome(dfg, arch, mrrg, ii, pop[i], times,
                                  options.extra_slack);
        if (evals[i].mapping) return *evals[i].mapping;
        fitness[i] = evals[i].Fitness(total_ops);
      }
    }
    return Error::Unmappable("GA exhausted its generations without a full mapping");
  }
};

class QeaBinder final : public Mapper {
 public:
  std::string name() const override { return "qea-bind"; }
  TechniqueClass technique() const override {
    return TechniqueClass::kMetaPopulation;
  }
  MappingKind kind() const override { return MappingKind::kBinding; }
  std::string lineage() const override {
    return "quantum-inspired evolutionary binding (Lee, Choi & Dutt [48])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);
    const auto candidates = CandidateCellTable(dfg, arch);
    const int n = dfg.num_ops();
    constexpr int kObservations = 16;
    constexpr int kGenerations = 50;
    constexpr double kRotate = 0.25;  // probability mass shifted per gen

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto times = ModuloAsap(dfg, arch, ii);
      if (times.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      const int total_ops = [&] {
        int k = 0;
        for (OpId op = 0; op < n; ++op) {
          if (!arch.IsFolded(dfg.op(op).opcode)) ++k;
        }
        return k;
      }();
      // Quantum registers: probability per (op, candidate cell index).
      std::vector<std::vector<double>> q(static_cast<size_t>(n));
      for (OpId op = 0; op < n; ++op) {
        const size_t k = candidates[static_cast<size_t>(op)].size();
        if (k > 0) q[static_cast<size_t>(op)].assign(k, 1.0 / static_cast<double>(k));
      }
      auto observe = [&] {
        std::vector<int> genome(static_cast<size_t>(n), -1);
        for (OpId op = 0; op < n; ++op) {
          const auto& probs = q[static_cast<size_t>(op)];
          if (probs.empty()) continue;
          double r = rng.NextDouble(), acc = 0;
          size_t pick = probs.size() - 1;
          for (size_t i = 0; i < probs.size(); ++i) {
            acc += probs[i];
            if (r < acc) {
              pick = i;
              break;
            }
          }
          genome[static_cast<size_t>(op)] = candidates[static_cast<size_t>(op)][pick];
        }
        return genome;
      };

      std::vector<int> best_genome;
      double best_fitness = -1e18;
      for (int gen = 0; gen < kGenerations; ++gen) {
        if (ShouldAbort(options)) {
          return Error::ResourceLimit("QEA deadline expired");
        }
        for (int o = 0; o < kObservations; ++o) {
          const auto genome = observe();
          // A little slide slack lets the greedy realization repair
          // local slot congestion the fixed modulo-ASAP schedule has.
          const auto eval = EvaluateGenome(dfg, arch, mrrg, ii, genome, times,
                                           options.extra_slack);
          if (eval.mapping) return *eval.mapping;
          const double f = eval.Fitness(total_ops);
          if (f > best_fitness) {
            best_fitness = f;
            best_genome = genome;
          }
        }
        telemetry::SearchRecordCost(gen, best_fitness);
        // Rotation: shift probability mass toward the best genome.
        for (OpId op = 0; op < n; ++op) {
          auto& probs = q[static_cast<size_t>(op)];
          if (probs.empty() || best_genome.empty()) continue;
          const auto& cells = candidates[static_cast<size_t>(op)];
          const auto it = std::find(cells.begin(), cells.end(),
                                    best_genome[static_cast<size_t>(op)]);
          if (it == cells.end()) continue;
          const size_t target = static_cast<size_t>(it - cells.begin());
          for (size_t i = 0; i < probs.size(); ++i) {
            probs[i] *= (1.0 - kRotate);
          }
          probs[target] += kRotate;
        }
      }
      return Error::Unmappable("QEA exhausted its generations at this II");
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeGeneticSpatialMapper() {
  return std::make_unique<GeneticSpatialMapper>();
}
std::unique_ptr<Mapper> MakeQeaBinder() {
  return std::make_unique<QeaBinder>();
}

}  // namespace cgra
