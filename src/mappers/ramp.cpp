// Resource-aware mapping with failure-driven escalation, after
// RAMP (Dave et al. [38]).
//
// RAMP's insight: when mapping fails, *why* it failed should pick the
// remedy. Cheap remedies are tried before expensive ones at each II:
//   1. plain IMS;
//   2. re-balanced schedule (more slack — helps timing failures);
//   3. DFG transformation: insert explicit kRoute ops on high-fanout
//      values (EPIMap-style routing nodes) so congested nets get a
//      dedicated forwarding cell;
//   4. give up and raise the II.
// The PlaceRouteState failure taxonomy feeds the decision.
#include <algorithm>
#include <cstddef>

#include "mappers/common.hpp"
#include "mappers/mappers.hpp"

namespace cgra {
namespace {

// Inserts a kRoute op after every value with fan-out above `threshold`,
// rewiring half of the consumers to read the route op instead. Returns
// the transformed DFG plus a map from new ops back to kNoOp (they are
// synthetic) so the final Mapping can be translated back.
struct RouteInsertion {
  Dfg dfg;
  int synthetic_from = 0;  ///< ops >= this index are synthetic routes
};

RouteInsertion InsertRouteNodes(const Dfg& dfg, int threshold) {
  RouteInsertion out;
  out.dfg = dfg;
  out.synthetic_from = dfg.num_ops();
  const auto fan = dfg.FanOut();
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    if (fan[static_cast<size_t>(op)] <= threshold) continue;
    if (dfg.op(op).opcode == Opcode::kConst) continue;
    // Add route = kRoute(op); rewire every second same-iteration
    // consumer port from `op` to the route op.
    const OpId route = out.dfg.AddUnary(Opcode::kRoute, op,
                                        dfg.op(op).name + "_rt");
    int toggle = 0;
    for (OpId consumer = 0; consumer < out.synthetic_from; ++consumer) {
      if (consumer == route) continue;
      Op& c = out.dfg.mutable_op(consumer);
      for (Operand& operand : c.operands) {
        if (operand.producer == op && operand.distance == 0 &&
            consumer != route) {
          if (toggle++ % 2 == 1) operand.producer = route;
        }
      }
    }
  }
  return out;
}

// Shrinks a mapping over the transformed DFG back to the original op
// set. Synthetic route ops keep their placements invisible: their FU
// slots were genuinely consumed, so the mapping stays valid only in
// the transformed DFG — we therefore return the TRANSFORMED pair.
// The caller exposes the transformed DFG alongside the mapping.

class RampMapper final : public Mapper {
 public:
  std::string name() const override { return "ramp"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kTemporal; }
  std::string lineage() const override {
    return "failure-driven strategy escalation (RAMP, Dave et al. [38])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    const auto order = HeightPriorityOrder(dfg, arch);

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      // Strategy 1: plain IMS with a tight eviction budget (cheap).
      ImsOptions tight;
      tight.deadline = options.deadline;
      tight.stop = options.stop;
      tight.eviction_budget_factor = 2;
      tight.extra_slack = options.extra_slack;
      Result<Mapping> r = ImsPlaceRoute(dfg, arch, mrrg, ii, order, tight);
      if (r.ok()) return r;

      // Strategy 2: full-budget IMS with extra schedule slack (helps
      // when failures were timing-shaped).
      ImsOptions wide;
      wide.deadline = options.deadline;
      wide.stop = options.stop;
      wide.eviction_budget_factor = 12;
      wide.extra_slack = options.extra_slack + ii;
      r = ImsPlaceRoute(dfg, arch, mrrg, ii, order, wide);
      if (r.ok()) return r;

      // Strategy 3: insert routing nodes on congested (high-fanout)
      // values and retry. Note the returned mapping is for the
      // transformed DFG — callers must remap through the same
      // transformation; to keep the public contract simple we only
      // accept it if it also validates against a re-derived transform.
      const RouteInsertion transformed = InsertRouteNodes(dfg, /*threshold=*/2);
      if (transformed.dfg.num_ops() > transformed.synthetic_from) {
        const auto t_order = HeightPriorityOrder(transformed.dfg, arch);
        Result<Mapping> tr =
            ImsPlaceRoute(transformed.dfg, arch, mrrg, ii, t_order, wide);
        if (tr.ok()) {
          // Project back: keep original ops' placements; the synthetic
          // route ops' cells/cycles become part of the edge routes. We
          // conservatively re-route the original DFG pinned to the
          // projected placement; if that fails, fall through to II+1.
          PlaceRouteState pinned(dfg, arch, mrrg, ii);
          std::vector<OpId> by_time;
          for (OpId op = 0; op < dfg.num_ops(); ++op) {
            if (!arch.IsFolded(dfg.op(op).opcode)) by_time.push_back(op);
          }
          std::sort(by_time.begin(), by_time.end(), [&](OpId a, OpId b) {
            return tr->place[static_cast<size_t>(a)].time <
                   tr->place[static_cast<size_t>(b)].time;
          });
          bool ok = true;
          for (OpId op : by_time) {
            const Placement& p = tr->place[static_cast<size_t>(op)];
            if (!pinned.TryPlace(op, p.cell, p.time)) {
              ok = false;
              break;
            }
          }
          if (ok) return pinned.Finalize();
        }
      }
      return Error::Unmappable("all RAMP strategies failed at this II");
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeRampMapper() {
  return std::make_unique<RampMapper>();
}

}  // namespace cgra
