#include "mappers/common.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "graph/algos.hpp"
#include "mapping/perf.hpp"
#include "support/str.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace cgra {
namespace {

/// Attempt-level metrics, registered once. These are the numbers the
/// batch report's metrics snapshot and the Prometheus dump aggregate
/// across every mapper in the process (docs/OBSERVABILITY.md).
struct AttemptMetrics {
  telemetry::Counter& ok = telemetry::MetricsRegistry::Global().GetCounter(
      "cgra_attempt_ok_total", "II attempts that produced a mapping");
  telemetry::Counter& fail = telemetry::MetricsRegistry::Global().GetCounter(
      "cgra_attempt_fail_total", "II attempts that failed");
  telemetry::Histogram& seconds =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "cgra_attempt_seconds",
          {0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0},
          "wall time of one II attempt");
  telemetry::Histogram& ii = telemetry::MetricsRegistry::Global().GetHistogram(
      "cgra_attempt_ii", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32},
      "achieved II of successful attempts");
  telemetry::Histogram& router_queries =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "cgra_attempt_router_queries",
          {10, 100, 1000, 10000, 100000, 1000000},
          "router queries issued by one II attempt");
};

AttemptMetrics& Metrics() {
  static AttemptMetrics m;
  return m;
}

void ObserveAttemptMetrics(bool ok, int ii, double seconds,
                           const PerfCounters& perf) {
  AttemptMetrics& m = Metrics();
  (ok ? m.ok : m.fail).Add(1);
  m.seconds.Observe(seconds);
  if (ok) m.ii.Observe(static_cast<double>(ii));
  m.router_queries.Observe(static_cast<double>(perf.router_queries));
}

// Dependence edges that constrain timing (edges from folded producers
// do not: immediates are available at every cycle).
std::vector<DfgEdge> TimingEdges(const Dfg& dfg, const Architecture& arch) {
  std::vector<DfgEdge> out;
  for (const DfgEdge& e : dfg.Edges(/*include_pred=*/true)) {
    if (!arch.IsFolded(dfg.op(e.from).opcode)) out.push_back(e);
  }
  return out;
}

}  // namespace

MiiBounds ComputeMii(const Dfg& dfg, const Architecture& arch, int max_ii) {
  MiiBounds b;
  // Resource MII per capability class.
  int n_mem_ops = 0, n_io_ops = 0, n_mul_ops = 0, n_alu_ops = 0;
  for (const Op& op : dfg.ops()) {
    if (arch.IsFolded(op.opcode)) continue;
    if (IsMemoryOp(op.opcode)) {
      ++n_mem_ops;
    } else if (IsIoOp(op.opcode)) {
      ++n_io_ops;
    } else if (op.opcode == Opcode::kMul || op.opcode == Opcode::kDiv) {
      ++n_mul_ops;
    } else {
      ++n_alu_ops;
    }
  }
  int mem_cells = 0, io_cells = 0, mul_cells = 0, alu_cells = 0;
  for (int c = 0; c < arch.num_cells(); ++c) {
    const CellCaps& caps = arch.caps(c);
    if (caps.mem) ++mem_cells;
    if (caps.io) ++io_cells;
    if (caps.mul) ++mul_cells;
    if (caps.alu) ++alu_cells;
  }
  auto class_mii = [](int ops, int cells) {
    if (ops == 0) return 1;
    if (cells == 0) return 1 << 20;  // impossible; caller surfaces it
    return (ops + cells - 1) / cells;
  };
  // Memory throughput is capped by bank ports as well as LSU cells.
  mem_cells = std::min(mem_cells,
                       arch.params().num_banks * arch.params().bank_ports);
  b.res_mii = std::max({class_mii(n_mem_ops, mem_cells),
                        class_mii(n_io_ops, io_cells),
                        class_mii(n_mul_ops, mul_cells),
                        // Every op ultimately needs an FU slot.
                        class_mii(n_mem_ops + n_io_ops + n_mul_ops + n_alu_ops,
                                  arch.num_cells())});

  // Recurrence MII over timing edges.
  const auto edges = TimingEdges(dfg, arch);
  Digraph g(dfg.num_ops());
  std::vector<int> lat, dist;
  for (const DfgEdge& e : edges) {
    g.AddEdge(e.from, e.to);
    lat.push_back(1);
    dist.push_back(e.distance);
  }
  b.rec_mii = RecurrenceMii(g, lat, dist, max_ii);
  return b;
}

std::vector<int> ModuloAsap(const Dfg& dfg, const Architecture& arch, int ii) {
  const auto edges = TimingEdges(dfg, arch);
  const int n = dfg.num_ops();
  std::vector<int> t(static_cast<size_t>(n), 0);
  for (int pass = 0; pass <= n; ++pass) {
    bool changed = false;
    for (const DfgEdge& e : edges) {
      const int lower = t[static_cast<size_t>(e.from)] + 1 - ii * e.distance;
      if (lower > t[static_cast<size_t>(e.to)]) {
        t[static_cast<size_t>(e.to)] = lower;
        changed = true;
      }
    }
    if (!changed) return t;
  }
  return {};  // positive cycle: recurrence infeasible at this II
}

std::vector<OpId> HeightPriorityOrder(const Dfg& dfg, const Architecture& arch) {
  // Height = longest same-iteration path to any sink (timing edges).
  Digraph g(dfg.num_ops());
  std::vector<std::int64_t> w;
  for (const DfgEdge& e : dfg.Edges(true)) {
    if (e.distance > 0) continue;
    if (arch.IsFolded(dfg.op(e.from).opcode)) continue;
    g.AddEdge(e.from, e.to);
    w.push_back(1);
  }
  const auto height = DagLongestPathToSinks(g, w);
  std::vector<OpId> order;
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    if (!arch.IsFolded(dfg.op(op).opcode)) order.push_back(op);
  }
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    if (height[static_cast<size_t>(a)] != height[static_cast<size_t>(b)]) {
      return height[static_cast<size_t>(a)] > height[static_cast<size_t>(b)];
    }
    return a < b;
  });
  return order;
}

std::vector<std::vector<int>> CandidateCellTable(const Dfg& dfg,
                                                 const Architecture& arch,
                                                 const std::vector<int>* region) {
  std::vector<std::vector<int>> table(static_cast<size_t>(dfg.num_ops()));
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    if (arch.IsFolded(dfg.op(op).opcode)) continue;
    const auto& pool = region ? *region : [&] {
      static thread_local std::vector<int> all;
      all.clear();
      for (int c = 0; c < arch.num_cells(); ++c) all.push_back(c);
      return all;
    }();
    for (int c : pool) {
      if (arch.CanExecute(c, dfg.op(op))) {
        table[static_cast<size_t>(op)].push_back(c);
      }
    }
  }
  return table;
}

Status CheckMappable(const Dfg& dfg, const Architecture& arch) {
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    const Op& o = dfg.op(op);
    if (arch.IsFolded(o.opcode)) continue;
    if (o.opcode == Opcode::kIterIdx && !arch.params().has_hw_loop) {
      return Error::Unmappable(StrFormat(
          "op %s needs the loop counter but the fabric has no hardware loop "
          "unit (lower kIterIdx first)",
          o.name.c_str()));
    }
    bool any = false;
    for (int c = 0; c < arch.num_cells(); ++c) {
      if (arch.CanExecute(c, o)) {
        any = true;
        break;
      }
    }
    if (!any) {
      return Error::Unmappable(
          StrFormat("no cell can execute op %s (%s)", o.name.c_str(),
                    std::string(OpName(o.opcode)).c_str()));
    }
  }
  return Status::Ok();
}

Result<Mapping> ImsPlaceRoute(const Dfg& dfg, const Architecture& arch,
                              const Mrrg& mrrg, int ii,
                              const std::vector<OpId>& order,
                              const ImsOptions& options) {
  telemetry::Span phase_span("phase.place_route");
  const std::vector<int> est = [&] {
    telemetry::Span schedule_span("phase.schedule");
    return ModuloAsap(dfg, arch, ii);
  }();
  if (est.empty()) {
    return Error::Unmappable(StrFormat("recurrences infeasible at II=%d", ii));
  }
  PlaceRouteState state(dfg, arch, mrrg, ii);
  const auto candidates = options.candidate_cells
                              ? *options.candidate_cells
                              : CandidateCellTable(dfg, arch);

  // Rank = position in `order` (requeued ops keep their rank).
  std::vector<int> rank(static_cast<size_t>(dfg.num_ops()), 1 << 30);
  for (size_t i = 0; i < order.size(); ++i) rank[static_cast<size_t>(order[i])] = static_cast<int>(i);

  using QItem = std::pair<int, OpId>;  // (rank, op)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  std::vector<bool> queued(static_cast<size_t>(dfg.num_ops()), false);
  auto enqueue = [&](OpId op) {
    if (!queued[static_cast<size_t>(op)]) {
      queued[static_cast<size_t>(op)] = true;
      queue.push({rank[static_cast<size_t>(op)], op});
    }
  };
  for (OpId op : order) enqueue(op);

  const std::vector<DfgEdge> edges = dfg.Edges(true);
  std::vector<std::vector<int>> edges_of(static_cast<size_t>(dfg.num_ops()));
  for (size_t e = 0; e < edges.size(); ++e) {
    edges_of[static_cast<size_t>(edges[e].from)].push_back(static_cast<int>(e));
    if (edges[e].to != edges[e].from) {
      edges_of[static_cast<size_t>(edges[e].to)].push_back(static_cast<int>(e));
    }
  }

  int budget = options.eviction_budget_factor * static_cast<int>(order.size()) + 16;
  // Per-op "schedule no earlier than" floor, advanced on repeated failure.
  std::vector<int> floor_time(est.begin(), est.end());

  while (!queue.empty()) {
    if (options.stop.StopRequested()) {
      return Error::ResourceLimit("IMS cancelled");
    }
    if (options.deadline.Expired()) {
      return Error::ResourceLimit("IMS deadline expired");
    }
    const OpId op = queue.top().second;
    queue.pop();
    queued[static_cast<size_t>(op)] = false;

    // Dynamic window from placed neighbours.
    int t0 = floor_time[static_cast<size_t>(op)];
    int ub = 1 << 30;
    std::vector<OpId> upper_blockers;
    for (int ei : edges_of[static_cast<size_t>(op)]) {
      const DfgEdge& e = edges[static_cast<size_t>(ei)];
      if (e.to == op && e.from != op && state.IsPlaced(e.from) &&
          !arch.IsFolded(dfg.op(e.from).opcode)) {
        t0 = std::max(t0, state.placement(e.from).time + 1 - ii * e.distance);
      }
      if (e.from == op && e.to != op && state.IsPlaced(e.to)) {
        const int limit = state.placement(e.to).time - 1 + ii * e.distance;
        if (limit < ub) ub = limit;
        if (limit < t0) upper_blockers.push_back(e.to);
      }
    }

    bool placed = false;
    if (t0 <= ub) {
      // Affinity-ordered candidate cells.
      std::vector<int> cells = candidates[static_cast<size_t>(op)];
      if (options.rng) options.rng->Shuffle(cells);
      std::vector<long long> affinity(cells.size(), 0);
      for (size_t i = 0; i < cells.size(); ++i) {
        for (int ei : edges_of[static_cast<size_t>(op)]) {
          const DfgEdge& e = edges[static_cast<size_t>(ei)];
          const OpId other = e.from == op ? e.to : e.from;
          if (other != op && state.IsPlaced(other)) {
            affinity[i] += arch.HopDistance(cells[i], state.placement(other).cell);
          }
        }
      }
      std::vector<size_t> idx(cells.size());
      for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      std::stable_sort(idx.begin(), idx.end(),
                       [&](size_t a, size_t b) { return affinity[a] < affinity[b]; });

      // Window: the classic II slots plus slack start cycles — routing
      // and spatial (II=1) fabrics need room to slide before evicting.
      const int window_end = std::min(ub, t0 + ii - 1 + options.extra_slack);
      for (int t = t0; t <= window_end && !placed; ++t) {
        for (size_t i : idx) {
          if (state.TryPlace(op, cells[i], t)) {
            placed = true;
            break;
          }
        }
      }
    }

    if (!placed) {
      if (--budget <= 0) {
        return Error::ResourceLimit(
            StrFormat("IMS eviction budget exhausted at II=%d", ii));
      }
      // Evict the placed neighbours (and upper-bound blockers) that box
      // this op in, then retry; if nothing to evict, slide the window.
      std::vector<OpId> evict = upper_blockers;
      for (int ei : edges_of[static_cast<size_t>(op)]) {
        const DfgEdge& e = edges[static_cast<size_t>(ei)];
        const OpId other = e.from == op ? e.to : e.from;
        if (other != op && state.IsPlaced(other) &&
            !arch.IsFolded(dfg.op(other).opcode)) {
          evict.push_back(other);
        }
      }
      std::sort(evict.begin(), evict.end());
      evict.erase(std::unique(evict.begin(), evict.end()), evict.end());
      if (evict.empty()) {
        // No neighbours to blame: the window itself is congested.
        floor_time[static_cast<size_t>(op)] += 1;
        const int max_start =
            *std::max_element(est.begin(), est.end()) + ii + options.extra_slack;
        if (floor_time[static_cast<size_t>(op)] > max_start) {
          return Error::Unmappable(
              StrFormat("op %s cannot be scheduled at II=%d",
                        dfg.op(op).name.c_str(), ii));
        }
      } else {
        for (OpId victim : evict) {
          state.Unplace(victim);
          enqueue(victim);
        }
      }
      enqueue(op);
    }
  }

  Mapping m = state.Finalize();
  return m;
}

Result<Mapping> BindAtFixedTimes(const Dfg& dfg, const Architecture& arch,
                                 const Mrrg& mrrg, int ii,
                                 const std::vector<int>& times,
                                 const Deadline& deadline, int node_budget,
                                 const StopToken& stop) {
  telemetry::Span phase_span("phase.bind");
  PlaceRouteState state(dfg, arch, mrrg, ii);
  std::vector<OpId> order = state.MappableOps();
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return times[static_cast<size_t>(a)] != times[static_cast<size_t>(b)]
               ? times[static_cast<size_t>(a)] < times[static_cast<size_t>(b)]
               : a < b;
  });
  const auto candidates = CandidateCellTable(dfg, arch);
  const auto edges = dfg.Edges(true);
  int budget = node_budget;
  bool timed_out = false;

  std::function<bool(size_t)> dfs = [&](size_t depth) -> bool {
    if (depth == order.size()) return true;
    if (--budget <= 0 || deadline.Expired() || stop.StopRequested()) {
      timed_out = true;
      return false;
    }
    const OpId op = order[depth];
    // Affinity order: cells near already-placed neighbours first.
    std::vector<int> cells = candidates[static_cast<size_t>(op)];
    std::vector<long long> affinity(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      for (const DfgEdge& e : edges) {
        OpId other = kNoOp;
        if (e.from == op && e.to != op) other = e.to;
        if (e.to == op && e.from != op) other = e.from;
        if (other == kNoOp) continue;
        if (state.IsPlaced(other)) {
          affinity[i] += arch.HopDistance(cells[i], state.placement(other).cell);
        }
      }
    }
    std::vector<size_t> idx(cells.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&](size_t a, size_t b) { return affinity[a] < affinity[b]; });
    for (size_t i : idx) {
      if (state.TryPlace(op, cells[i], times[static_cast<size_t>(op)])) {
        if (dfs(depth + 1)) return true;
        state.Unplace(op);
        if (timed_out) return false;
      }
    }
    return false;
  };

  if (dfs(0)) return state.Finalize();
  if (timed_out) {
    return Error::ResourceLimit("fixed-time binding budget exhausted");
  }
  return Error::Unmappable("no binding exists for this schedule");
}

std::shared_ptr<const Mrrg> AcquireMrrg(const Architecture& arch,
                                        const MapperOptions& options) {
  if (options.mrrg_cache) return options.mrrg_cache->Get(arch);
  return std::make_shared<const Mrrg>(arch);
}

Result<Mapping> EscalateIi(const Mapper& self, const Dfg& dfg,
                           const Architecture& arch,
                           const MapperOptions& options,
                           const std::function<Result<Mapping>(int)>& attempt) {
  if (Status s = CheckMappable(dfg, arch); !s.ok()) return s.error();
  const int hi = std::min(options.max_ii, arch.MaxIi());
  const MiiBounds bounds = ComputeMii(dfg, arch, hi);
  const int lo = std::min(std::max(options.min_ii, bounds.mii()), hi);
  const std::string name = self.name();
  Error last = Error::Unmappable("no II attempted");
  for (int ii = lo; ii <= hi; ++ii) {
    if (options.stop.StopRequested()) {
      return Error::ResourceLimit("mapper cancelled during II escalation");
    }
    if (options.deadline.Expired()) {
      return Error::ResourceLimit("mapper deadline expired during II escalation");
    }
    MapEvent start;
    start.kind = MapEvent::Kind::kAttemptStart;
    start.mapper = name;
    start.ii = ii;
    NotifyObserver(options.observer, start);

    const PerfCounters perf_before = ThreadPerfCounters();
    WallTimer timer;
    // The span and the kAttemptDone event share one correlation id,
    // joining the MapTrace row to its trace spans.
    const std::uint64_t correlation =
        telemetry::Enabled() ? telemetry::NewCorrelation() : 0;
    // Search introspection: one collector per attempt, installed in the
    // thread-local slot for the attempt's extent only. Gated on an
    // observer being present — without one the log would have nowhere
    // to go.
    std::shared_ptr<telemetry::SearchLog> search;
    if (options.search_log && options.observer != nullptr &&
        telemetry::GetSearchDetail() != telemetry::SearchDetail::kOff) {
      search = std::make_shared<telemetry::SearchLog>();
    }
    Result<Mapping> r = [&] {
      telemetry::Span span(
          "attempt",
          telemetry::Enabled() ? StrFormat("%s ii=%d", name.c_str(), ii) : "",
          correlation);
      telemetry::ScopedSearchLog scoped(search.get());
      return attempt(ii);
    }();

    MapEvent done;
    done.kind = MapEvent::Kind::kAttemptDone;
    done.mapper = name;
    done.ii = ii;
    done.ok = r.ok();
    done.seconds = timer.Seconds();
    done.perf = ThreadPerfCounters() - perf_before;
    done.correlation = correlation;
    if (!r.ok()) {
      done.error_code = r.error().code;
      done.message = r.error().message;
    }
    if (search != nullptr && search->Any()) done.search = std::move(search);
    NotifyObserver(options.observer, done);
    ObserveAttemptMetrics(done.ok, ii, done.seconds, done.perf);

    if (r.ok()) return r;
    last = r.error();
  }
  return last;
}

Result<Mapping> ObservedAttempt(const Mapper& self,
                                const MapperOptions& options, int ii,
                                const std::function<Result<Mapping>()>& attempt) {
  if (options.stop.StopRequested()) {
    return Error::ResourceLimit("mapper cancelled before its attempt");
  }
  if (options.deadline.Expired()) {
    return Error::ResourceLimit("mapper deadline expired before its attempt");
  }
  MapEvent start;
  start.kind = MapEvent::Kind::kAttemptStart;
  start.mapper = self.name();
  start.ii = ii;
  NotifyObserver(options.observer, start);

  const PerfCounters perf_before = ThreadPerfCounters();
  WallTimer timer;
  const std::uint64_t correlation =
      telemetry::Enabled() ? telemetry::NewCorrelation() : 0;
  std::shared_ptr<telemetry::SearchLog> search;
  if (options.search_log && options.observer != nullptr &&
      telemetry::GetSearchDetail() != telemetry::SearchDetail::kOff) {
    search = std::make_shared<telemetry::SearchLog>();
  }
  Result<Mapping> r = [&] {
    telemetry::Span span(
        "attempt",
        telemetry::Enabled()
            ? StrFormat("%s ii=%d", self.name().c_str(), ii)
            : "",
        correlation);
    telemetry::ScopedSearchLog scoped(search.get());
    return attempt();
  }();

  MapEvent done;
  done.kind = MapEvent::Kind::kAttemptDone;
  done.mapper = self.name();
  done.ii = ii;
  done.ok = r.ok();
  done.seconds = timer.Seconds();
  done.perf = ThreadPerfCounters() - perf_before;
  done.correlation = correlation;
  if (!r.ok()) {
    done.error_code = r.error().code;
    done.message = r.error().message;
  }
  if (search != nullptr && search->Any()) done.search = std::move(search);
  NotifyObserver(options.observer, done);
  ObserveAttemptMetrics(done.ok, ii, done.seconds, done.perf);
  return r;
}

void NoteSolverSteps(const Mapper& self, const MapperOptions& options, int ii,
                     std::string_view what, std::int64_t steps) {
  if (!options.observer) return;
  MapEvent note;
  note.kind = MapEvent::Kind::kNote;
  note.mapper = self.name();
  note.ii = ii;
  note.message = std::string(what);
  note.solver_steps = steps;
  NotifyObserver(options.observer, note);
}

}  // namespace cgra
