// Spatial greedy mapper.
//
// The "straight forward mapping" of Fig. 3: every op gets its own cell
// (II = 1), iterations stream through the resulting pipeline. Ops are
// placed in dependence order on the capability-compatible cell with
// the best affinity (hop distance to already-placed neighbours), in
// the spirit of the constructive spatial mappers the survey cites for
// streaming workloads (ChordMap [31]).
#include <cstddef>

#include "graph/algos.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"

namespace cgra {
namespace {

class SpatialGreedyMapper final : public Mapper {
 public:
  std::string name() const override { return "greedy-spatial"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kSpatial; }
  std::string lineage() const override {
    return "constructive spatial placement (cf. ChordMap [31], SPKM [23])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    if (Status s = CheckMappable(dfg, arch); !s.ok()) return s.error();
    // Spatial mapping is modulo scheduling at II = 1: each cell hosts
    // exactly one op and is busy every cycle.
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    // Dependence-first order (topological over same-iteration edges),
    // so affinity information exists when each op is placed.
    const auto topo = TopologicalOrder(dfg.ToDigraph(/*include_carried=*/false));
    if (!topo) return Error::InvalidArgument("DFG has a same-iteration cycle");
    std::vector<OpId> order;
    for (OpId op : *topo) {
      if (!arch.IsFolded(dfg.op(op).opcode)) order.push_back(op);
    }
    ImsOptions ims;
    ims.deadline = options.deadline;
    ims.stop = options.stop;
    ims.extra_slack = options.extra_slack;
    return ObservedAttempt(*this, options, /*ii=*/1, [&]() {
      return ImsPlaceRoute(dfg, arch, mrrg, /*ii=*/1, order, ims);
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeSpatialGreedyMapper() {
  return std::make_unique<SpatialGreedyMapper>();
}

}  // namespace cgra
