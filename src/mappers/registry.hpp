// The mapper registry: the library's catalogue of Table-I techniques.
//
// Replaces the scan-the-vector idiom around MakeAllMappers() with real
// lookups: benches pick cells by technique class, the portfolio engine
// assembles race line-ups by name, and tests iterate in a stable,
// documented order (heuristics, then meta-heuristics, then exact ILP /
// B&B, then exact CSP — the column order of the survey's Table I).
//
// Instances are constructed once per registry and shared; Mapper
// implementations are stateless (Map() is const), so handing the same
// instance to concurrent callers is safe. MakeAllMappers() remains as
// a thin compatibility wrapper that builds fresh instances.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "mapping/mapper.hpp"

namespace cgra {

class MapperRegistry {
 public:
  /// Builds every shipped mapper in the stable Table-I order.
  MapperRegistry();

  MapperRegistry(const MapperRegistry&) = delete;
  MapperRegistry& operator=(const MapperRegistry&) = delete;

  /// The process-wide shared registry (constructed on first use;
  /// thread-safe per C++ magic statics).
  static const MapperRegistry& Global();

  /// Lookup by Mapper::name() ("ims", "sat", "bnb", ...); nullptr when
  /// unknown. Also resolves the test fixtures ("throwing"), which are
  /// Find-only: they never appear in All()/ByTechnique()/ByKind() or
  /// the iteration order, so benches and portfolio sweeps cannot pick
  /// one up by accident.
  const Mapper* Find(std::string_view name) const;

  /// All mappers of one Table-I solution-strategy column, in stable
  /// order.
  std::vector<const Mapper*> ByTechnique(TechniqueClass technique) const;

  /// All mappers of one Table-I problem-slice row, in stable order.
  std::vector<const Mapper*> ByKind(MappingKind kind) const;

  /// Every mapper, in stable order.
  std::vector<const Mapper*> All() const;

  std::size_t size() const { return mappers_.size(); }
  const Mapper& at(std::size_t i) const { return *mappers_[i]; }

  // Stable iteration (range-for over `const Mapper&`).
  class const_iterator {
   public:
    explicit const_iterator(
        std::vector<std::unique_ptr<Mapper>>::const_iterator it)
        : it_(it) {}
    const Mapper& operator*() const { return **it_; }
    const Mapper* operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }

   private:
    std::vector<std::unique_ptr<Mapper>>::const_iterator it_;
  };
  const_iterator begin() const { return const_iterator(mappers_.begin()); }
  const_iterator end() const { return const_iterator(mappers_.end()); }

 private:
  std::vector<std::unique_ptr<Mapper>> mappers_;
  std::vector<std::unique_ptr<Mapper>> fixtures_;  ///< Find-only test doubles
};

}  // namespace cgra
