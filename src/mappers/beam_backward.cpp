// Backward simultaneous scheduling/binding with stochastically pruned
// partial solutions, after Peyret et al. [47] and Das et al. [24].
//
// Ops are mapped from the outputs backward (consumers first), so every
// placement decision immediately knows where its consumers sit and can
// bind close to them. All partial solutions live in a beam; when the
// beam overflows, the best ones survive deterministically and ONE
// survivor is chosen at random — the [24] trick that keeps the
// population diverse while bounding its size ("the partial solutions
// are stochastically pruned to keep under control their number").
#include <algorithm>
#include <cstddef>

#include "graph/algos.hpp"
#include "mappers/common.hpp"
#include "mappers/mappers.hpp"
#include "support/rng.hpp"

namespace cgra {
namespace {

class BackwardBeamMapper final : public Mapper {
 public:
  std::string name() const override { return "bwd-beam"; }
  TechniqueClass technique() const override { return TechniqueClass::kHeuristic; }
  MappingKind kind() const override { return MappingKind::kBinding; }
  std::string lineage() const override {
    return "backward simultaneous scheduling/binding with stochastic "
           "pruning (Peyret et al. [47], Das et al. [24])";
  }

  Result<Mapping> Map(const Dfg& dfg, const Architecture& arch,
                      const MapperOptions& options) const override {
    const auto mrrg_ref = AcquireMrrg(arch, options);
    const Mrrg& mrrg = *mrrg_ref;
    Rng rng(options.seed);
    const auto candidates = CandidateCellTable(dfg, arch);
    constexpr int kBeamWidth = 6;
    constexpr int kExpansionsPerState = 10;

    // Reverse topological order (outputs first).
    const auto topo = TopologicalOrder(dfg.ToDigraph(/*include_carried=*/false));
    if (!topo) return Error::InvalidArgument("DFG has a same-iteration cycle");
    std::vector<OpId> order;
    for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
      if (!arch.IsFolded(dfg.op(*it).opcode)) order.push_back(*it);
    }

    return EscalateIi(*this, dfg, arch, options, [&](int ii) -> Result<Mapping> {
      const auto est = ModuloAsap(dfg, arch, ii);
      if (est.empty()) {
        return Error::Unmappable("recurrences infeasible at this II");
      }
      // Going backward we anchor times at ALAP-style targets: critical
      // path length plus slack gives the output row.
      const int horizon =
          *std::max_element(est.begin(), est.end()) + options.extra_slack;

      struct State {
        PlaceRouteState prs;
        int route_steps = 0;
      };
      std::vector<State> beam;
      beam.push_back(State{PlaceRouteState(dfg, arch, mrrg, ii), 0});

      const auto edges = dfg.Edges(true);
      for (OpId op : order) {
        if (ShouldAbort(options)) {
          return Error::ResourceLimit("beam search deadline expired");
        }
        std::vector<State> next;
        for (State& s : beam) {
          // Time window: below every placed consumer, above ASAP.
          int hi = horizon;
          for (const DfgEdge& e : edges) {
            if (e.from != op || e.to == op) continue;
            if (s.prs.IsPlaced(e.to)) {
              hi = std::min(hi, s.prs.placement(e.to).time - 1 + ii * e.distance);
            }
          }
          const int lo = std::max(est[static_cast<size_t>(op)], hi - ii + 1);
          int expansions = 0;
          // Prefer late times (backward construction packs upward).
          for (int t = hi; t >= lo && expansions < kExpansionsPerState; --t) {
            std::vector<int> cells = candidates[static_cast<size_t>(op)];
            rng.Shuffle(cells);
            for (int cell : cells) {
              if (expansions >= kExpansionsPerState) break;
              State child{s.prs, s.route_steps};  // copy the partial solution
              if (child.prs.TryPlace(op, cell, t)) {
                child.route_steps += child.prs.last_route_steps();
                next.push_back(std::move(child));
                ++expansions;
              }
            }
          }
        }
        if (next.empty()) {
          return Error::Unmappable("beam died: no placement for " +
                                   dfg.op(op).name);
        }
        // Deterministic survivors + one stochastic survivor [24].
        std::sort(next.begin(), next.end(), [](const State& a, const State& b) {
          return a.route_steps < b.route_steps;
        });
        if (static_cast<int>(next.size()) > kBeamWidth) {
          const size_t wild =
              kBeamWidth - 1 +
              rng.NextIndex(next.size() - (kBeamWidth - 1));
          std::swap(next[kBeamWidth - 1], next[wild]);
          next.erase(next.begin() + kBeamWidth, next.end());
        }
        beam = std::move(next);
      }
      return beam.front().prs.Finalize();
    });
  }
};

}  // namespace

std::unique_ptr<Mapper> MakeBackwardBeamMapper() {
  return std::make_unique<BackwardBeamMapper>();
}

}  // namespace cgra
