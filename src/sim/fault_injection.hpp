// Simulator-side fault injection.
//
// The FaultModel (arch/fault.hpp) is the *mapper's* view: resources
// known-bad at mapping time. This header is the *hardware's* view: a
// fault that strikes a running fabric at a chosen cycle, so a
// previously valid configuration silently starts computing garbage.
// The harness detects the damage as a miscompare against RunReference
// (sim/harness.hpp: MappingMatchesReference), at which point the
// repair loop (engine/engine.hpp: RunWithRepair) folds the diagnosis
// into the FaultModel and re-maps around it.
#pragma once

#include <cstdint>
#include <vector>

namespace cgra {

/// One injected hardware fault, active from `from_cycle` onwards.
struct SimFault {
  enum class Kind {
    kDeadPe,    ///< the whole cell stops: FU silent, routing channel dead
    kStuckReg,  ///< one physical register reads back `stuck_value` forever
  };

  Kind kind = Kind::kDeadPe;
  int cell = -1;
  std::int64_t from_cycle = 0;  ///< first simulated cycle the fault is live
  int reg = 0;                  ///< kStuckReg: physical register index
  std::int64_t stuck_value = 0; ///< kStuckReg: the stuck read-back value

  static SimFault DeadPe(int cell, std::int64_t from_cycle = 0) {
    SimFault f;
    f.kind = Kind::kDeadPe;
    f.cell = cell;
    f.from_cycle = from_cycle;
    return f;
  }
  static SimFault StuckReg(int cell, int reg, std::int64_t stuck_value,
                           std::int64_t from_cycle = 0) {
    SimFault f;
    f.kind = Kind::kStuckReg;
    f.cell = cell;
    f.reg = reg;
    f.stuck_value = stuck_value;
    f.from_cycle = from_cycle;
    return f;
  }
};

/// The set of faults injected into one simulation run.
struct SimFaultPlan {
  std::vector<SimFault> faults;

  bool empty() const { return faults.empty(); }
};

}  // namespace cgra
