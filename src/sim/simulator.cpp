#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "support/str.hpp"

namespace cgra {
namespace {

struct PendingWrite {
  int cell;  // -1 = shared RF
  int physical_reg;
  std::int64_t value;
};

struct PendingStore {
  int array;
  std::int64_t addr;
  std::int64_t value;
};

struct PendingOutput {
  int slot;
  std::int64_t value;
  int iteration;
  OpId unused = kNoOp;
};

}  // namespace

Result<ExecResult> RunOnSimulator(const Architecture& arch,
                                  const ConfigImage& image,
                                  const ExecInput& input, SimStats* stats,
                                  const SimFaultPlan* faults) {
  const int ii = image.ii;
  if (ii < 1 || static_cast<int>(image.frames.size()) != ii) {
    return Error::InvalidArgument("malformed configuration image");
  }
  const int R = arch.HoldCapacity();
  const bool shared = arch.params().rf_kind == RfKind::kShared;
  const bool rotating = arch.params().rf_kind == RfKind::kRotating;
  const int N = input.iterations;

  // Register files (shared mode uses rf[0] only).
  const int rf_banks = shared ? 1 : arch.num_cells();
  std::vector<std::vector<std::int64_t>> rf(
      static_cast<size_t>(rf_banks),
      std::vector<std::int64_t>(static_cast<size_t>(R), 0));

  // Configuration-loader preload of initial register contents.
  for (const RfPreload& p : image.preloads) {
    if (p.cell < 0 || p.cell >= rf_banks || p.reg < 0 || p.reg >= R) {
      return Error::InvalidArgument("preload targets a nonexistent register");
    }
    rf[static_cast<size_t>(p.cell)][static_cast<size_t>(p.reg)] = p.value;
  }

  ExecResult result;
  result.arrays = input.arrays;
  result.vars = input.vars;
  int max_out_slot = -1;
  int max_abs_time = 0;
  for (int s = 0; s < ii; ++s) {
    for (int c = 0; c < arch.num_cells(); ++c) {
      const CellContext& cc = image.frames[static_cast<size_t>(s)].cells[static_cast<size_t>(c)];
      if (cc.fu.valid) {
        max_abs_time = std::max(max_abs_time, cc.fu.stage * ii + s);
        if (cc.fu.opcode == Opcode::kOutput) {
          max_out_slot = std::max(max_out_slot, cc.fu.io_slot);
        }
      }
      for (const RtConfig& rt : cc.rt) {
        if (rt.valid) max_abs_time = std::max(max_abs_time, rt.stage * ii + s);
      }
    }
  }
  result.outputs.assign(static_cast<size_t>(max_out_slot + 1), {});

  const std::int64_t total_cycles =
      N > 0 ? static_cast<std::int64_t>(max_abs_time) +
                  static_cast<std::int64_t>(N - 1) * ii + 1
            : 0;
  if (stats) stats->cycles = total_cycles;

  auto physical = [&](int logical, std::int64_t T) {
    if (!rotating) return logical;
    return static_cast<int>(((logical + T / ii) % R + R) % R);
  };
  auto rf_bank_of = [&](int reader_cell, int read_idx) -> int {
    if (shared) return 0;
    return arch.ReadableFrom(reader_cell)[static_cast<size_t>(read_idx)];
  };

  std::vector<PendingWrite> writes;
  std::vector<PendingStore> stores;
  std::vector<std::pair<int, std::int64_t>> outs;  // (slot, value)

  // Set CGRA_SIM_TRACE=1 for a cycle-by-cycle log on stderr (debugging).
  const bool trace = std::getenv("CGRA_SIM_TRACE") != nullptr;

  // Cells silenced by an injected dead-PE fault (by first dead cycle).
  std::vector<std::int64_t> dead_from(static_cast<size_t>(arch.num_cells()),
                                      -1);
  if (faults) {
    for (const SimFault& f : faults->faults) {
      if (f.kind != SimFault::Kind::kDeadPe) continue;
      if (f.cell < 0 || f.cell >= arch.num_cells()) {
        return Error::InvalidArgument("injected fault targets a nonexistent cell");
      }
      auto& d = dead_from[static_cast<size_t>(f.cell)];
      d = d < 0 ? f.from_cycle : std::min(d, f.from_cycle);
    }
  }

  for (std::int64_t T = 0; T < total_cycles; ++T) {
    const int slot = static_cast<int>(T % ii);
    const ContextFrame& frame = image.frames[static_cast<size_t>(slot)];
    writes.clear();
    stores.clear();
    outs.clear();

    // Stuck-at registers override whatever last latched, every cycle.
    if (faults) {
      for (const SimFault& f : faults->faults) {
        if (f.kind != SimFault::Kind::kStuckReg || T < f.from_cycle) continue;
        const int bank = shared ? 0 : f.cell;
        if (bank < 0 || bank >= rf_banks || f.reg < 0 || f.reg >= R) {
          return Error::InvalidArgument(
              "injected fault targets a nonexistent register");
        }
        rf[static_cast<size_t>(bank)][static_cast<size_t>(f.reg)] =
            f.stuck_value;
      }
    }

    for (int c = 0; c < arch.num_cells(); ++c) {
      const std::int64_t dead_at = dead_from[static_cast<size_t>(c)];
      if (dead_at >= 0 && T >= dead_at) continue;  // cell fell silent
      const CellContext& cc = frame.cells[static_cast<size_t>(c)];
      // ---- FU ----
      const FuConfig& fu = cc.fu;
      if (fu.valid) {
        const std::int64_t iter = T / ii - fu.stage;
        if (iter >= 0 && iter < N) {
          auto read = [&](const OperandSel& sel) -> std::int64_t {
            switch (sel.src) {
              case OperandSel::Src::kNone:
                return 0;
              case OperandSel::Src::kImm:
                return fu.imm;
              case OperandSel::Src::kIter:
                return iter;
              case OperandSel::Src::kReg: {
                const int bank = rf_bank_of(c, sel.read_idx);
                return rf[static_cast<size_t>(bank)]
                         [static_cast<size_t>(physical(sel.reg, T))];
              }
            }
            return 0;
          };
          bool active = true;
          if (fu.pred.src != OperandSel::Src::kNone) {
            active = (read(fu.pred) != 0) == fu.pred_sense;
          }
          if (stats) ++stats->fu_activations;
          bool produce = active;
          std::int64_t v = 0;
          if (!active && fu.alt_valid) {
            // Dual-issue single execution: the alternate side fires,
            // with its own immediate word.
            auto read_alt = [&](const OperandSel& sel) -> std::int64_t {
              if (sel.src == OperandSel::Src::kImm) return fu.alt_imm;
              return read(sel);
            };
            v = EvalAlu(fu.alt_opcode, read_alt(fu.alt_operand[0]),
                        read_alt(fu.alt_operand[1]), read_alt(fu.alt_operand[2]));
            produce = true;
          } else if (active || fu.opcode == Opcode::kPhi) {
            switch (fu.opcode) {
              case Opcode::kInput: {
                if (fu.io_slot >= static_cast<int>(input.streams.size()) ||
                    iter >= static_cast<std::int64_t>(
                                input.streams[static_cast<size_t>(fu.io_slot)].size())) {
                  return Error::InvalidArgument(
                      StrFormat("input stream %d underrun", fu.io_slot));
                }
                v = input.streams[static_cast<size_t>(fu.io_slot)]
                                 [static_cast<size_t>(iter)];
                break;
              }
              case Opcode::kOutput:
                v = read(fu.operand[0]);
                outs.push_back({fu.io_slot, v});
                break;
              case Opcode::kVarIn:
                if (fu.io_slot >= static_cast<int>(result.vars.size())) {
                  return Error::InvalidArgument("variable file underrun");
                }
                v = result.vars[static_cast<size_t>(fu.io_slot)];
                break;
              case Opcode::kVarOut:
                v = read(fu.operand[0]);
                if (fu.io_slot >= static_cast<int>(result.vars.size())) {
                  result.vars.resize(static_cast<size_t>(fu.io_slot) + 1, 0);
                }
                result.vars[static_cast<size_t>(fu.io_slot)] = v;
                break;
              case Opcode::kLoad: {
                const std::int64_t addr = read(fu.operand[0]);
                if (fu.io_slot >= static_cast<int>(result.arrays.size()) ||
                    addr < 0 ||
                    addr >= static_cast<std::int64_t>(
                                result.arrays[static_cast<size_t>(fu.io_slot)].size())) {
                  return Error::InvalidArgument("simulated load out of bounds");
                }
                v = result.arrays[static_cast<size_t>(fu.io_slot)]
                                 [static_cast<size_t>(addr)];
                if (stats) ++stats->mem_accesses;
                break;
              }
              case Opcode::kStore: {
                const std::int64_t addr = read(fu.operand[0]);
                v = read(fu.operand[1]);
                if (fu.io_slot >= static_cast<int>(result.arrays.size()) ||
                    addr < 0 ||
                    addr >= static_cast<std::int64_t>(
                                result.arrays[static_cast<size_t>(fu.io_slot)].size())) {
                  return Error::InvalidArgument("simulated store out of bounds");
                }
                stores.push_back({fu.io_slot, addr, v});
                if (stats) ++stats->mem_accesses;
                break;
              }
              case Opcode::kPhi: {
                // Guard in operand slot 2 selects a side; the phi
                // itself always produces.
                const bool taken = (read(fu.operand[2]) != 0) == fu.pred_sense;
                v = taken ? read(fu.operand[0]) : read(fu.operand[1]);
                produce = true;
                break;
              }
              default:
                v = EvalAlu(fu.opcode, read(fu.operand[0]), read(fu.operand[1]),
                            read(fu.operand[2]));
                break;
            }
          }
          if (trace) {
            std::fprintf(stderr,
                         "T=%lld cell=%d %s iter=%lld active=%d v=%lld "
                         "ops=(%lld,%lld,%lld) we=%d dest=r%d\n",
                         static_cast<long long>(T), c,
                         std::string(OpName(fu.opcode)).c_str(),
                         static_cast<long long>(iter), active ? 1 : 0,
                         static_cast<long long>(v),
                         static_cast<long long>(read(fu.operand[0])),
                         static_cast<long long>(read(fu.operand[1])),
                         static_cast<long long>(read(fu.operand[2])),
                         fu.write_enable ? 1 : 0,
                         physical(fu.dest_reg, T + 1));
          }
          if (produce && fu.write_enable) {
            const int bank = shared ? 0 : c;
            writes.push_back(
                PendingWrite{bank, physical(fu.dest_reg, T + 1), v});
          }
        }
      }
      // ---- routing channels ----
      for (const RtConfig& rt : cc.rt) {
        if (!rt.valid) continue;
        const std::int64_t iter = T / ii - rt.stage;
        if (iter < 0 || iter >= N) continue;
        const int bank = rf_bank_of(c, rt.read_idx);
        const std::int64_t v =
            rf[static_cast<size_t>(bank)][static_cast<size_t>(physical(rt.src_reg, T))];
        const int dest_bank = shared ? 0 : c;
        if (trace) {
          std::fprintf(stderr,
                       "T=%lld cell=%d RT iter=%lld v=%lld from bank%d r%d -> r%d\n",
                       static_cast<long long>(T), c,
                       static_cast<long long>(iter), static_cast<long long>(v),
                       bank, physical(rt.src_reg, T),
                       physical(rt.dest_reg, T + 1));
        }
        writes.push_back(PendingWrite{dest_bank, physical(rt.dest_reg, T + 1), v});
        if (stats) ++stats->rt_transfers;
      }
    }

    // ---- commit ----
    for (const PendingWrite& w : writes) {
      rf[static_cast<size_t>(w.cell)][static_cast<size_t>(w.physical_reg)] = w.value;
      if (stats) ++stats->rf_writes;
    }
    for (const PendingStore& s : stores) {
      result.arrays[static_cast<size_t>(s.array)][static_cast<size_t>(s.addr)] = s.value;
    }
    for (const auto& [slot_id, value] : outs) {
      result.outputs[static_cast<size_t>(slot_id)].push_back(value);
    }
  }


  if (stats) {
    // Configuration traffic: while the fabric time-shares (II > 1),
    // every active cell reads its context word every issue; a
    // single-context fabric (or a steady II=1 frame) loads once.
    stats->config_energy =
        (ii > 1 ? 0.25 * static_cast<double>(stats->fu_activations) : 0.0) +
        1e-4 * static_cast<double>(FrameBitCount(arch)) * ii;
    stats->datapath_energy =
        static_cast<double>(stats->fu_activations) +
        0.3 * static_cast<double>(stats->rt_transfers) +
        0.2 * static_cast<double>(stats->rf_writes) +
        0.5 * static_cast<double>(stats->mem_accesses);
    stats->energy_proxy = stats->config_energy + stats->datapath_energy;
  }
  return result;
}

}  // namespace cgra
