// End-to-end flow: map -> validate -> compile -> encode/decode ->
// simulate -> compare against the reference interpreter.
//
// This is the library's headline guarantee and what every bench
// reports: a mapping only "counts" when the bit-level configuration it
// compiles to reproduces the reference semantics cycle-accurately.
#pragma once

#include <cstddef>
#include <string>

#include "arch/arch.hpp"
#include "arch/context.hpp"
#include "ir/kernels.hpp"
#include "mapping/mapper.hpp"
#include "sim/simulator.hpp"
#include "support/status.hpp"

namespace cgra {

struct EndToEndResult {
  Mapping mapping;
  MappingStats map_stats;
  SimStats sim_stats;
  int config_bits = 0;      ///< encoded bitstream size (bits)
  double map_seconds = 0;   ///< wall time inside the mapper
  int codegen_retries = 0;  ///< II escalations forced by register allocation
};

/// Runs the full flow. Any stage failing (unmappable, invalid mapping,
/// register allocation, simulation mismatch) surfaces as the error.
/// When register allocation rejects a mapping (e.g. a static RF cannot
/// host a long-lived value), the mapper is re-run with a higher II
/// floor, up to options.max_ii.
Result<EndToEndResult> RunEndToEnd(const Mapper& mapper, const Kernel& kernel,
                                   const Architecture& arch,
                                   const MapperOptions& options);

/// Bit-exact comparison helper (outputs + final arrays).
bool SameObservableState(const ExecResult& a, const ExecResult& b);

/// Deployment check for an existing mapping: compile, round-trip the
/// bitstream, simulate (optionally with injected hardware faults) and
/// compare against the reference interpreter. Returns true when the
/// observable state is bit-exact, false on a miscompare (how a fielded
/// fabric's built-in self-test notices it has gone bad), and an error
/// when the mapping cannot even be compiled or simulated.
Result<bool> MappingMatchesReference(const Kernel& kernel,
                                     const Architecture& arch,
                                     const Mapping& mapping,
                                     const SimFaultPlan* faults = nullptr);

}  // namespace cgra
