#include "sim/harness.hpp"

#include <algorithm>

#include "ir/interp.hpp"
#include "mapping/validator.hpp"
#include "sim/compile.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"

namespace cgra {

bool SameObservableState(const ExecResult& a, const ExecResult& b) {
  return a.outputs == b.outputs && a.arrays == b.arrays;
}

Result<bool> MappingMatchesReference(const Kernel& kernel,
                                     const Architecture& arch,
                                     const Mapping& mapping,
                                     const SimFaultPlan* faults) {
  Result<ConfigImage> image = CompileToContexts(kernel.dfg, arch, mapping);
  if (!image.ok()) return image.error();

  const std::vector<std::uint8_t> bits = EncodeConfig(arch, *image);
  Result<ConfigImage> decoded = DecodeConfig(arch, bits);
  if (!decoded.ok()) {
    return Error::Internal("configuration bitstream did not round-trip: " +
                           decoded.error().message);
  }

  Result<ExecResult> ref = RunReference(kernel.dfg, kernel.input);
  if (!ref.ok()) return ref.error();
  Result<ExecResult> sim =
      RunOnSimulator(arch, *decoded, kernel.input, /*stats=*/nullptr, faults);
  if (!sim.ok()) return sim.error();
  return SameObservableState(*ref, *sim);
}

Result<EndToEndResult> RunEndToEnd(const Mapper& mapper, const Kernel& kernel,
                                   const Architecture& arch,
                                   const MapperOptions& options) {
  EndToEndResult out;
  MapperOptions opts = options;

  for (;;) {
    // 1. Map.
    WallTimer timer;
    Result<Mapping> mapping = mapper.Map(kernel.dfg, arch, opts);
    out.map_seconds += timer.Seconds();
    if (!mapping.ok()) return mapping.error();

    // 2. Validate (defence in depth: mappers already self-check).
    if (Status s = ValidateMapping(kernel.dfg, arch, *mapping); !s.ok()) {
      return Error::Internal(
          StrFormat("mapper %s produced an invalid mapping: %s",
                    mapper.name().c_str(), s.error().message.c_str()));
    }

    // 3. Compile to contexts (register allocation can reject).
    Result<ConfigImage> image = CompileToContexts(kernel.dfg, arch, *mapping);
    if (!image.ok()) {
      // Retry with a raised II floor — but only when the mapper honours
      // the floor. A spatial mapper is pinned to II = 1: re-mapping it
      // with min_ii = 2 just reproduces the same rejected mapping until
      // the deadline (tens of thousands of futile attempts in traces).
      if (image.error().code == Error::Code::kUnmappable &&
          mapping->ii >= opts.min_ii &&
          mapping->ii < std::min(opts.max_ii, arch.MaxIi())) {
        opts.min_ii = mapping->ii + 1;
        ++out.codegen_retries;
        continue;  // re-map with a larger II floor
      }
      return image.error();
    }

    // 4. The hardware contract: encode, then execute ONLY the decode.
    const std::vector<std::uint8_t> bits = EncodeConfig(arch, *image);
    out.config_bits = static_cast<int>(bits.size()) * 8;
    Result<ConfigImage> decoded = DecodeConfig(arch, bits);
    if (!decoded.ok()) {
      return Error::Internal("configuration bitstream did not round-trip: " +
                             decoded.error().message);
    }
    if (!(*decoded == *image)) {
      return Error::Internal("configuration decode mismatch");
    }

    // 5. Simulate and compare with the reference interpreter.
    Result<ExecResult> ref = RunReference(kernel.dfg, kernel.input);
    if (!ref.ok()) return ref.error();
    Result<ExecResult> sim =
        RunOnSimulator(arch, *decoded, kernel.input, &out.sim_stats);
    if (!sim.ok()) return sim.error();
    if (!SameObservableState(*ref, *sim)) {
      return Error::Internal(
          StrFormat("simulation mismatch for kernel %s under mapper %s",
                    kernel.name.c_str(), mapper.name().c_str()));
    }

    out.mapping = std::move(mapping).value();
    out.map_stats = ComputeStats(kernel.dfg, arch, out.mapping);
    return out;
  }
}

}  // namespace cgra
