// Cycle-accurate, context-driven CGRA simulator.
//
// Executes ONLY what the configuration bitstream describes — the
// hardware side of §II-B's hardware/software contract. Per cycle, in
// hardware order: every FU reads operands combinationally from the
// register files visible to it, every routing channel reads its source
// register; results and transfers latch at the cycle boundary. The II
// slot counter cycles the context frames; a global rotation counter
// rebases register indices when the fabric has rotating RFs; the
// hardware loop unit gates prologue/epilogue stages and provides the
// iteration counter broadcast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/arch.hpp"
#include "arch/context.hpp"
#include "ir/interp.hpp"
#include "sim/fault_injection.hpp"
#include "support/status.hpp"

namespace cgra {

struct SimStats {
  std::int64_t cycles = 0;
  std::int64_t fu_activations = 0;
  std::int64_t rt_transfers = 0;
  std::int64_t rf_writes = 0;
  std::int64_t mem_accesses = 0;
  /// Configuration-fetch component: context-memory reads while the
  /// fabric time-shares (II > 1) plus the one-time frame load. "Often
  /// criticized to reduce the energy efficiency" (§II-B on temporal
  /// computation) — this is that cost, measured.
  double config_energy = 0;
  /// Datapath component: FU activity, routed transfers, RF writes,
  /// memory accesses.
  double datapath_energy = 0;
  /// Total energy proxy (config + datapath).
  double energy_proxy = 0;
};

/// Runs `iterations` loop iterations of the configured fabric.
/// `input.streams`/`input.arrays` as for the reference interpreter.
/// Returns outputs/arrays for bit-exact comparison with RunReference.
/// `faults`, when given, injects hardware faults at their chosen
/// cycles: the run still completes (hardware does not crash, it
/// computes garbage) so the caller can observe the miscompare.
Result<ExecResult> RunOnSimulator(const Architecture& arch,
                                  const ConfigImage& image,
                                  const ExecInput& input,
                                  SimStats* stats = nullptr,
                                  const SimFaultPlan* faults = nullptr);

}  // namespace cgra
