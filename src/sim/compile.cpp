#include "sim/compile.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "arch/mrrg.hpp"
#include "mapping/tracker.hpp"
#include "support/str.hpp"

namespace cgra {
namespace {

// One register-allocation unit: a value's maximal contiguous stay in
// one hold (RF). Written at `a` (by the producer FU latch or an RT
// transfer), last read at `b`.
struct LiveUnit {
  int hold;       // MRRG hold node
  ValueId value;  // producer op
  int a, b;       // inclusive absolute cycle range (iteration-0 frame)
  int reg = -1;   // static: physical reg; rotating: iteration-0 physical
  // When this unit is the read site of a loop-carried edge of distance
  // d, iterations 0..d-1 read "virtual" copies -1..-d that no producer
  // instance ever writes: those registers must keep their reset /
  // preload content FROM CYCLE 0 until the read. warmup = max d.
  int warmup = 0;
};

struct RegAlloc {
  // Unit lookup: (hold, value, time) -> unit index.
  std::map<std::tuple<int, ValueId, int>, int> at;
  std::vector<LiveUnit> units;
  bool rotating = false;
  int ii = 1;

  const LiveUnit* Find(int hold, ValueId value, int time) const {
    auto it = at.find({hold, value, time});
    return it == at.end() ? nullptr : &units[static_cast<size_t>(it->second)];
  }

  // Config register index for READING unit `u` at absolute time t.
  int ReadIndex(const LiveUnit& u, int t, int R) const {
    if (!rotating) return u.reg;
    return ((u.reg - t / ii) % R + R) % R;
  }
  // Config register index for WRITING unit `u` at absolute time t.
  int WriteIndex(const LiveUnit& u, int t, int R) const {
    return ReadIndex(u, t, R);  // same rebasing formula
  }
};

bool IntervalsOverlap(int a1, int b1, int a2, int b2) {
  return a1 <= b2 && a2 <= b1;
}

constexpr int kSinceReset = -(1 << 28);  // virtual copies reserve from reset

// Occupancy window of copy k of a unit. Real copies (k >= 0) live
// [a + k*ii, b + k*ii]; virtual warm-up copies (k < 0) reserve their
// register from reset until the last read of that copy.
std::pair<int, int> CopyInterval(const LiveUnit& u, int k, int ii) {
  if (k >= 0) return {u.a + k * ii, u.b + k * ii};
  return {kSinceReset, u.b + k * ii};
}

// True if units u (at register ru) and w (at rw) ever clash on a
// physical register while live — including each other's virtual
// warm-up reservations. Shared by the greedy allocator and the
// post-allocation verifier so they can never disagree.
bool UnitsCollide(const LiveUnit& u, int ru, const LiveUnit& w, int rw, int ii,
                  int R, bool rotating) {
  const int span = (std::max(u.b, w.b) - std::min(u.a, w.a)) / ii + R + 2;
  for (int k = -u.warmup; k <= span; ++k) {
    for (int m = -w.warmup; m <= span; ++m) {
      const int pu = rotating ? ((ru + k) % R + R) % R : ru;
      const int pw = rotating ? ((rw + m) % R + R) % R : rw;
      if (pu != pw) continue;
      const auto [ua, ub] = CopyInterval(u, k, ii);
      const auto [wa, wb] = CopyInterval(w, m, ii);
      if (IntervalsOverlap(ua, ub, wa, wb)) return true;
    }
  }
  return false;
}

// Greedy allocation. Static RFs: circular-arc colouring, live range
// must fit within II. Rotating: iteration-0 physical indices chosen so
// no two units' iteration copies collide.
Result<RegAlloc> AllocateRegisters(const Mrrg& mrrg, const Mapping& m,
                                   const Dfg& dfg, const Architecture& arch) {
  RegAlloc alloc;
  alloc.rotating = arch.params().rf_kind == RfKind::kRotating;
  alloc.ii = m.ii;
  const int R = arch.HoldCapacity();

  // Gather hold occupancies per (hold, value).
  std::map<std::pair<int, ValueId>, std::set<int>> stays;
  const auto edges = dfg.Edges(true);
  for (size_t e = 0; e < m.routes.size() && e < edges.size(); ++e) {
    for (const RouteStep& s : m.routes[e].steps) {
      if (mrrg.node(s.node).kind == Mrrg::Kind::kHold) {
        stays[{s.node, edges[e].from}].insert(s.time);
      }
    }
  }
  // Segment into units.
  std::map<int, std::vector<int>> per_hold;  // hold -> unit indices
  for (const auto& [key, times] : stays) {
    int start = -2, prev = -2;
    auto flush = [&](int end) {
      if (start < 0) return;
      const int idx = static_cast<int>(alloc.units.size());
      alloc.units.push_back(LiveUnit{key.first, key.second, start, end, -1});
      per_hold[key.first].push_back(idx);
      for (int t = start; t <= end; ++t) alloc.at[{key.first, key.second, t}] = idx;
    };
    for (int t : times) {
      if (t != prev + 1) {
        flush(prev);
        start = t;
      }
      prev = t;
    }
    flush(prev);
  }

  // Warm-up depths: read sites of loop-carried edges need their
  // virtual copies' registers untouched from reset (see LiveUnit).
  for (size_t e = 0; e < m.routes.size() && e < edges.size(); ++e) {
    const DfgEdge& edge = edges[e];
    if (!edge.carries_value() || edge.distance <= 0) continue;
    if (edge.from < 0 || arch.IsFolded(dfg.op(edge.from).opcode)) continue;
    if (m.routes[e].steps.empty()) continue;
    const RouteStep& last = m.routes[e].steps.back();
    const int arrive =
        m.place[static_cast<size_t>(edge.to)].time + m.ii * edge.distance;
    auto it = alloc.at.find({last.node, edge.from, arrive});
    if (it != alloc.at.end()) {
      LiveUnit& u = alloc.units[static_cast<size_t>(it->second)];
      u.warmup = std::max(u.warmup, edge.distance);
    }
  }

  // Colour per hold (greedy, using the shared collide predicate).
  for (auto& [hold, unit_ids] : per_hold) {
    (void)hold;
    for (size_t i = 0; i < unit_ids.size(); ++i) {
      LiveUnit& u = alloc.units[static_cast<size_t>(unit_ids[i])];
      const int len = u.b - u.a + 1;
      if (!alloc.rotating && len > m.ii) {
        return Error::Unmappable(StrFormat(
            "value %s lives %d cycles in a static RF with II=%d: needs a "
            "rotating register file",
            dfg.op(u.value).name.c_str(), len, m.ii));
      }
      const int hold_cell = mrrg.node(u.hold).cell;
      int chosen = -1;
      for (int r = 0; r < R && chosen < 0; ++r) {
        // A faulted physical register is not a usable colour. (A
        // rotating RF with any fault already has hold capacity 0, so
        // no value is ever parked there in the first place.)
        if (hold_cell >= 0 && arch.RfEntryFaulted(hold_cell, r)) continue;
        bool ok = true;
        for (size_t j = 0; j < i && ok; ++j) {
          const LiveUnit& w = alloc.units[static_cast<size_t>(unit_ids[j])];
          if (w.reg < 0) continue;
          if (UnitsCollide(u, r, w, w.reg, m.ii, R, alloc.rotating)) ok = false;
        }
        if (ok) chosen = r;
      }
      if (chosen < 0) {
        return Error::Unmappable(StrFormat(
            "register allocation failed in the RF of cell %d (%d regs)",
            mrrg.node(u.hold).cell, R));
      }
      u.reg = chosen;
    }
  }
  return alloc;
}

// Defence in depth: brute-force re-check that no two live units ever
// share a physical register. Catches any gap in the analytic conflict
// enumeration above (cost is negligible: units are few).
Status VerifyAllocation(const RegAlloc& alloc, const Mrrg& mrrg, int R,
                        const Dfg& dfg) {
  for (size_t i = 0; i < alloc.units.size(); ++i) {
    for (size_t j = i + 1; j < alloc.units.size(); ++j) {
      const LiveUnit& u = alloc.units[i];
      const LiveUnit& w = alloc.units[j];
      if (u.hold != w.hold) continue;
      if (UnitsCollide(u, u.reg, w, w.reg, alloc.ii, R, alloc.rotating)) {
        return Error::Internal(StrFormat(
            "register allocation collision in cell %d between %s [%d,%d] "
            "(warmup %d) and %s [%d,%d] (warmup %d)",
            mrrg.node(u.hold).cell, dfg.op(u.value).name.c_str(), u.a, u.b,
            u.warmup, dfg.op(w.value).name.c_str(), w.a, w.b, w.warmup));
      }
    }
  }
  return Status::Ok();
}

int ReadableIndexOf(const Architecture& arch, int reader_cell, int source_cell) {
  const auto& r = arch.ReadableFrom(reader_cell);
  for (size_t i = 0; i < r.size(); ++i) {
    if (r[i] == source_cell) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

Result<ConfigImage> CompileToContexts(const Dfg& dfg, const Architecture& arch,
                                      const Mapping& m) {
  const Mrrg mrrg(arch);
  const int R = arch.HoldCapacity();
  const bool shared = arch.params().rf_kind == RfKind::kShared;

  auto alloc_or = AllocateRegisters(mrrg, m, dfg, arch);
  if (!alloc_or.ok()) return alloc_or.error();
  const RegAlloc& alloc = *alloc_or;
  if (Status s = VerifyAllocation(alloc, mrrg, R, dfg); !s.ok()) return s.error();

  ConfigImage image;
  image.ii = m.ii;
  image.frames.assign(static_cast<size_t>(m.ii), ContextFrame{});
  for (ContextFrame& f : image.frames) {
    f.cells.assign(static_cast<size_t>(arch.num_cells()), CellContext{});
    for (CellContext& c : f.cells) {
      c.rt.assign(static_cast<size_t>(arch.params().route_channels), RtConfig{});
    }
  }
  auto slot_of = [&](int t) { return ((t % m.ii) + m.ii) % m.ii; };

  const auto edges = dfg.Edges(true);

  // Resolve an operand read: the route of edge `e` arriving at
  // `arrive`, read by the op on `reader_cell`.
  auto operand_from_route = [&](size_t e, int reader_cell,
                                int arrive) -> Result<OperandSel> {
    const Route& route = m.routes[e];
    if (route.steps.empty()) {
      return Error::Internal("edge without a route reached codegen");
    }
    const RouteStep& last = route.steps.back();
    const LiveUnit* unit = alloc.Find(last.node, edges[e].from, arrive);
    if (!unit) return Error::Internal("no live unit at the read site");
    OperandSel sel;
    sel.src = OperandSel::Src::kReg;
    const int src_cell = mrrg.node(last.node).cell;
    sel.read_idx = shared ? 0 : ReadableIndexOf(arch, reader_cell, src_cell);
    if (sel.read_idx < 0) return Error::Internal("read site not readable");
    sel.reg = alloc.ReadIndex(*unit, arrive, R);
    return sel;
  };

  // --- FU configs -----------------------------------------------------------
  for (OpId op = 0; op < dfg.num_ops(); ++op) {
    const Op& o = dfg.op(op);
    if (arch.IsFolded(o.opcode)) continue;
    const Placement& p = m.place[static_cast<size_t>(op)];
    if (p.cell < 0) {
      return Error::InvalidArgument(
          StrFormat("op %s is unplaced", o.name.c_str()));
    }
    FuConfig& fu =
        image.frames[static_cast<size_t>(slot_of(p.time))]
            .cells[static_cast<size_t>(p.cell)]
            .fu;
    if (fu.valid) {
      return Error::InvalidArgument(
          StrFormat("two ops share cell %d slot %d", p.cell, slot_of(p.time)));
    }
    fu.valid = true;
    fu.opcode = o.opcode;
    fu.stage = p.time / m.ii;
    if (IsIoOp(o.opcode)) fu.io_slot = o.slot;
    if (IsMemoryOp(o.opcode)) fu.io_slot = o.array;

    // Operands (main and dual-issue alternate sides). Each side has
    // its own immediate field.
    bool imm_used = false;
    std::int32_t* imm_field = &fu.imm;
    auto resolve_operand = [&](const Operand& operand, int edge_port,
                               OperandSel& sel) -> Status {
      const Op& producer = dfg.op(operand.producer);
      if (producer.opcode == Opcode::kConst) {
        // Immediates are iteration-invariant; a loop-carried read of a
        // constant only matches if its warm-up init equals the imm.
        if (operand.distance > 0 && operand.init != producer.imm) {
          return Error::Unmappable(StrFormat(
              "op %s: carried constant operand with init != imm cannot be "
              "folded",
              o.name.c_str()));
        }
        if (imm_used &&
            *imm_field != static_cast<std::int32_t>(producer.imm)) {
          return Error::Unmappable(StrFormat(
              "op %s needs two distinct immediates (one imm field per "
              "instruction word)",
              o.name.c_str()));
        }
        sel.src = OperandSel::Src::kImm;
        *imm_field = static_cast<std::int32_t>(producer.imm);
        imm_used = true;
        return Status::Ok();
      }
      if (producer.opcode == Opcode::kIterIdx && arch.IsFolded(producer.opcode)) {
        if (operand.distance > 0) {
          return Error::Unmappable(StrFormat(
              "op %s: carried read of the loop counter is not foldable",
              o.name.c_str()));
        }
        sel.src = OperandSel::Src::kIter;
        return Status::Ok();
      }
      // Locate this operand's edge.
      int edge_index = -1;
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].to == op && edges[e].to_port == edge_port) {
          edge_index = static_cast<int>(e);
          break;
        }
      }
      if (edge_index < 0) return Error::Internal("operand edge missing");
      const int arrive = p.time + m.ii * operand.distance;
      auto sel_or = operand_from_route(static_cast<size_t>(edge_index), p.cell, arrive);
      if (!sel_or.ok()) return sel_or.error();
      sel = *sel_or;
      return Status::Ok();
    };
    for (size_t port = 0; port < o.operands.size(); ++port) {
      if (Status s = resolve_operand(o.operands[port], static_cast<int>(port),
                                     fu.operand[port]);
          !s.ok()) {
        return s.error();
      }
    }
    if (o.has_alt()) {
      fu.alt_valid = true;
      fu.alt_opcode = o.alt_opcode;
      imm_used = false;
      imm_field = &fu.alt_imm;
      for (size_t port = 0; port < o.alt_operands.size(); ++port) {
        if (Status s = resolve_operand(o.alt_operands[port],
                                       kAltPortBase + static_cast<int>(port),
                                       fu.alt_operand[port]);
            !s.ok()) {
          return s.error();
        }
      }
    }

    // Guarding predicate. For kPhi the guard selects an operand rather
    // than gating execution, so it rides in operand slot 2 and
    // pred_sense carries the phi's sense.
    if (o.pred != kNoOp) {
      int edge_index = -1;
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].to == op && edges[e].to_port == kPredPort) {
          edge_index = static_cast<int>(e);
          break;
        }
      }
      if (edge_index < 0) return Error::Internal("predicate edge missing");
      Result<OperandSel> sel_or = [&]() -> Result<OperandSel> {
        const Op& producer = dfg.op(dfg.op(op).pred);
        if (producer.opcode == Opcode::kConst) {
          OperandSel s;
          s.src = OperandSel::Src::kImm;
          return s;
        }
        return operand_from_route(static_cast<size_t>(edge_index), p.cell, p.time);
      }();
      if (!sel_or.ok()) return sel_or.error();
      if (o.opcode == Opcode::kPhi) {
        fu.operand[2] = *sel_or;
      } else {
        fu.pred = *sel_or;
      }
      fu.pred_sense = o.pred_when_true;
    }

    // Destination register (only when somebody consumes the value).
    const int latch = p.time + 1;
    const LiveUnit* unit = alloc.Find(mrrg.HoldNode(p.cell), op, latch);
    if (unit) {
      fu.write_enable = true;
      fu.dest_reg = alloc.WriteIndex(*unit, latch, R);
    }
  }

  // --- RT configs -------------------------------------------------------------
  // Distinct transfers: (cell, value, read-time). A transfer reads the
  // previous hold in the route at time t and latches into its own hold
  // at t+1.
  std::map<std::tuple<int, ValueId, int>, int> transfer_src_hold;
  for (size_t e = 0; e < m.routes.size(); ++e) {
    const auto& steps = m.routes[e].steps;
    for (size_t i = 0; i + 1 < steps.size() + 1 && i < steps.size(); ++i) {
      if (mrrg.node(steps[i].node).kind != Mrrg::Kind::kRt) continue;
      if (i == 0) return Error::Internal("route begins at a routing channel");
      transfer_src_hold[{mrrg.node(steps[i].node).cell, edges[e].from,
                         steps[i].time}] = steps[i - 1].node;
    }
  }
  // --- carried-edge initial values (RF preload section) ----------------------
  // A distance-d operand reads, during the first d iterations, a value
  // no producer instance has written. The configuration loader seeds
  // the registers those "virtual" copies occupy with the operand's
  // init value.
  {
    // required[(bank, physical)] = init value. Two carried reads that
    // land on the same physical register but need DIFFERENT warm-up
    // values are unrealizable on shared-register hardware (one
    // register cannot hold two values); reject with a clear message.
    std::map<std::pair<int, int>, std::int64_t> required;
    const bool rotating = arch.params().rf_kind == RfKind::kRotating;
    for (size_t e = 0; e < edges.size(); ++e) {
      const DfgEdge& edge = edges[e];
      if (!edge.carries_value() || edge.distance <= 0) continue;
      if (arch.IsFolded(dfg.op(edge.from).opcode)) continue;
      const Op& consumer = dfg.op(edge.to);
      std::int64_t init = 0;
      if (edge.to_port >= 0) {
        init = consumer.operands[static_cast<size_t>(edge.to_port)].init;
      } else if (edge.to_port == kAltPortBase ||
                 edge.to_port > kAltPortBase) {
        init = consumer.alt_operands[static_cast<size_t>(edge.to_port - kAltPortBase)].init;
      }
      const Route& route = m.routes[e];
      if (route.steps.empty()) continue;
      const RouteStep& last = route.steps.back();
      const int arrive = m.place[static_cast<size_t>(edge.to)].time +
                         m.ii * edge.distance;
      const LiveUnit* unit = alloc.Find(last.node, edge.from, arrive);
      if (!unit) return Error::Internal("carried edge read site unallocated");
      const int bank = shared ? 0 : mrrg.node(last.node).cell;
      for (int i = 0; i < edge.distance; ++i) {
        const int physical =
            rotating ? (((unit->reg + i - edge.distance) % R) + R) % R
                     : unit->reg;
        auto [it, inserted] = required.insert({{bank, physical}, init});
        if (!inserted && it->second != init) {
          return Error::Unmappable(StrFormat(
              "conflicting warm-up values for %s (%lld vs %lld) share one "
              "register: reads of the same carried value must agree on "
              "their init",
              dfg.op(edge.from).name.c_str(),
              static_cast<long long>(it->second),
              static_cast<long long>(init)));
        }
      }
    }
    for (const auto& [key, init] : required) {
      if (init != 0) {  // registers reset to zero anyway
        image.preloads.push_back(RfPreload{key.first, key.second, init});
      }
    }
  }

  for (const auto& [key, src_hold] : transfer_src_hold) {
    const auto& [cell, value, t] = key;
    CellContext& cc =
        image.frames[static_cast<size_t>(slot_of(t))].cells[static_cast<size_t>(cell)];
    int channel = -1;
    for (size_t k = 0; k < cc.rt.size(); ++k) {
      if (!cc.rt[k].valid) {
        channel = static_cast<int>(k);
        break;
      }
    }
    if (channel < 0) {
      return Error::InvalidArgument(
          StrFormat("route channels of cell %d oversubscribed in slot %d", cell,
                    slot_of(t)));
    }
    RtConfig& rt = cc.rt[static_cast<size_t>(channel)];
    rt.valid = true;
    rt.stage = t / m.ii;
    const LiveUnit* src = alloc.Find(src_hold, value, t);
    const LiveUnit* dst = alloc.Find(mrrg.HoldNode(cell), value, t + 1);
    if (!src || !dst) return Error::Internal("transfer endpoints unallocated");
    rt.read_idx = shared ? 0 : ReadableIndexOf(arch, cell, mrrg.node(src_hold).cell);
    if (rt.read_idx < 0) {
      return Error::Internal("transfer source not linked to this cell");
    }
    rt.src_reg = alloc.ReadIndex(*src, t, R);
    rt.dest_reg = alloc.WriteIndex(*dst, t + 1, R);
  }

  return image;
}

}  // namespace cgra
