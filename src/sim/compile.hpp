// Backend code generation: Mapping -> ConfigImage.
//
// The survey's §II-B insists the configuration format "defines the
// contract between the hardware and the software"; this compiler
// honours it by reducing a validated Mapping to nothing but context
// words — including REGISTER ALLOCATION, the §III-C concern of
// De Sutter et al. [20][29]:
//
//  * rotating register files (RfKind::kRotating): logical indices are
//    rebased by a global rotation counter every II cycles, so copies of
//    a value from successive overlapped iterations land in successive
//    physical registers — long-lived values survive modulo overlap;
//  * static register files (kLocal/kNone/kShared): the same physical
//    register is rewritten every II cycles, so a value whose live range
//    exceeds II CANNOT be allocated — compilation fails with
//    kUnmappable, which is precisely the rotating-vs-static experiment
//    the memory bench runs.
#pragma once

#include <cstddef>

#include "arch/arch.hpp"
#include "arch/context.hpp"
#include "ir/dfg.hpp"
#include "mapping/mapping.hpp"
#include "support/status.hpp"

namespace cgra {

/// Compiles a mapping to executable contexts. The mapping must be
/// valid (callers typically ValidateMapping first; the compiler
/// re-derives what it needs and fails cleanly on inconsistency).
Result<ConfigImage> CompileToContexts(const Dfg& dfg, const Architecture& arch,
                                      const Mapping& mapping);

}  // namespace cgra
