#include "frontend/generate.hpp"

#include <algorithm>
#include <cassert>

#include "support/str.hpp"

namespace cgra::frontend {
namespace {

constexpr Opcode kBinaryOps[] = {
    Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kMin, Opcode::kMax,
    Opcode::kAnd, Opcode::kOr,  Opcode::kXor, Opcode::kCmpLt, Opcode::kCmpEq,
};
constexpr Opcode kUnaryOps[] = {Opcode::kNeg, Opcode::kAbs, Opcode::kNot};
constexpr Opcode kReductionOps[] = {
    Opcode::kAdd, Opcode::kMul, Opcode::kMin, Opcode::kMax,
    Opcode::kAnd, Opcode::kOr,  Opcode::kXor,
};

std::int64_t RandValue(Rng& rng, std::int64_t bound) {
  return static_cast<std::int64_t>(rng.NextBounded(
             static_cast<std::uint64_t>(2 * bound + 1))) -
         bound;
}

// Row-major address over `vars` (ordered outer to inner): the
// coefficient of each variable is the product of the extents of the
// variables after it. Returns the affine and the spanned size.
Affine RowMajor(const std::vector<int>& vars,
                const std::vector<std::int64_t>& var_extent,
                std::int64_t* size) {
  Affine a;
  std::int64_t stride = 1;
  for (int i = static_cast<int>(vars.size()) - 1; i >= 0; --i) {
    const int v = vars[static_cast<size_t>(i)];
    a.SetCoeff(v, stride);
    stride *= var_extent[static_cast<size_t>(v)];
  }
  *size = stride;
  return a;
}

struct BandScratch {
  std::vector<int> vars;  ///< this band's variables, loop order
  /// Input arrays created for this band: (array id, address affine) —
  /// reusable by later loads of the same band.
  std::vector<std::pair<int, Affine>> input_addrs;
  /// Non-reduction statements already emitted in this band:
  /// (array id, store address) — forwarding candidates.
  std::vector<std::pair<int, Affine>> forwardable;
};

class ProgramBuilder {
 public:
  ProgramBuilder(Rng& rng, const GeneratorOptions& opt) : rng_(rng), opt_(opt) {}

  NestProgram Build() {
    const int num_bands = rng_.NextInt(1, opt_.max_bands);
    for (int b = 0; b < num_bands; ++b) AddBand(b);
    // Arrays were allocated with placeholder sizes as statements were
    // generated; nothing to patch — finalize.
    return std::move(program_);
  }

 private:
  Rng& rng_;
  const GeneratorOptions& opt_;
  NestProgram program_;
  int input_arrays_ = 0;
  /// Output arrays of completed bands (loadable by later bands).
  std::vector<int> completed_outputs_;

  int NewArray(std::string name, std::int64_t size, bool is_input) {
    ArrayDecl decl;
    decl.name = std::move(name);
    decl.size = static_cast<int>(size);
    decl.is_input = is_input;
    decl.init.reserve(static_cast<size_t>(size));
    for (std::int64_t i = 0; i < size; ++i) {
      decl.init.push_back(RandValue(rng_, opt_.max_value));
    }
    program_.arrays.push_back(std::move(decl));
    return static_cast<int>(program_.arrays.size()) - 1;
  }

  /// A random non-empty subset of the band's variables, loop order
  /// preserved.
  std::vector<int> RandomVarSubset(const BandScratch& sc) {
    std::vector<int> subset;
    for (const int v : sc.vars) {
      if (rng_.NextBool(0.6)) subset.push_back(v);
    }
    if (subset.empty()) {
      subset.push_back(sc.vars[rng_.NextIndex(sc.vars.size())]);
    }
    return subset;
  }

  /// Emits a load node: a fresh/reused input array, or an earlier
  /// band's output.
  ExprNode MakeLoad(const BandScratch& sc) {
    ExprNode node;
    node.kind = ExprKind::kLoad;
    // Earlier-band output?
    if (!completed_outputs_.empty() && rng_.NextBool(0.4)) {
      const int arr =
          completed_outputs_[rng_.NextIndex(completed_outputs_.size())];
      const std::int64_t size = program_.arrays[static_cast<size_t>(arr)].size;
      // Row-major over a subset small enough to fit in the array.
      std::vector<int> subset;
      std::int64_t product = 1;
      for (const int v : sc.vars) {
        const std::int64_t e = program_.var_extent[static_cast<size_t>(v)];
        if (product * e <= size && rng_.NextBool(0.7)) {
          subset.push_back(v);
          product *= e;
        }
      }
      std::int64_t span = 1;
      node.array = arr;
      node.addr = RowMajor(subset, program_.var_extent, &span);
      return node;
    }
    // Reuse one of this band's input arrays?
    if (!sc.input_addrs.empty() &&
        (input_arrays_ >= opt_.max_arrays || rng_.NextBool(0.35))) {
      const auto& [arr, addr] =
          sc.input_addrs[rng_.NextIndex(sc.input_addrs.size())];
      node.array = arr;
      node.addr = addr;
      return node;
    }
    // Fresh input array addressed row-major over a random subset.
    const std::vector<int> subset = RandomVarSubset(sc);
    std::int64_t size = 1;
    node.addr = RowMajor(subset, program_.var_extent, &size);
    node.array =
        NewArray(StrFormat("in%d", input_arrays_++), size, /*is_input=*/true);
    return node;
  }

  /// Random expression pool for one statement (forwarding handled by
  /// the caller, which may prepend a forwarded load).
  void MakeRhs(const BandScratch& sc, Statement* stmt) {
    // Leaves: 1-3 of load / index / const.
    const int leaves = rng_.NextInt(1, 3);
    for (int i = 0; i < leaves; ++i) {
      switch (rng_.NextInt(0, 2)) {
        case 0:
          stmt->nodes.push_back(MakeLoad(sc));
          break;
        case 1: {
          ExprNode n;
          n.kind = ExprKind::kIndex;
          n.var = sc.vars[rng_.NextIndex(sc.vars.size())];
          stmt->nodes.push_back(n);
          break;
        }
        default: {
          ExprNode n;
          n.kind = ExprKind::kConst;
          n.imm = RandValue(rng_, opt_.max_value);
          stmt->nodes.push_back(n);
          break;
        }
      }
    }
    // Interior operators over random earlier nodes.
    const int ops = rng_.NextInt(1, std::max(1, opt_.max_expr_ops));
    for (int i = 0; i < ops; ++i) {
      ExprNode n;
      const size_t pool = stmt->nodes.size();
      if (rng_.NextBool(0.2)) {
        n.kind = ExprKind::kUnary;
        n.op = kUnaryOps[rng_.NextIndex(std::size(kUnaryOps))];
        n.a = static_cast<int>(rng_.NextIndex(pool));
      } else {
        n.kind = ExprKind::kBinary;
        n.op = kBinaryOps[rng_.NextIndex(std::size(kBinaryOps))];
        n.a = static_cast<int>(rng_.NextIndex(pool));
        n.b = static_cast<int>(rng_.NextIndex(pool));
      }
      stmt->nodes.push_back(n);
    }
    stmt->root = static_cast<int>(stmt->nodes.size()) - 1;
  }

  void AddBand(int band_idx) {
    Band band;
    BandScratch sc;
    const int depth = rng_.NextInt(1, opt_.max_depth);
    std::int64_t domain = 1;
    for (int p = 0; p < depth; ++p) {
      const std::int64_t room = std::max<std::int64_t>(
          1, std::min(opt_.max_trip, opt_.max_domain / domain));
      const std::int64_t trip =
          1 + static_cast<std::int64_t>(
                  rng_.NextBounded(static_cast<std::uint64_t>(room)));
      domain *= trip;
      band.loops.push_back(Loop{p, trip});
      const int var = program_.num_vars++;
      program_.var_extent.push_back(trip);
      sc.vars.push_back(var);
      if (static_cast<int>(band.recover.size()) < program_.num_vars) {
        band.recover.resize(static_cast<size_t>(program_.num_vars));
      }
      band.recover[static_cast<size_t>(var)].SetCoeff(p, 1);
    }

    const int stmts = rng_.NextInt(1, opt_.max_stmts);
    for (int s = 0; s < stmts; ++s) {
      Statement stmt;
      // Optional same-band forwarding load as the first leaf.
      if (!sc.forwardable.empty() && rng_.NextBool(opt_.forward_prob)) {
        const auto& [arr, addr] =
            sc.forwardable[rng_.NextIndex(sc.forwardable.size())];
        ExprNode n;
        n.kind = ExprKind::kLoad;
        n.array = arr;
        n.addr = addr;
        stmt.nodes.push_back(n);
      }
      MakeRhs(sc, &stmt);

      if (rng_.NextBool(opt_.reduction_prob)) {
        stmt.is_reduction = true;
        stmt.reduction_op =
            kReductionOps[rng_.NextIndex(std::size(kReductionOps))];
        stmt.reduction_init = RandValue(rng_, opt_.max_value);
        // Address = a prefix of the loop order (S-before-R holds by
        // construction), possibly empty (scalar accumulator).
        const int k = rng_.NextInt(0, depth - 1);
        const std::vector<int> prefix(sc.vars.begin(), sc.vars.begin() + k);
        std::int64_t size = 1;
        stmt.store_addr = RowMajor(prefix, program_.var_extent, &size);
        stmt.store_array =
            NewArray(StrFormat("out%d_%d", band_idx, s), size, false);
      } else {
        // Non-reduction stores address every variable (row-major over
        // the whole band), as Verify requires.
        std::int64_t size = 1;
        stmt.store_addr = RowMajor(sc.vars, program_.var_extent, &size);
        stmt.store_array =
            NewArray(StrFormat("out%d_%d", band_idx, s), size, false);
        sc.forwardable.emplace_back(stmt.store_array, stmt.store_addr);
      }
      band.stmts.push_back(std::move(stmt));
    }

    // Record this band's input-array addresses for reuse bookkeeping
    // (already folded into MakeLoad through sc) and publish outputs.
    for (const Statement& stmt : band.stmts) {
      completed_outputs_.push_back(stmt.store_array);
    }
    program_.bands.push_back(std::move(band));
  }
};

}  // namespace

GeneratorOptions GeneratorOptions::Small() {
  GeneratorOptions o;
  o.max_bands = 2;
  o.max_depth = 2;
  o.max_trip = 5;
  o.max_domain = 64;
  o.max_stmts = 2;
  o.max_expr_ops = 3;
  o.max_transforms = 3;
  return o;
}

GeneratorOptions GeneratorOptions::Medium() {
  GeneratorOptions o;
  o.max_bands = 3;
  o.max_depth = 3;
  o.max_trip = 8;
  o.max_domain = 512;
  o.max_stmts = 3;
  o.max_expr_ops = 5;
  o.max_transforms = 4;
  return o;
}

GeneratorOptions GeneratorOptions::Large() {
  GeneratorOptions o;
  o.max_bands = 4;
  o.max_depth = 4;
  o.max_trip = 10;
  o.max_domain = 4096;
  o.max_stmts = 4;
  o.max_expr_ops = 8;
  o.max_arrays = 6;
  o.max_transforms = 6;
  return o;
}

NestProgram GenerateProgram(Rng& rng, const GeneratorOptions& options) {
  ProgramBuilder builder(rng, options);
  NestProgram program = builder.Build();
  // Legal-by-construction is the contract; a Verify failure here is a
  // generator bug the tests catch immediately.
  assert(program.Verify().ok());
  return program;
}

std::vector<TransformStep> GenerateTransforms(Rng& rng,
                                              const NestProgram& program,
                                              const GeneratorOptions& options) {
  std::vector<TransformStep> steps;
  NestProgram current = program;
  const int want = rng.NextInt(0, options.max_transforms);
  for (int i = 0; i < want; ++i) {
    bool applied = false;
    for (int attempt = 0; attempt < 8 && !applied; ++attempt) {
      TransformStep step;
      step.band = static_cast<int>(rng.NextIndex(current.bands.size()));
      const Band& band = current.bands[static_cast<size_t>(step.band)];
      switch (rng.NextInt(0, 3)) {
        case 0: {  // tile
          step.kind = TransformStep::Kind::kTile;
          const Loop& loop = band.loops[rng.NextIndex(band.loops.size())];
          std::vector<std::int64_t> divisors;
          for (std::int64_t d = 2; d <= loop.trip; ++d) {
            if (loop.trip % d == 0) divisors.push_back(d);
          }
          if (divisors.empty()) continue;
          step.a = loop.id;
          step.factor = divisors[rng.NextIndex(divisors.size())];
          break;
        }
        case 1: {  // interchange
          if (band.loops.size() < 2) continue;
          step.kind = TransformStep::Kind::kInterchange;
          step.a = static_cast<int>(rng.NextIndex(band.loops.size()));
          step.b = static_cast<int>(rng.NextIndex(band.loops.size()));
          if (step.a == step.b) continue;
          break;
        }
        case 2: {  // fuse
          if (current.bands.size() < 2) continue;
          step.kind = TransformStep::Kind::kFuse;
          step.band =
              static_cast<int>(rng.NextIndex(current.bands.size() - 1));
          break;
        }
        default: {  // unroll
          step.kind = TransformStep::Kind::kUnroll;
          const std::int64_t domain = band.DomainSize();
          std::vector<std::int64_t> divisors;
          for (const std::int64_t d : {2, 3, 4}) {
            if (domain % d == 0) divisors.push_back(d);
          }
          if (divisors.empty()) continue;
          step.factor = divisors[rng.NextIndex(divisors.size())];
          break;
        }
      }
      Result<NestProgram> next = ApplyTransform(current, step);
      if (!next.ok()) continue;
      current = std::move(next).value();
      steps.push_back(step);
      applied = true;
    }
  }
  return steps;
}

GeneratedCase GenerateCase(Rng& rng, const GeneratorOptions& options) {
  GeneratedCase c;
  c.program = GenerateProgram(rng, options);
  c.transforms = GenerateTransforms(rng, c.program, options);
  return c;
}

}  // namespace cgra::frontend
