// Lowering from the loop-nest IR to the mapper-facing IRs.
//
// Two targets, sharing statement lowering:
//
//  * LowerBand / LowerProgram: each band becomes ONE loop-body Dfg
//    (a Kernel) that the registry mappers accept, executing
//    DomainSize() iterations. Loop counters lower to an "odometer" of
//    carried selects — the innermost counter wraps mod its trip, each
//    outer counter advances when everything inside it wrapped — so the
//    body stays a plain stream kernel (no kIterIdx) and cf/unroll's
//    UnrollKernel applies directly for the band's unroll factor.
//    Reductions lower to a carried accumulator re-initialised by a
//    select when the address group starts (all reduction counters 0);
//    Verify's S-before-R prefix condition guarantees the group is one
//    contiguous run of iterations.
//
//  * LowerProgramToCdfg: the whole program becomes a CDFG — per band,
//    an init block zeroing the counters in the variable file and a
//    body block executing one domain point and rippling the odometer,
//    self-looping until the band's outermost counter wraps. This is
//    the input shape for direct CDFG mapping (cf/direct_cdfg) and
//    gives the fuzzer a fourth execution to compare.
//
// LoweringOptions::inject_bug is the fuzzer's deliberately-broken
// fixture: a valid-but-wrong Mapping cannot survive ValidateMapping,
// so the seeded defect lives here (stored values off by one), where
// only the differential oracles can catch it.
#pragma once

#include <vector>

#include "frontend/nest.hpp"
#include "ir/cdfg.hpp"
#include "ir/kernels.hpp"

namespace cgra::frontend {

struct LoweringOptions {
  /// Mis-lower on purpose: add 1 to every stored value (non-reduction)
  /// / every reduction contribution. The nest-level evaluator is not
  /// affected, so every program with an observable store miscompares.
  bool inject_bug = false;
};

/// Lowers one band to a loop-body Kernel. The kernel's input arrays
/// are the program's declared initial contents for ALL arrays (by
/// global array id); callers comparing band-by-band thread the
/// previous bands' output state in by overwriting `input.arrays`.
/// Applies the band's unroll factor through UnrollKernel.
Result<Kernel> LowerBand(const NestProgram& program, int band_idx,
                         const LoweringOptions& options = {});

/// LowerBand for every band, in band order.
Result<std::vector<Kernel>> LowerProgram(const NestProgram& program,
                                         const LoweringOptions& options = {});

/// The CDFG form: blocks chained entry -> (init_b -> body_b ...) ->
/// exit, counters and the loop-exit condition living in the variable
/// file. `input` carries the array contents and a variable file sized
/// for the deepest band.
struct CdfgLowering {
  Cdfg cdfg;
  ExecInput input;
};
Result<CdfgLowering> LowerProgramToCdfg(const NestProgram& program,
                                        const LoweringOptions& options = {});

}  // namespace cgra::frontend
