// JSON round-tripping for NestPrograms, transform lists, and the
// fuzzer's repro manifests. A manifest is SELF-CONTAINED: the full
// program (including array initial data), the transforms, the fuzz
// configuration knobs that matter for reproduction, and the observed
// verdict — `cgra_fuzz --replay file.json` needs nothing else. Format
// documented in docs/FRONTEND.md; `version` guards layout changes.
#pragma once

#include <string>
#include <vector>

#include "frontend/nest.hpp"
#include "frontend/transform.hpp"
#include "support/json.hpp"

namespace cgra::frontend {

/// Program as a JSON object (spliced via JsonWriter::Raw or stored
/// standalone).
std::string NestProgramToJson(const NestProgram& program);
Result<NestProgram> NestProgramFromJson(const Json& json);

std::string TransformsToJson(const std::vector<TransformStep>& steps);
Result<std::vector<TransformStep>> TransformsFromJson(const Json& json);

/// Everything needed to re-run one fuzz case. `verdict` / `phase` /
/// `detail` record what the original run observed so --replay can
/// check it reproduces the SAME failure, not just any failure.
struct ReproManifest {
  int version = 1;
  NestProgram program;
  std::vector<TransformStep> transforms;
  std::string fabric;
  std::string mapper;
  bool sandbox = false;
  bool inject_bug = false;
  std::uint64_t fault_seed = 0;  ///< 0 = no fault model
  int fault_cells = 0;
  std::string verdict;
  std::string phase;
  std::string detail;
};

std::string ReproManifestToJson(const ReproManifest& manifest);
Result<ReproManifest> ReproManifestFromJson(std::string_view text);

}  // namespace cgra::frontend
