#include "frontend/transform.hpp"

#include <algorithm>

#include "support/str.hpp"

namespace cgra::frontend {
namespace {

Result<NestProgram> Tile(NestProgram p, int band_idx, int loop_id,
                         std::int64_t factor) {
  Band& band = p.bands[static_cast<size_t>(band_idx)];
  int pos = -1;
  for (int i = 0; i < static_cast<int>(band.loops.size()); ++i) {
    if (band.loops[static_cast<size_t>(i)].id == loop_id) pos = i;
  }
  if (pos < 0) {
    return Error::InvalidArgument(
        StrFormat("tile: band %d has no loop id %d", band_idx, loop_id));
  }
  const std::int64_t trip = band.loops[static_cast<size_t>(pos)].trip;
  if (factor < 2 || factor > trip) {
    return Error::InvalidArgument(StrFormat(
        "tile: factor %lld outside [2, trip=%lld]",
        static_cast<long long>(factor), static_cast<long long>(trip)));
  }
  if (trip % factor != 0) {
    return Error::InvalidArgument(StrFormat(
        "tile: factor %lld does not divide trip %lld",
        static_cast<long long>(factor), static_cast<long long>(trip)));
  }
  int max_id = 0;
  for (const Loop& l : band.loops) max_id = std::max(max_id, l.id);
  const int outer_id = max_id + 1;
  const int inner_id = max_id + 2;
  band.loops[static_cast<size_t>(pos)] = Loop{outer_id, trip / factor};
  band.loops.insert(band.loops.begin() + pos + 1, Loop{inner_id, factor});
  for (Affine& r : band.recover) {
    const std::int64_t c = r.Coeff(loop_id);
    if (c == 0) continue;
    r.SetCoeff(loop_id, 0);
    r.SetCoeff(outer_id, c * factor);
    r.SetCoeff(inner_id, c);
  }
  return p;
}

Result<NestProgram> Interchange(NestProgram p, int band_idx, int a, int b) {
  Band& band = p.bands[static_cast<size_t>(band_idx)];
  const int n = static_cast<int>(band.loops.size());
  if (a < 0 || b < 0 || a >= n || b >= n || a == b) {
    return Error::InvalidArgument(StrFormat(
        "interchange: positions %d, %d invalid for a %d-loop band", a, b, n));
  }
  std::swap(band.loops[static_cast<size_t>(a)],
            band.loops[static_cast<size_t>(b)]);
  return p;
}

// True when every loop of the band maps one-to-one onto a variable
// with coefficient 1 (no tiling has split the domain).
bool IdentitySchedule(const Band& band) {
  for (const int v : band.Vars()) {
    const Affine& r = band.recover[static_cast<size_t>(v)];
    const std::vector<int> support = r.Support();
    if (support.size() != 1 || r.Coeff(support[0]) != 1) return false;
  }
  return true;
}

Result<NestProgram> Fuse(NestProgram p, int band_idx) {
  if (band_idx + 1 >= static_cast<int>(p.bands.size())) {
    return Error::InvalidArgument(
        StrFormat("fuse: band %d has no successor", band_idx));
  }
  Band& first = p.bands[static_cast<size_t>(band_idx)];
  Band& second = p.bands[static_cast<size_t>(band_idx) + 1];
  if (first.loops.size() != second.loops.size()) {
    return Error::InvalidArgument(StrFormat(
        "fuse: bands %d and %d have different depths", band_idx,
        band_idx + 1));
  }
  for (size_t i = 0; i < first.loops.size(); ++i) {
    if (first.loops[i].trip != second.loops[i].trip) {
      return Error::InvalidArgument(StrFormat(
          "fuse: loop %zu trips differ (%lld vs %lld)", i,
          static_cast<long long>(first.loops[i].trip),
          static_cast<long long>(second.loops[i].trip)));
    }
  }
  if (!IdentitySchedule(first) || !IdentitySchedule(second)) {
    return Error::InvalidArgument(
        "fuse: both bands must be untiled (identity recovery)");
  }
  if (first.unroll != 1 || second.unroll != 1) {
    return Error::InvalidArgument("fuse: both bands must be un-unrolled");
  }

  // Positional variable substitution: the second band's variable fed
  // by the loop at position i becomes the first band's variable at i.
  std::vector<int> subst(static_cast<size_t>(p.num_vars), -1);
  for (size_t i = 0; i < first.loops.size(); ++i) {
    int v1 = -1;
    int v2 = -1;
    for (int v = 0; v < p.num_vars; ++v) {
      if (first.recover.size() > static_cast<size_t>(v) &&
          first.recover[static_cast<size_t>(v)].Coeff(first.loops[i].id) != 0) {
        v1 = v;
      }
      if (second.recover.size() > static_cast<size_t>(v) &&
          second.recover[static_cast<size_t>(v)].Coeff(second.loops[i].id) !=
              0) {
        v2 = v;
      }
    }
    if (v1 < 0 || v2 < 0) {
      return Error::Internal("fuse: loop feeds no variable");
    }
    subst[static_cast<size_t>(v2)] = v1;
  }

  auto rewrite_affine = [&](Affine& a) {
    Affine out;
    out.c0 = a.c0;
    for (const int v : a.Support()) {
      const int to = subst[static_cast<size_t>(v)] >= 0
                         ? subst[static_cast<size_t>(v)]
                         : v;
      out.SetCoeff(to, out.Coeff(to) + a.Coeff(v));
    }
    a = out;
  };
  for (Statement stmt : second.stmts) {
    for (ExprNode& node : stmt.nodes) {
      if (node.kind == ExprKind::kIndex &&
          subst[static_cast<size_t>(node.var)] >= 0) {
        node.var = subst[static_cast<size_t>(node.var)];
      }
      if (node.kind == ExprKind::kLoad) rewrite_affine(node.addr);
    }
    rewrite_affine(stmt.store_addr);
    first.stmts.push_back(std::move(stmt));
  }
  p.bands.erase(p.bands.begin() + band_idx + 1);
  return p;
}

Result<NestProgram> Unroll(NestProgram p, int band_idx, std::int64_t factor) {
  Band& band = p.bands[static_cast<size_t>(band_idx)];
  if (factor < 1 || factor > kMaxDomainSize) {
    return Error::InvalidArgument(StrFormat(
        "unroll: factor %lld out of range", static_cast<long long>(factor)));
  }
  const std::int64_t domain = band.DomainSize();
  if (domain % factor != 0) {
    return Error::InvalidArgument(StrFormat(
        "unroll: factor %lld does not divide the band's %lld iterations "
        "(UnrollKernel requires an exact split)",
        static_cast<long long>(factor), static_cast<long long>(domain)));
  }
  band.unroll = static_cast<int>(factor);
  return p;
}

}  // namespace

std::string TransformStep::ToString() const {
  switch (kind) {
    case Kind::kTile:
      return StrFormat("tile(band %d, loop %d, x%lld)", band, a,
                       static_cast<long long>(factor));
    case Kind::kInterchange:
      return StrFormat("interchange(band %d, pos %d <-> %d)", band, a, b);
    case Kind::kFuse:
      return StrFormat("fuse(bands %d, %d)", band, band + 1);
    case Kind::kUnroll:
      return StrFormat("unroll(band %d, x%lld)", band,
                       static_cast<long long>(factor));
  }
  return "?";
}

Result<NestProgram> ApplyTransform(const NestProgram& program,
                                   const TransformStep& step) {
  if (step.band < 0 || step.band >= static_cast<int>(program.bands.size())) {
    return Error::InvalidArgument(
        StrFormat("transform names band %d of %zu", step.band,
                  program.bands.size()));
  }
  Result<NestProgram> out = [&]() -> Result<NestProgram> {
    switch (step.kind) {
      case TransformStep::Kind::kTile:
        return Tile(program, step.band, step.a, step.factor);
      case TransformStep::Kind::kInterchange:
        return Interchange(program, step.band, step.a, step.b);
      case TransformStep::Kind::kFuse:
        return Fuse(program, step.band);
      case TransformStep::Kind::kUnroll:
        return Unroll(program, step.band, step.factor);
    }
    return Error::InvalidArgument("unknown transform kind");
  }();
  if (!out.ok()) return out;
  // Legality is whatever Verify accepts: interchange can break the
  // S-before-R prefix, fusion can demand forwarding that has no exact
  // address match. Those surface here as structured errors.
  if (Status s = out->Verify(); !s.ok()) {
    return Error::InvalidArgument(StrFormat(
        "%s produces an illegal schedule: %s", step.ToString().c_str(),
        s.error().message.c_str()));
  }
  return out;
}

Result<NestProgram> ApplyTransforms(const NestProgram& program,
                                    const std::vector<TransformStep>& steps,
                                    std::vector<int>* applied) {
  NestProgram current = program;
  for (int i = 0; i < static_cast<int>(steps.size()); ++i) {
    Result<NestProgram> next =
        ApplyTransform(current, steps[static_cast<size_t>(i)]);
    if (next.ok()) {
      current = std::move(next).value();
      if (applied != nullptr) applied->push_back(i);
    }
  }
  return current;
}

}  // namespace cgra::frontend
