#include "frontend/nest.hpp"

#include <algorithm>

#include "support/bytes.hpp"
#include "support/str.hpp"

namespace cgra::frontend {
namespace {

// All arithmetic in the frontend is wraparound int64, matching EvalAlu.
std::int64_t WrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
std::int64_t WrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

// Min/max of an affine over the box [0, extent_i) for each support
// index. Extents come from the caller's index space (variables or
// loops). Assumes the small magnitudes Verify admits, so the sums
// cannot overflow.
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};
Range AffineRange(const Affine& a,
                  const std::vector<std::int64_t>& extents) {
  Range r{a.c0, a.c0};
  for (int i = 0; i < static_cast<int>(a.coeff.size()); ++i) {
    const std::int64_t c = a.coeff[static_cast<size_t>(i)];
    if (c == 0) continue;
    const std::int64_t span =
        (i < static_cast<int>(extents.size()) ? extents[static_cast<size_t>(i)]
                                              : 1) -
        1;
    if (c > 0) {
      r.hi += c * span;
    } else {
      r.lo += c * span;
    }
  }
  return r;
}

Error StmtError(int band, int stmt, const std::string& what) {
  return Error::InvalidArgument(
      StrFormat("band %d statement %d: %s", band, stmt, what.c_str()));
}

}  // namespace

void Affine::SetCoeff(int i, std::int64_t c) {
  if (i < 0) return;
  if (i >= static_cast<int>(coeff.size())) {
    if (c == 0) return;
    coeff.resize(static_cast<size_t>(i) + 1, 0);
  }
  coeff[static_cast<size_t>(i)] = c;
}

std::vector<int> Affine::Support() const {
  std::vector<int> s;
  for (int i = 0; i < static_cast<int>(coeff.size()); ++i) {
    if (coeff[static_cast<size_t>(i)] != 0) s.push_back(i);
  }
  return s;
}

std::vector<int> Band::Vars() const {
  std::vector<int> vars;
  for (int v = 0; v < static_cast<int>(recover.size()); ++v) {
    if (!recover[static_cast<size_t>(v)].Support().empty()) vars.push_back(v);
  }
  return vars;
}

std::vector<int> Band::LoopsOf(int v) const {
  std::vector<int> out;
  if (v < 0 || v >= static_cast<int>(recover.size())) return out;
  const Affine& r = recover[static_cast<size_t>(v)];
  for (const Loop& l : loops) {
    if (r.Coeff(l.id) != 0) out.push_back(l.id);
  }
  return out;
}

std::int64_t Band::DomainSize() const {
  std::int64_t total = 1;
  for (const Loop& l : loops) {
    if (l.trip <= 0) return 0;
    if (total > kMaxDomainSize / l.trip + 1) return kMaxDomainSize + 1;
    total *= l.trip;
  }
  return total;
}

bool IsReductionOpcode(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kMul:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
      return true;
    default:
      return false;
  }
}

Status NestProgram::Verify() const {
  if (num_vars < 0 ||
      static_cast<int>(var_extent.size()) != num_vars) {
    return Error::InvalidArgument(
        StrFormat("var_extent has %zu entries for %d variables",
                  var_extent.size(), num_vars));
  }
  for (int v = 0; v < num_vars; ++v) {
    if (var_extent[static_cast<size_t>(v)] <= 0) {
      return Error::InvalidArgument(StrFormat(
          "variable %d has zero-trip extent %lld (empty loops are "
          "rejected, not lowered)",
          v, static_cast<long long>(var_extent[static_cast<size_t>(v)])));
    }
  }
  for (int a = 0; a < static_cast<int>(arrays.size()); ++a) {
    const ArrayDecl& decl = arrays[static_cast<size_t>(a)];
    if (decl.size <= 0) {
      return Error::InvalidArgument(
          StrFormat("array %d (%s) has size %d", a, decl.name.c_str(),
                    decl.size));
    }
    if (static_cast<int>(decl.init.size()) != decl.size) {
      return Error::InvalidArgument(StrFormat(
          "array %d (%s): init has %zu values for size %d", a,
          decl.name.c_str(), decl.init.size(), decl.size));
    }
  }

  // Which statement (global order) owns each non-input array.
  std::vector<int> writer(arrays.size(), -1);
  int global_stmt = 0;

  for (int b = 0; b < static_cast<int>(bands.size()); ++b) {
    const Band& band = bands[static_cast<size_t>(b)];
    if (band.loops.empty()) {
      return Error::InvalidArgument(StrFormat("band %d has no loops", b));
    }
    if (band.unroll < 1) {
      return Error::InvalidArgument(
          StrFormat("band %d: unroll factor %d < 1", b, band.unroll));
    }
    std::vector<int> seen_ids;
    for (const Loop& l : band.loops) {
      if (l.trip <= 0) {
        return Error::InvalidArgument(StrFormat(
            "band %d loop %d is zero-trip (trip %lld)", b, l.id,
            static_cast<long long>(l.trip)));
      }
      if (l.id < 0) {
        return Error::InvalidArgument(StrFormat("band %d: negative loop id", b));
      }
      if (std::find(seen_ids.begin(), seen_ids.end(), l.id) != seen_ids.end()) {
        return Error::InvalidArgument(
            StrFormat("band %d: duplicate loop id %d", b, l.id));
      }
      seen_ids.push_back(l.id);
    }
    if (band.DomainSize() > kMaxDomainSize) {
      return Error::InvalidArgument(StrFormat(
          "band %d domain exceeds %lld points", b,
          static_cast<long long>(kMaxDomainSize)));
    }
    if (static_cast<int>(band.recover.size()) > num_vars) {
      return Error::InvalidArgument(
          StrFormat("band %d: recover map references unknown variables", b));
    }

    // Loop-id -> trip, and the one-loop-one-variable invariant.
    std::vector<std::int64_t> loop_trip;
    for (const Loop& l : band.loops) {
      if (l.id >= static_cast<int>(loop_trip.size())) {
        loop_trip.resize(static_cast<size_t>(l.id) + 1, 0);
      }
      loop_trip[static_cast<size_t>(l.id)] = l.trip;
    }
    std::vector<int> feeder(loop_trip.size(), -1);
    const std::vector<int> band_vars = band.Vars();
    for (const int v : band_vars) {
      const Affine& r = band.recover[static_cast<size_t>(v)];
      if (r.c0 != 0) {
        return Error::InvalidArgument(StrFormat(
            "band %d: recover[%d] has nonzero constant", b, v));
      }
      for (const int id : r.Support()) {
        if (id >= static_cast<int>(loop_trip.size()) ||
            loop_trip[static_cast<size_t>(id)] == 0) {
          return Error::InvalidArgument(StrFormat(
              "band %d: recover[%d] references loop id %d not in the band",
              b, v, id));
        }
        if (feeder[static_cast<size_t>(id)] != -1) {
          return Error::InvalidArgument(StrFormat(
              "band %d: loop id %d feeds variables %d and %d", b, id,
              feeder[static_cast<size_t>(id)], v));
        }
        feeder[static_cast<size_t>(id)] = v;
      }
      // Recovery must cover the variable's original range exactly.
      const Range range =
          AffineRange(band.recover[static_cast<size_t>(v)], loop_trip);
      if (range.lo != 0 ||
          range.hi != var_extent[static_cast<size_t>(v)] - 1) {
        return Error::InvalidArgument(StrFormat(
            "band %d: recover[%d] spans [%lld, %lld], extent is %lld", b, v,
            static_cast<long long>(range.lo),
            static_cast<long long>(range.hi),
            static_cast<long long>(var_extent[static_cast<size_t>(v)])));
      }
    }
    for (const Loop& l : band.loops) {
      if (feeder[static_cast<size_t>(l.id)] == -1) {
        return Error::InvalidArgument(
            StrFormat("band %d: loop id %d feeds no variable", b, l.id));
      }
    }

    // Arrays written earlier in THIS band, with their store address,
    // for the exact-match forwarding rule.
    std::vector<std::pair<int, const Statement*>> band_writes;

    if (band.stmts.empty()) {
      return Error::InvalidArgument(StrFormat("band %d has no statements", b));
    }
    for (int s = 0; s < static_cast<int>(band.stmts.size()); ++s) {
      const Statement& stmt = band.stmts[static_cast<size_t>(s)];

      // --- expression pool ---------------------------------------------
      if (stmt.nodes.empty() || stmt.root < 0 ||
          stmt.root >= static_cast<int>(stmt.nodes.size())) {
        return StmtError(b, s, "empty expression pool or bad root");
      }
      for (int n = 0; n < static_cast<int>(stmt.nodes.size()); ++n) {
        const ExprNode& node = stmt.nodes[static_cast<size_t>(n)];
        auto check_child = [&](int c) {
          return c >= 0 && c < n;  // children strictly earlier: acyclic
        };
        switch (node.kind) {
          case ExprKind::kConst:
            break;
          case ExprKind::kIndex:
            if (node.var < 0 || node.var >= num_vars ||
                std::find(band_vars.begin(), band_vars.end(), node.var) ==
                    band_vars.end()) {
              return StmtError(
                  b, s, StrFormat("node %d indexes foreign variable %d", n,
                                  node.var));
            }
            break;
          case ExprKind::kLoad: {
            if (node.array < 0 ||
                node.array >= static_cast<int>(arrays.size())) {
              return StmtError(
                  b, s, StrFormat("node %d loads unknown array %d", n,
                                  node.array));
            }
            for (const int v : node.addr.Support()) {
              if (std::find(band_vars.begin(), band_vars.end(), v) ==
                  band_vars.end()) {
                return StmtError(
                    b, s,
                    StrFormat("node %d address uses foreign variable %d", n,
                              v));
              }
            }
            const Range range = AffineRange(node.addr, var_extent);
            const ArrayDecl& decl = arrays[static_cast<size_t>(node.array)];
            if (range.lo < 0 || range.hi >= decl.size) {
              return StmtError(
                  b, s,
                  StrFormat("node %d address range [%lld, %lld] escapes "
                            "array %s[%d]",
                            n, static_cast<long long>(range.lo),
                            static_cast<long long>(range.hi),
                            decl.name.c_str(), decl.size));
            }
            // Load legality: input array, an earlier band's output, or
            // an exact-address forward from earlier in this band.
            if (!decl.is_input) {
              const int w = writer[static_cast<size_t>(node.array)];
              if (w == -1) {
                return StmtError(
                    b, s,
                    StrFormat("node %d reads array %s before any write", n,
                              decl.name.c_str()));
              }
              const Statement* producer = nullptr;
              for (const auto& [arr, ps] : band_writes) {
                if (arr == node.array) producer = ps;
              }
              if (producer != nullptr) {
                if (producer->is_reduction) {
                  return StmtError(b, s,
                                   StrFormat("node %d reads mid-reduction "
                                             "array %s within the band",
                                             n, decl.name.c_str()));
                }
                if (!(node.addr == producer->store_addr)) {
                  return StmtError(
                      b, s,
                      StrFormat("node %d reads array %s at a different "
                                "address than this band writes it "
                                "(forwarding needs an exact match)",
                                n, decl.name.c_str()));
                }
              }
            }
            break;
          }
          case ExprKind::kUnary:
            if (OpArity(node.op) != 1) {
              return StmtError(b, s,
                               StrFormat("node %d: %s is not unary", n,
                                         std::string(OpName(node.op)).c_str()));
            }
            if (!check_child(node.a)) {
              return StmtError(b, s, StrFormat("node %d: bad child", n));
            }
            break;
          case ExprKind::kBinary:
            if (OpArity(node.op) != 2) {
              return StmtError(b, s,
                               StrFormat("node %d: %s is not binary", n,
                                         std::string(OpName(node.op)).c_str()));
            }
            if (!check_child(node.a) || !check_child(node.b)) {
              return StmtError(b, s, StrFormat("node %d: bad child", n));
            }
            break;
        }
      }

      // --- store -------------------------------------------------------
      if (stmt.store_array < 0 ||
          stmt.store_array >= static_cast<int>(arrays.size())) {
        return StmtError(b, s, "stores to unknown array");
      }
      const ArrayDecl& out = arrays[static_cast<size_t>(stmt.store_array)];
      if (out.is_input) {
        return StmtError(b, s,
                         StrFormat("stores to input array %s", out.name.c_str()));
      }
      if (writer[static_cast<size_t>(stmt.store_array)] != -1) {
        return StmtError(
            b, s,
            StrFormat("array %s already written by statement %d (one "
                      "writer per array)",
                      out.name.c_str(),
                      writer[static_cast<size_t>(stmt.store_array)]));
      }
      for (const int v : stmt.store_addr.Support()) {
        if (std::find(band_vars.begin(), band_vars.end(), v) ==
            band_vars.end()) {
          return StmtError(
              b, s, StrFormat("store address uses foreign variable %d", v));
        }
      }
      {
        const Range range = AffineRange(stmt.store_addr, var_extent);
        if (range.lo < 0 || range.hi >= out.size) {
          return StmtError(
              b, s,
              StrFormat("store address range [%lld, %lld] escapes %s[%d]",
                        static_cast<long long>(range.lo),
                        static_cast<long long>(range.hi), out.name.c_str(),
                        out.size));
        }
      }
      // Injectivity over the address support (sufficient condition:
      // positive coefficients, each dominating the reach of all
      // smaller ones — row-major linearisations satisfy this).
      {
        std::vector<std::pair<std::int64_t, int>> by_mag;
        for (const int v : stmt.store_addr.Support()) {
          // Extent-1 variables are constant 0: no effect on the
          // address, so they are exempt from the chain.
          if (var_extent[static_cast<size_t>(v)] <= 1) continue;
          const std::int64_t c = stmt.store_addr.Coeff(v);
          if (c <= 0) {
            return StmtError(
                b, s,
                StrFormat("store address coefficient for variable %d is "
                          "not positive",
                          v));
          }
          by_mag.emplace_back(c, v);
        }
        std::sort(by_mag.begin(), by_mag.end());
        std::int64_t reach = 0;  // max value of the smaller terms
        for (const auto& [c, v] : by_mag) {
          if (c < reach + 1) {
            return StmtError(
                b, s,
                "store address is not injective over its variables");
          }
          reach += c * (var_extent[static_cast<size_t>(v)] - 1);
        }
      }

      if (!stmt.is_reduction) {
        // Every band variable must appear in the address: a variable
        // the address ignores would make the final value "last writer
        // wins", which legal interchanges reorder.
        for (const int v : band_vars) {
          if (var_extent[static_cast<size_t>(v)] > 1 &&
              stmt.store_addr.Coeff(v) == 0) {
            return StmtError(
                b, s,
                StrFormat("non-reduction store ignores variable %d "
                          "(iteration order would pick the surviving "
                          "write; make it a reduction instead)",
                          v));
          }
        }
      }

      if (stmt.is_reduction) {
        if (!IsReductionOpcode(stmt.reduction_op)) {
          return StmtError(
              b, s,
              StrFormat("%s is not a commutative-associative reduction "
                        "operator",
                        std::string(OpName(stmt.reduction_op)).c_str()));
        }
        // S-before-R: every loop feeding an address variable must be
        // scheduled outside every loop feeding a reduction variable,
        // so lowering's carried accumulator sees each address group as
        // one contiguous run.
        const std::vector<int> support = stmt.store_addr.Support();
        auto in_support = [&](int v) {
          return std::find(support.begin(), support.end(), v) != support.end();
        };
        int last_s_pos = -1;
        int first_r_pos = static_cast<int>(band.loops.size());
        for (int pos = 0; pos < static_cast<int>(band.loops.size()); ++pos) {
          // Trip-1 loops cannot break group contiguity.
          if (band.loops[static_cast<size_t>(pos)].trip == 1) continue;
          const int v = feeder[static_cast<size_t>(band.loops[static_cast<size_t>(pos)].id)];
          if (in_support(v)) {
            last_s_pos = std::max(last_s_pos, pos);
          } else {
            first_r_pos = std::min(first_r_pos, pos);
          }
        }
        if (last_s_pos > first_r_pos) {
          return StmtError(
              b, s,
              "reduction loops are scheduled outside address loops (the "
              "S-before-R prefix condition; interchange refuses this "
              "order)");
        }
      }

      writer[static_cast<size_t>(stmt.store_array)] = global_stmt;
      band_writes.emplace_back(stmt.store_array, &stmt);
      ++global_stmt;
    }
  }
  return Status::Ok();
}

namespace {
void AppendAffine(ByteWriter& w, const Affine& a) {
  w.I64(a.c0);
  const std::vector<int> support = a.Support();
  w.U32(static_cast<std::uint32_t>(support.size()));
  for (const int i : support) {
    w.I32(i);
    w.I64(a.Coeff(i));
  }
}
}  // namespace

void NestProgram::AppendCanonicalBytes(ByteWriter& w) const {
  w.U32(1);  // layout version
  w.I32(num_vars);
  for (const std::int64_t e : var_extent) w.I64(e);
  w.U32(static_cast<std::uint32_t>(arrays.size()));
  for (const ArrayDecl& a : arrays) {
    w.I32(a.size);
    w.Bool(a.is_input);
    for (const std::int64_t v : a.init) w.I64(v);
  }
  w.U32(static_cast<std::uint32_t>(bands.size()));
  for (const Band& band : bands) {
    w.I32(band.unroll);
    w.U32(static_cast<std::uint32_t>(band.loops.size()));
    for (const Loop& l : band.loops) {
      w.I32(l.id);
      w.I64(l.trip);
    }
    w.U32(static_cast<std::uint32_t>(band.recover.size()));
    for (const Affine& r : band.recover) AppendAffine(w, r);
    w.U32(static_cast<std::uint32_t>(band.stmts.size()));
    for (const Statement& s : band.stmts) {
      w.I32(s.store_array);
      AppendAffine(w, s.store_addr);
      w.Bool(s.is_reduction);
      w.U8(static_cast<std::uint8_t>(s.reduction_op));
      w.I64(s.reduction_init);
      w.I32(s.root);
      w.U32(static_cast<std::uint32_t>(s.nodes.size()));
      for (const ExprNode& n : s.nodes) {
        w.U8(static_cast<std::uint8_t>(n.kind));
        w.U8(static_cast<std::uint8_t>(n.op));
        w.I64(n.imm);
        w.I32(n.var);
        w.I32(n.array);
        AppendAffine(w, n.addr);
        w.I32(n.a);
        w.I32(n.b);
      }
    }
  }
}

std::string NestProgram::Digest() const {
  ByteWriter w;
  AppendCanonicalBytes(w);
  return Hex16(Fnv1a64(w.bytes()));
}

namespace {

std::string AffineToString(const Affine& a, const std::string& prefix) {
  std::string out;
  for (const int i : a.Support()) {
    if (!out.empty()) out += " + ";
    const std::int64_t c = a.Coeff(i);
    if (c == 1) {
      out += StrFormat("%s%d", prefix.c_str(), i);
    } else {
      out += StrFormat("%lld*%s%d", static_cast<long long>(c),
                       prefix.c_str(), i);
    }
  }
  if (a.c0 != 0 || out.empty()) {
    if (!out.empty()) out += " + ";
    out += StrFormat("%lld", static_cast<long long>(a.c0));
  }
  return out;
}

std::string ExprToString(const Statement& s, int n) {
  const ExprNode& node = s.nodes[static_cast<size_t>(n)];
  switch (node.kind) {
    case ExprKind::kConst:
      return StrFormat("%lld", static_cast<long long>(node.imm));
    case ExprKind::kIndex:
      return StrFormat("v%d", node.var);
    case ExprKind::kLoad:
      return StrFormat("A%d[%s]", node.array,
                       AffineToString(node.addr, "v").c_str());
    case ExprKind::kUnary:
      return StrFormat("%s(%s)", std::string(OpName(node.op)).c_str(),
                       ExprToString(s, node.a).c_str());
    case ExprKind::kBinary:
      return StrFormat("%s(%s, %s)", std::string(OpName(node.op)).c_str(),
                       ExprToString(s, node.a).c_str(),
                       ExprToString(s, node.b).c_str());
  }
  return "?";
}

}  // namespace

std::string NestProgram::ToString() const {
  std::string out;
  for (int a = 0; a < static_cast<int>(arrays.size()); ++a) {
    const ArrayDecl& decl = arrays[static_cast<size_t>(a)];
    out += StrFormat("array A%d \"%s\"[%d]%s\n", a, decl.name.c_str(),
                     decl.size, decl.is_input ? " input" : "");
  }
  for (int b = 0; b < static_cast<int>(bands.size()); ++b) {
    const Band& band = bands[static_cast<size_t>(b)];
    std::string indent;
    out += StrFormat("band %d%s:\n", b,
                     band.unroll > 1
                         ? StrFormat(" (unroll x%d)", band.unroll).c_str()
                         : "");
    for (const Loop& l : band.loops) {
      indent += "  ";
      out += StrFormat("%sfor l%d in 0..%lld:\n", indent.c_str(), l.id,
                       static_cast<long long>(l.trip));
    }
    indent += "  ";
    for (const int v : band.Vars()) {
      out += StrFormat("%sv%d = %s\n", indent.c_str(), v,
                       AffineToString(band.recover[static_cast<size_t>(v)], "l")
                           .c_str());
    }
    for (const Statement& s : band.stmts) {
      if (s.is_reduction) {
        out += StrFormat(
            "%sA%d[%s] %s= %s  (init %lld)\n", indent.c_str(), s.store_array,
            AffineToString(s.store_addr, "v").c_str(),
            std::string(OpName(s.reduction_op)).c_str(),
            ExprToString(s, s.root).c_str(),
            static_cast<long long>(s.reduction_init));
      } else {
        out += StrFormat("%sA%d[%s] = %s\n", indent.c_str(), s.store_array,
                         AffineToString(s.store_addr, "v").c_str(),
                         ExprToString(s, s.root).c_str());
      }
    }
  }
  return out;
}

Result<NestEvalResult> EvaluateProgram(const NestProgram& program) {
  if (Status s = program.Verify(); !s.ok()) return s.error();

  NestEvalResult result;
  result.arrays.reserve(program.arrays.size());
  for (const ArrayDecl& a : program.arrays) result.arrays.push_back(a.init);

  std::vector<std::int64_t> var_value(
      static_cast<size_t>(program.num_vars), 0);

  auto eval_affine = [&](const Affine& a) {
    std::int64_t acc = a.c0;
    for (const int v : a.Support()) {
      acc = WrapAdd(acc, WrapMul(a.Coeff(v), var_value[static_cast<size_t>(v)]));
    }
    return acc;
  };

  for (const Band& band : program.bands) {
    const std::vector<int> band_vars = band.Vars();
    const int n = static_cast<int>(band.loops.size());
    std::vector<std::int64_t> counters(static_cast<size_t>(n), 0);

    // Per-statement scratch for expression values.
    std::vector<std::int64_t> scratch;

    bool done = false;
    while (!done) {
      // Recover original variable values from the counters.
      for (const int v : band_vars) {
        const Affine& r = band.recover[static_cast<size_t>(v)];
        std::int64_t val = 0;
        for (int pos = 0; pos < n; ++pos) {
          const std::int64_t c = r.Coeff(band.loops[static_cast<size_t>(pos)].id);
          if (c != 0) {
            val = WrapAdd(val, WrapMul(c, counters[static_cast<size_t>(pos)]));
          }
        }
        var_value[static_cast<size_t>(v)] = val;
      }

      for (const Statement& stmt : band.stmts) {
        scratch.assign(stmt.nodes.size(), 0);
        for (int i = 0; i < static_cast<int>(stmt.nodes.size()); ++i) {
          const ExprNode& node = stmt.nodes[static_cast<size_t>(i)];
          std::int64_t v = 0;
          switch (node.kind) {
            case ExprKind::kConst:
              v = node.imm;
              break;
            case ExprKind::kIndex:
              v = var_value[static_cast<size_t>(node.var)];
              break;
            case ExprKind::kLoad: {
              const std::int64_t addr = eval_affine(node.addr);
              const auto& arr = result.arrays[static_cast<size_t>(node.array)];
              if (addr < 0 || addr >= static_cast<std::int64_t>(arr.size())) {
                return Error::Internal(StrFormat(
                    "evaluator load out of range: A%d[%lld]", node.array,
                    static_cast<long long>(addr)));
              }
              v = arr[static_cast<size_t>(addr)];
              break;
            }
            case ExprKind::kUnary:
              v = EvalAlu(node.op, scratch[static_cast<size_t>(node.a)], 0, 0);
              break;
            case ExprKind::kBinary:
              v = EvalAlu(node.op, scratch[static_cast<size_t>(node.a)],
                          scratch[static_cast<size_t>(node.b)], 0);
              break;
          }
          scratch[static_cast<size_t>(i)] = v;
        }
        const std::int64_t rhs = scratch[static_cast<size_t>(stmt.root)];
        const std::int64_t addr = eval_affine(stmt.store_addr);
        auto& arr = result.arrays[static_cast<size_t>(stmt.store_array)];
        if (addr < 0 || addr >= static_cast<std::int64_t>(arr.size())) {
          return Error::Internal(StrFormat(
              "evaluator store out of range: A%d[%lld]", stmt.store_array,
              static_cast<long long>(addr)));
        }
        if (stmt.is_reduction) {
          // First visit of this address group <=> every reduction
          // variable (those absent from the address) reads 0.
          bool group_start = true;
          const std::vector<int> support = stmt.store_addr.Support();
          for (const int v : band_vars) {
            if (std::find(support.begin(), support.end(), v) !=
                support.end()) {
              continue;
            }
            if (var_value[static_cast<size_t>(v)] != 0) {
              group_start = false;
              break;
            }
          }
          const std::int64_t base =
              group_start ? stmt.reduction_init : arr[static_cast<size_t>(addr)];
          arr[static_cast<size_t>(addr)] = EvalAlu(stmt.reduction_op, base, rhs, 0);
        } else {
          arr[static_cast<size_t>(addr)] = rhs;
        }
      }

      // Row-major advance over the current loop order.
      done = true;
      for (int pos = n - 1; pos >= 0; --pos) {
        if (++counters[static_cast<size_t>(pos)] <
            band.loops[static_cast<size_t>(pos)].trip) {
          done = false;
          break;
        }
        counters[static_cast<size_t>(pos)] = 0;
      }
    }
    result.after_band.push_back(result.arrays);
  }
  return result;
}

}  // namespace cgra::frontend
