#include "frontend/serialize.hpp"

#include "support/str.hpp"

namespace cgra::frontend {
namespace {

void WriteAffine(JsonWriter& w, const Affine& a) {
  w.BeginObject().Key("c0").Int(a.c0).Key("coeff").BeginArray();
  for (const std::int64_t c : a.coeff) w.Int(c);
  w.EndArray().EndObject();
}

Affine ReadAffine(const Json& j) {
  Affine a;
  if (const Json* c0 = j.Find("c0")) a.c0 = c0->AsInt();
  if (const Json* coeff = j.Find("coeff")) {
    for (const Json& c : coeff->items()) a.coeff.push_back(c.AsInt());
  }
  return a;
}

// Opcode <-> mnemonic via OpName; the opcode space is small, scan it.
Opcode OpcodeByName(const std::string& name, bool* ok) {
  for (int i = 0; i <= static_cast<int>(Opcode::kVarOut); ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (OpName(op) == name) {
      *ok = true;
      return op;
    }
  }
  *ok = false;
  return Opcode::kAdd;
}

const char* ExprKindName(ExprKind k) {
  switch (k) {
    case ExprKind::kConst: return "const";
    case ExprKind::kIndex: return "index";
    case ExprKind::kLoad: return "load";
    case ExprKind::kUnary: return "unary";
    case ExprKind::kBinary: return "binary";
  }
  return "?";
}

ExprKind ExprKindByName(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "const") return ExprKind::kConst;
  if (name == "index") return ExprKind::kIndex;
  if (name == "load") return ExprKind::kLoad;
  if (name == "unary") return ExprKind::kUnary;
  if (name == "binary") return ExprKind::kBinary;
  *ok = false;
  return ExprKind::kConst;
}

const char* TransformKindName(TransformStep::Kind k) {
  switch (k) {
    case TransformStep::Kind::kTile: return "tile";
    case TransformStep::Kind::kInterchange: return "interchange";
    case TransformStep::Kind::kFuse: return "fuse";
    case TransformStep::Kind::kUnroll: return "unroll";
  }
  return "?";
}

}  // namespace

std::string NestProgramToJson(const NestProgram& program) {
  JsonWriter w;
  w.BeginObject();
  w.Key("num_vars").Int(program.num_vars);
  w.Key("var_extent").BeginArray();
  for (const std::int64_t e : program.var_extent) w.Int(e);
  w.EndArray();
  w.Key("arrays").BeginArray();
  for (const ArrayDecl& a : program.arrays) {
    w.BeginObject()
        .Key("name").String(a.name)
        .Key("size").Int(a.size)
        .Key("input").Bool(a.is_input)
        .Key("init").BeginArray();
    for (const std::int64_t v : a.init) w.Int(v);
    w.EndArray().EndObject();
  }
  w.EndArray();
  w.Key("bands").BeginArray();
  for (const Band& band : program.bands) {
    w.BeginObject().Key("unroll").Int(band.unroll).Key("loops").BeginArray();
    for (const Loop& l : band.loops) {
      w.BeginObject().Key("id").Int(l.id).Key("trip").Int(l.trip).EndObject();
    }
    w.EndArray().Key("recover").BeginArray();
    for (const Affine& r : band.recover) WriteAffine(w, r);
    w.EndArray().Key("stmts").BeginArray();
    for (const Statement& s : band.stmts) {
      w.BeginObject()
          .Key("store_array").Int(s.store_array)
          .Key("store_addr");
      WriteAffine(w, s.store_addr);
      w.Key("reduction").Bool(s.is_reduction)
          .Key("reduction_op").String(OpName(s.reduction_op))
          .Key("reduction_init").Int(s.reduction_init)
          .Key("root").Int(s.root)
          .Key("nodes").BeginArray();
      for (const ExprNode& n : s.nodes) {
        w.BeginObject().Key("kind").String(ExprKindName(n.kind));
        switch (n.kind) {
          case ExprKind::kConst:
            w.Key("imm").Int(n.imm);
            break;
          case ExprKind::kIndex:
            w.Key("var").Int(n.var);
            break;
          case ExprKind::kLoad:
            w.Key("array").Int(n.array).Key("addr");
            WriteAffine(w, n.addr);
            break;
          case ExprKind::kUnary:
            w.Key("op").String(OpName(n.op)).Key("a").Int(n.a);
            break;
          case ExprKind::kBinary:
            w.Key("op").String(OpName(n.op)).Key("a").Int(n.a).Key("b").Int(
                n.b);
            break;
        }
        w.EndObject();
      }
      w.EndArray().EndObject();
    }
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  return w.Take();
}

Result<NestProgram> NestProgramFromJson(const Json& json) {
  if (!json.is_object()) {
    return Error::InvalidArgument("program: expected an object");
  }
  NestProgram p;
  if (const Json* nv = json.Find("num_vars")) {
    p.num_vars = static_cast<int>(nv->AsInt());
  }
  if (const Json* ve = json.Find("var_extent")) {
    for (const Json& e : ve->items()) p.var_extent.push_back(e.AsInt());
  }
  if (const Json* arrays = json.Find("arrays")) {
    for (const Json& a : arrays->items()) {
      ArrayDecl decl;
      if (const Json* n = a.Find("name")) decl.name = n->AsString("");
      if (const Json* s = a.Find("size")) decl.size = static_cast<int>(s->AsInt());
      if (const Json* i = a.Find("input")) decl.is_input = i->AsBool();
      if (const Json* init = a.Find("init")) {
        for (const Json& v : init->items()) decl.init.push_back(v.AsInt());
      }
      p.arrays.push_back(std::move(decl));
    }
  }
  if (const Json* bands = json.Find("bands")) {
    for (const Json& bj : bands->items()) {
      Band band;
      if (const Json* u = bj.Find("unroll")) {
        band.unroll = static_cast<int>(u->AsInt(1));
      }
      if (const Json* loops = bj.Find("loops")) {
        for (const Json& lj : loops->items()) {
          Loop l;
          if (const Json* id = lj.Find("id")) l.id = static_cast<int>(id->AsInt());
          if (const Json* t = lj.Find("trip")) l.trip = t->AsInt();
          band.loops.push_back(l);
        }
      }
      if (const Json* rec = bj.Find("recover")) {
        for (const Json& rj : rec->items()) {
          band.recover.push_back(ReadAffine(rj));
        }
      }
      if (const Json* stmts = bj.Find("stmts")) {
        for (const Json& sj : stmts->items()) {
          Statement s;
          if (const Json* v = sj.Find("store_array")) {
            s.store_array = static_cast<int>(v->AsInt());
          }
          if (const Json* v = sj.Find("store_addr")) s.store_addr = ReadAffine(*v);
          if (const Json* v = sj.Find("reduction")) s.is_reduction = v->AsBool();
          if (const Json* v = sj.Find("reduction_op")) {
            bool ok = false;
            s.reduction_op = OpcodeByName(v->AsString(""), &ok);
            if (!ok) {
              return Error::InvalidArgument(
                  StrFormat("unknown reduction op '%s'",
                            v->AsString("").c_str()));
            }
          }
          if (const Json* v = sj.Find("reduction_init")) {
            s.reduction_init = v->AsInt();
          }
          if (const Json* v = sj.Find("root")) s.root = static_cast<int>(v->AsInt());
          if (const Json* nodes = sj.Find("nodes")) {
            for (const Json& nj : nodes->items()) {
              ExprNode n;
              bool ok = false;
              if (const Json* k = nj.Find("kind")) {
                n.kind = ExprKindByName(k->AsString(""), &ok);
                if (!ok) {
                  return Error::InvalidArgument(StrFormat(
                      "unknown node kind '%s'", k->AsString("").c_str()));
                }
              }
              if (const Json* v = nj.Find("imm")) n.imm = v->AsInt();
              if (const Json* v = nj.Find("var")) n.var = static_cast<int>(v->AsInt());
              if (const Json* v = nj.Find("array")) {
                n.array = static_cast<int>(v->AsInt());
              }
              if (const Json* v = nj.Find("addr")) n.addr = ReadAffine(*v);
              if (const Json* v = nj.Find("op")) {
                bool op_ok = false;
                n.op = OpcodeByName(v->AsString(""), &op_ok);
                if (!op_ok) {
                  return Error::InvalidArgument(StrFormat(
                      "unknown opcode '%s'", v->AsString("").c_str()));
                }
              }
              if (const Json* v = nj.Find("a")) n.a = static_cast<int>(v->AsInt());
              if (const Json* v = nj.Find("b")) n.b = static_cast<int>(v->AsInt());
              s.nodes.push_back(std::move(n));
            }
          }
          band.stmts.push_back(std::move(s));
        }
      }
      p.bands.push_back(std::move(band));
    }
  }
  // The manifest may come from disk and be hand-edited: re-verify.
  if (Status s = p.Verify(); !s.ok()) return s.error();
  return p;
}

std::string TransformsToJson(const std::vector<TransformStep>& steps) {
  JsonWriter w;
  w.BeginArray();
  for (const TransformStep& s : steps) {
    w.BeginObject()
        .Key("kind").String(TransformKindName(s.kind))
        .Key("band").Int(s.band)
        .Key("a").Int(s.a)
        .Key("b").Int(s.b)
        .Key("factor").Int(s.factor)
        .EndObject();
  }
  w.EndArray();
  return w.Take();
}

Result<std::vector<TransformStep>> TransformsFromJson(const Json& json) {
  std::vector<TransformStep> steps;
  if (!json.is_array()) {
    return Error::InvalidArgument("transforms: expected an array");
  }
  for (const Json& sj : json.items()) {
    TransformStep s;
    const std::string kind =
        sj.Find("kind") ? sj.Find("kind")->AsString("") : "";
    if (kind == "tile") {
      s.kind = TransformStep::Kind::kTile;
    } else if (kind == "interchange") {
      s.kind = TransformStep::Kind::kInterchange;
    } else if (kind == "fuse") {
      s.kind = TransformStep::Kind::kFuse;
    } else if (kind == "unroll") {
      s.kind = TransformStep::Kind::kUnroll;
    } else {
      return Error::InvalidArgument(
          StrFormat("unknown transform kind '%s'", kind.c_str()));
    }
    if (const Json* v = sj.Find("band")) s.band = static_cast<int>(v->AsInt());
    if (const Json* v = sj.Find("a")) s.a = static_cast<int>(v->AsInt());
    if (const Json* v = sj.Find("b")) s.b = static_cast<int>(v->AsInt());
    if (const Json* v = sj.Find("factor")) s.factor = v->AsInt();
    steps.push_back(s);
  }
  return steps;
}

std::string ReproManifestToJson(const ReproManifest& manifest) {
  JsonWriter w;
  w.BeginObject()
      .Key("version").Int(manifest.version)
      .Key("fabric").String(manifest.fabric)
      .Key("mapper").String(manifest.mapper)
      .Key("sandbox").Bool(manifest.sandbox)
      .Key("inject_bug").Bool(manifest.inject_bug)
      .Key("fault_seed").Uint(manifest.fault_seed)
      .Key("fault_cells").Int(manifest.fault_cells)
      .Key("verdict").String(manifest.verdict)
      .Key("phase").String(manifest.phase)
      .Key("detail").String(manifest.detail)
      .Key("program").Raw(NestProgramToJson(manifest.program))
      .Key("transforms").Raw(TransformsToJson(manifest.transforms))
      .EndObject();
  return w.Take();
}

Result<ReproManifest> ReproManifestFromJson(std::string_view text) {
  Result<Json> parsed = Json::Parse(text);
  if (!parsed.ok()) return parsed.error();
  const Json& j = *parsed;
  if (!j.is_object()) {
    return Error::InvalidArgument("manifest: expected an object");
  }
  ReproManifest m;
  if (const Json* v = j.Find("version")) m.version = static_cast<int>(v->AsInt());
  if (m.version != 1) {
    return Error::InvalidArgument(
        StrFormat("unsupported manifest version %d", m.version));
  }
  if (const Json* v = j.Find("fabric")) m.fabric = v->AsString("");
  if (const Json* v = j.Find("mapper")) m.mapper = v->AsString("");
  if (const Json* v = j.Find("sandbox")) m.sandbox = v->AsBool();
  if (const Json* v = j.Find("inject_bug")) m.inject_bug = v->AsBool();
  if (const Json* v = j.Find("fault_seed")) {
    m.fault_seed = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const Json* v = j.Find("fault_cells")) {
    m.fault_cells = static_cast<int>(v->AsInt());
  }
  if (const Json* v = j.Find("verdict")) m.verdict = v->AsString("");
  if (const Json* v = j.Find("phase")) m.phase = v->AsString("");
  if (const Json* v = j.Find("detail")) m.detail = v->AsString("");
  const Json* prog = j.Find("program");
  if (prog == nullptr) {
    return Error::InvalidArgument("manifest: missing 'program'");
  }
  Result<NestProgram> p = NestProgramFromJson(*prog);
  if (!p.ok()) return p.error();
  m.program = std::move(p).value();
  if (const Json* t = j.Find("transforms")) {
    Result<std::vector<TransformStep>> steps = TransformsFromJson(*t);
    if (!steps.ok()) return steps.error();
    m.transforms = std::move(steps).value();
  }
  return m;
}

}  // namespace cgra::frontend
