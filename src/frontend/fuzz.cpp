#include "frontend/fuzz.hpp"

#include <algorithm>

#include "api/request.hpp"
#include "arch/fault.hpp"
#include "engine/engine.hpp"
#include "engine/sandbox.hpp"
#include "mappers/registry.hpp"
#include "sim/harness.hpp"
#include "support/str.hpp"

namespace cgra::frontend {
namespace {

using ArrayState = std::vector<std::vector<std::int64_t>>;

// First difference between two array states, or empty.
std::string DiffArrays(const ArrayState& want, const ArrayState& got,
                       const NestProgram& program) {
  if (want.size() != got.size()) {
    return StrFormat("array count %zu vs %zu", want.size(), got.size());
  }
  for (size_t a = 0; a < want.size(); ++a) {
    if (want[a].size() != got[a].size()) {
      return StrFormat("array %zu size %zu vs %zu", a, want[a].size(),
                       got[a].size());
    }
    for (size_t i = 0; i < want[a].size(); ++i) {
      if (want[a][i] != got[a][i]) {
        const char* name = a < program.arrays.size()
                               ? program.arrays[a].name.c_str()
                               : "?";
        return StrFormat("%s[%zu]: want %lld, got %lld", name, i,
                         static_cast<long long>(want[a][i]),
                         static_cast<long long>(got[a][i]));
      }
    }
  }
  return {};
}

FuzzOutcome Outcome(FuzzVerdict v, std::string phase, std::string detail) {
  return FuzzOutcome{v, std::move(phase), std::move(detail)};
}

}  // namespace

std::string_view FuzzVerdictName(FuzzVerdict v) {
  switch (v) {
    case FuzzVerdict::kOk: return "ok";
    case FuzzVerdict::kRejected: return "rejected";
    case FuzzVerdict::kUnmapped: return "unmapped";
    case FuzzVerdict::kMiscompare: return "miscompare";
    case FuzzVerdict::kCrash: return "crash";
    case FuzzVerdict::kInfra: return "infra";
  }
  return "infra";
}

FuzzOutcome RunFuzzCase(const NestProgram& program,
                        const std::vector<TransformStep>& transforms,
                        const FuzzConfig& config) {
  // Oracle 0: the untransformed nest.
  Result<NestEvalResult> base = EvaluateProgram(program);
  if (!base.ok()) {
    return Outcome(FuzzVerdict::kInfra, "generate", base.error().message);
  }

  // Phase 1: transforms preserve semantics (inapplicable steps skip).
  Result<NestProgram> transformed_r =
      ApplyTransforms(program, transforms, nullptr);
  if (!transformed_r.ok()) {
    return Outcome(FuzzVerdict::kInfra, "transform",
                   transformed_r.error().message);
  }
  const NestProgram& transformed = *transformed_r;
  Result<NestEvalResult> eval = EvaluateProgram(transformed);
  if (!eval.ok()) {
    return Outcome(FuzzVerdict::kInfra, "transform", eval.error().message);
  }
  if (std::string diff = DiffArrays(base->arrays, eval->arrays, transformed);
      !diff.empty()) {
    return Outcome(FuzzVerdict::kMiscompare, "transform", diff);
  }

  // Phase 2: flat lowering vs the evaluator, band by band, with the
  // evaluator's state threaded in so each band is checked in isolation.
  Result<std::vector<Kernel>> kernels_r =
      LowerProgram(transformed, config.lowering);
  if (!kernels_r.ok()) {
    if (kernels_r.error().code == Error::Code::kInternal) {
      return Outcome(FuzzVerdict::kInfra, "lowering",
                     kernels_r.error().message);
    }
    return Outcome(FuzzVerdict::kRejected, "lowering",
                   kernels_r.error().message);
  }
  std::vector<Kernel>& kernels = kernels_r.value();
  for (int b = 0; b < static_cast<int>(kernels.size()); ++b) {
    Kernel& kernel = kernels[static_cast<size_t>(b)];
    if (b > 0) {
      kernel.input.arrays =
          eval->after_band[static_cast<size_t>(b) - 1];
    }
    Result<ExecResult> ref = RunReference(kernel.dfg, kernel.input);
    if (!ref.ok()) {
      return Outcome(FuzzVerdict::kInfra, "lowering",
                     StrFormat("band %d: %s", b, ref.error().message.c_str()));
    }
    if (std::string diff =
            DiffArrays(eval->after_band[static_cast<size_t>(b)], ref->arrays,
                       transformed);
        !diff.empty()) {
      return Outcome(FuzzVerdict::kMiscompare, "lowering",
                     StrFormat("band %d: %s", b, diff.c_str()));
    }
  }

  // Phase 3: the CDFG lowering (direct-cdfg's input shape).
  if (config.check_cdfg) {
    Result<CdfgLowering> cl = LowerProgramToCdfg(transformed, config.lowering);
    if (!cl.ok()) {
      return Outcome(FuzzVerdict::kInfra, "cdfg", cl.error().message);
    }
    Result<CdfgExecResult> run = RunCdfgReference(cl->cdfg, cl->input);
    if (!run.ok()) {
      return Outcome(FuzzVerdict::kInfra, "cdfg", run.error().message);
    }
    if (std::string diff = DiffArrays(eval->arrays, run->arrays, transformed);
        !diff.empty()) {
      return Outcome(FuzzVerdict::kMiscompare, "cdfg", diff);
    }
  }

  if (!config.map_and_simulate) return Outcome(FuzzVerdict::kOk, "", "");

  // Phase 4/5: map and simulate each band on the (possibly derated)
  // fabric.
  std::optional<Architecture> arch = api::FabricByName(config.fabric);
  if (!arch.has_value()) {
    return Outcome(FuzzVerdict::kInfra, "map",
                   StrFormat("unknown fabric '%s'", config.fabric.c_str()));
  }
  if (config.fault_cells > 0) {
    FaultModel::RandomSpec spec;
    spec.dead_cells = config.fault_cells;
    const FaultModel faults =
        FaultModel::Random(*arch, spec, config.fault_seed);
    *arch = arch->WithFaults(faults);
  }
  const Mapper* mapper = MapperRegistry::Global().Find(config.mapper);
  if (mapper == nullptr) {
    return Outcome(FuzzVerdict::kInfra, "map",
                   StrFormat("unknown mapper '%s'", config.mapper.c_str()));
  }

  bool any_unmapped = false;
  std::string unmapped_detail;
  for (int b = 0; b < static_cast<int>(kernels.size()); ++b) {
    const Kernel& kernel = kernels[static_cast<size_t>(b)];
    MapperOptions mo;
    mo.min_ii = config.min_ii;
    mo.max_ii = config.max_ii;
    mo.deadline = Deadline::AfterSeconds(config.map_deadline_s);
    mo.seed = config.map_seed;

    Result<Mapping> mapped = Error::Internal("not run");
    if (config.use_sandbox) {
      SandboxedMapResult sr =
          SandboxedMap(*mapper, kernel.dfg, *arch, mo, config.sandbox_limits);
      if (sr.fatal()) {
        return Outcome(FuzzVerdict::kCrash, "map",
                       StrFormat("band %d: sandbox %s", b,
                                 SandboxLabel(sr.outcome).c_str()));
      }
      mapped = std::move(sr.result);
    } else {
      mapped = SafeMap(*mapper, kernel.dfg, *arch, mo);
    }
    if (!mapped.ok()) {
      switch (mapped.error().code) {
        case Error::Code::kInternal:
          return Outcome(
              FuzzVerdict::kCrash, "map",
              StrFormat("band %d: %s", b, mapped.error().message.c_str()));
        case Error::Code::kInvalidArgument:
          return Outcome(
              FuzzVerdict::kRejected, "map",
              StrFormat("band %d: %s", b, mapped.error().message.c_str()));
        default:  // kUnmappable / kResourceLimit: the budget's fault.
          any_unmapped = true;
          unmapped_detail =
              StrFormat("band %d: %s", b, mapped.error().message.c_str());
          continue;
      }
    }

    Result<bool> match = MappingMatchesReference(kernel, *arch, *mapped);
    if (!match.ok()) {
      // The bitstream compiler rejects some valid mappings for fabric
      // capability reasons (static RF lifetimes, one-imm-per-word).
      // Those are budget outcomes like an unmappable kernel, not bugs.
      if (match.error().code == Error::Code::kUnmappable ||
          match.error().code == Error::Code::kResourceLimit) {
        any_unmapped = true;
        unmapped_detail =
            StrFormat("band %d: %s", b, match.error().message.c_str());
        continue;
      }
      return Outcome(
          FuzzVerdict::kInfra, "mapped",
          StrFormat("band %d: %s", b, match.error().message.c_str()));
    }
    if (!*match) {
      return Outcome(FuzzVerdict::kMiscompare, "mapped",
                     StrFormat("band %d: simulated state diverges from the "
                               "reference (II search window %d..%d)",
                               b, config.min_ii, config.max_ii));
    }
  }
  if (any_unmapped) {
    return Outcome(FuzzVerdict::kUnmapped, "map", unmapped_detail);
  }
  return Outcome(FuzzVerdict::kOk, "", "");
}

namespace {

// One shrink candidate: a smaller (program, transforms) pair.
struct Candidate {
  NestProgram program;
  std::vector<TransformStep> transforms;
};

std::vector<Candidate> ShrinkCandidates(
    const NestProgram& p, const std::vector<TransformStep>& t) {
  std::vector<Candidate> out;
  // 1. Drop one transform.
  for (size_t i = 0; i < t.size(); ++i) {
    Candidate c{p, t};
    c.transforms.erase(c.transforms.begin() + static_cast<long>(i));
    out.push_back(std::move(c));
  }
  // 2. Drop one band (later bands reading its outputs fail Verify and
  // are filtered by the caller).
  if (p.bands.size() > 1) {
    for (size_t b = 0; b < p.bands.size(); ++b) {
      Candidate c{p, t};
      c.program.bands.erase(c.program.bands.begin() + static_cast<long>(b));
      out.push_back(std::move(c));
    }
  }
  // 3. Drop one statement.
  for (size_t b = 0; b < p.bands.size(); ++b) {
    if (p.bands[b].stmts.size() < 2) continue;
    for (size_t s = 0; s < p.bands[b].stmts.size(); ++s) {
      Candidate c{p, t};
      c.program.bands[b].stmts.erase(c.program.bands[b].stmts.begin() +
                                     static_cast<long>(s));
      out.push_back(std::move(c));
    }
  }
  // 4. Replace a statement's expression with a single constant, or
  // hoist the root's child.
  for (size_t b = 0; b < p.bands.size(); ++b) {
    for (size_t s = 0; s < p.bands[b].stmts.size(); ++s) {
      const Statement& stmt = p.bands[b].stmts[s];
      if (stmt.nodes.size() > 1) {
        Candidate c{p, t};
        Statement& cs = c.program.bands[b].stmts[s];
        ExprNode konst;
        konst.kind = ExprKind::kConst;
        konst.imm = 1;
        cs.nodes = {konst};
        cs.root = 0;
        out.push_back(std::move(c));
      }
      const ExprNode& root = stmt.nodes[static_cast<size_t>(stmt.root)];
      for (const int child : {root.a, root.b}) {
        if (child < 0) continue;
        Candidate c{p, t};
        c.program.bands[b].stmts[s].root = child;
        out.push_back(std::move(c));
      }
    }
  }
  // 5. Shrink a variable's extent (identity-scheduled variables only:
  // one loop, coefficient 1 — always true for generated programs).
  for (int v = 0; v < p.num_vars; ++v) {
    const std::int64_t extent = p.var_extent[static_cast<size_t>(v)];
    if (extent <= 1) continue;
    for (const std::int64_t target : {std::int64_t{1}, extent / 2}) {
      if (target < 1 || target >= extent) continue;
      Candidate c{p, t};
      bool identity = false;
      for (Band& band : c.program.bands) {
        if (static_cast<int>(band.recover.size()) <= v) continue;
        const std::vector<int> support =
            band.recover[static_cast<size_t>(v)].Support();
        if (support.empty()) continue;
        if (support.size() != 1 ||
            band.recover[static_cast<size_t>(v)].Coeff(support[0]) != 1) {
          break;  // tiled/fused shape; skip this variable
        }
        for (Loop& loop : band.loops) {
          if (loop.id == support[0]) {
            loop.trip = target;
            identity = true;
          }
        }
      }
      if (!identity) continue;
      c.program.var_extent[static_cast<size_t>(v)] = target;
      out.push_back(std::move(c));
    }
  }
  // 6. Zero one array's contents.
  for (size_t a = 0; a < p.arrays.size(); ++a) {
    const auto& init = p.arrays[a].init;
    if (std::all_of(init.begin(), init.end(),
                    [](std::int64_t v) { return v == 0; })) {
      continue;
    }
    Candidate c{p, t};
    std::fill(c.program.arrays[a].init.begin(),
              c.program.arrays[a].init.end(), 0);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkCase(const NestProgram& program,
                        const std::vector<TransformStep>& transforms,
                        const FuzzConfig& config, const FuzzOutcome& target,
                        int max_runs) {
  ShrinkResult result{program, transforms, 0};
  bool changed = true;
  while (changed && result.runs < max_runs) {
    changed = false;
    for (Candidate& c :
         ShrinkCandidates(result.program, result.transforms)) {
      if (result.runs >= max_runs) break;
      if (!c.program.Verify().ok()) continue;  // free filter, no run
      ++result.runs;
      const FuzzOutcome outcome =
          RunFuzzCase(c.program, c.transforms, config);
      if (outcome.verdict == target.verdict && outcome.phase == target.phase) {
        result.program = std::move(c.program);
        result.transforms = std::move(c.transforms);
        changed = true;
        break;  // re-enumerate against the smaller case
      }
    }
  }
  return result;
}

ReproManifest MakeReproManifest(const NestProgram& program,
                                const std::vector<TransformStep>& transforms,
                                const FuzzConfig& config,
                                const FuzzOutcome& outcome) {
  ReproManifest m;
  m.program = program;
  m.transforms = transforms;
  m.fabric = config.fabric;
  m.mapper = config.mapper;
  m.sandbox = config.use_sandbox;
  m.inject_bug = config.lowering.inject_bug;
  m.fault_seed = config.fault_seed;
  m.fault_cells = config.fault_cells;
  m.verdict = std::string(FuzzVerdictName(outcome.verdict));
  m.phase = outcome.phase;
  m.detail = outcome.detail;
  return m;
}

FuzzOutcome ReplayManifest(const ReproManifest& manifest, bool* reproduced) {
  FuzzConfig config;
  config.fabric = manifest.fabric;
  config.mapper = manifest.mapper;
  config.use_sandbox = manifest.sandbox;
  config.lowering.inject_bug = manifest.inject_bug;
  config.fault_seed = manifest.fault_seed;
  config.fault_cells = manifest.fault_cells;
  const FuzzOutcome outcome =
      RunFuzzCase(manifest.program, manifest.transforms, config);
  if (reproduced != nullptr) {
    *reproduced = FuzzVerdictName(outcome.verdict) == manifest.verdict &&
                  outcome.phase == manifest.phase;
  }
  return outcome;
}

FuzzCampaignResult RunFuzzCampaign(
    const FuzzConfig& config, std::uint64_t seed, int count, bool shrink,
    const std::function<void(int, const FuzzOutcome&)>& progress) {
  FuzzCampaignResult result;
  for (int i = 0; i < count; ++i) {
    // Case i depends on (seed, i) alone: reruns and partial reruns of
    // a campaign generate identical cases.
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull *
                    (static_cast<std::uint64_t>(i) + 1)));
    const GeneratedCase gc = GenerateCase(rng, config.gen);
    const FuzzOutcome outcome =
        RunFuzzCase(gc.program, gc.transforms, config);
    ++result.cases;
    switch (outcome.verdict) {
      case FuzzVerdict::kOk: ++result.ok; break;
      case FuzzVerdict::kRejected: ++result.rejected; break;
      case FuzzVerdict::kUnmapped: ++result.unmapped; break;
      case FuzzVerdict::kMiscompare: ++result.miscompare; break;
      case FuzzVerdict::kCrash: ++result.crash; break;
      case FuzzVerdict::kInfra: ++result.infra; break;
    }
    if (outcome.failed()) {
      FuzzCampaignResult::Failure failure;
      failure.case_index = i;
      failure.digest = gc.program.Digest();
      failure.outcome = outcome;
      NestProgram small = gc.program;
      std::vector<TransformStep> small_t = gc.transforms;
      FuzzOutcome small_outcome = outcome;
      if (shrink && outcome.verdict != FuzzVerdict::kInfra) {
        ShrinkResult shrunk =
            ShrinkCase(gc.program, gc.transforms, config, outcome);
        small = std::move(shrunk.program);
        small_t = std::move(shrunk.transforms);
        failure.shrink_runs = shrunk.runs;
        // The manifest's detail should describe the case it carries.
        small_outcome = RunFuzzCase(small, small_t, config);
      }
      failure.manifest =
          MakeReproManifest(small, small_t, config, small_outcome);
      result.failures.push_back(std::move(failure));
    }
    if (progress) progress(i, outcome);
  }
  return result;
}

}  // namespace cgra::frontend
