#include "frontend/lower.hpp"

#include <algorithm>
#include <map>

#include "cf/unroll.hpp"
#include "support/str.hpp"

namespace cgra::frontend {
namespace {

// Shared scratch for one lowering target: the DFG under construction
// plus the value ops statements read.
struct Emitter {
  Dfg* dfg = nullptr;
  bool inject_bug = false;
  // Original variable id -> op producing its value this iteration.
  std::map<int, OpId> var_op;
  // Array id -> op producing the value the band stored there (same-band
  // store-to-load forwarding; Verify guarantees addresses match).
  std::map<int, OpId> forward;
  // Memoised constants.
  std::map<std::int64_t, OpId> consts;

  OpId Const(std::int64_t v) {
    auto it = consts.find(v);
    if (it != consts.end()) return it->second;
    const OpId id = dfg->AddConst(v, StrFormat("c%lld", static_cast<long long>(v)));
    consts.emplace(v, id);
    return id;
  }

  /// c0 + sum coeff_v * var_v as an add/mul tree over the var ops.
  OpId EmitAffine(const Affine& a) {
    OpId acc = kNoOp;
    for (const int v : a.Support()) {
      const std::int64_t c = a.Coeff(v);
      OpId term = var_op.at(v);
      if (c != 1) term = dfg->AddBinary(Opcode::kMul, Const(c), term);
      acc = acc == kNoOp ? term : dfg->AddBinary(Opcode::kAdd, acc, term);
    }
    if (acc == kNoOp) return Const(a.c0);
    if (a.c0 != 0) acc = dfg->AddBinary(Opcode::kAdd, acc, Const(a.c0));
    return acc;
  }

  /// Statement right-hand side; returns the value to store (bug
  /// injection included).
  OpId EmitRhs(const Statement& stmt) {
    std::vector<OpId> val(stmt.nodes.size(), kNoOp);
    for (int i = 0; i < static_cast<int>(stmt.nodes.size()); ++i) {
      const ExprNode& node = stmt.nodes[static_cast<size_t>(i)];
      switch (node.kind) {
        case ExprKind::kConst:
          val[static_cast<size_t>(i)] = Const(node.imm);
          break;
        case ExprKind::kIndex:
          val[static_cast<size_t>(i)] = var_op.at(node.var);
          break;
        case ExprKind::kLoad: {
          auto fwd = forward.find(node.array);
          if (fwd != forward.end()) {
            // Same-band producer: the load's address equals the store's
            // (Verify), so the stored value IS the loaded value.
            val[static_cast<size_t>(i)] = fwd->second;
          } else {
            val[static_cast<size_t>(i)] =
                dfg->AddLoad(node.array, EmitAffine(node.addr));
          }
          break;
        }
        case ExprKind::kUnary:
          val[static_cast<size_t>(i)] =
              dfg->AddUnary(node.op, val[static_cast<size_t>(node.a)]);
          break;
        case ExprKind::kBinary:
          val[static_cast<size_t>(i)] =
              dfg->AddBinary(node.op, val[static_cast<size_t>(node.a)],
                             val[static_cast<size_t>(node.b)]);
          break;
      }
    }
    OpId rhs = val[static_cast<size_t>(stmt.root)];
    if (inject_bug) rhs = dfg->AddBinary(Opcode::kAdd, rhs, Const(1));
    return rhs;
  }
};

}  // namespace

Result<Kernel> LowerBand(const NestProgram& program, int band_idx,
                         const LoweringOptions& options) {
  if (Status s = program.Verify(); !s.ok()) return s.error();
  if (band_idx < 0 || band_idx >= static_cast<int>(program.bands.size())) {
    return Error::InvalidArgument(
        StrFormat("band %d out of range", band_idx));
  }
  const Band& band = program.bands[static_cast<size_t>(band_idx)];
  const std::int64_t domain = band.DomainSize();

  Kernel kernel;
  kernel.name = StrFormat("nest_b%d", band_idx);
  kernel.description =
      StrFormat("band %d of nest %s", band_idx, program.Digest().c_str());

  Emitter e{&kernel.dfg, options.inject_bug, {}, {}, {}};
  Dfg& dfg = kernel.dfg;

  // Odometer counters, innermost outward. Counter ops are their own
  // carried predecessors (read at distance 1, initialised to trip-1 so
  // iteration 0 computes 0); `adv` tells a loop that everything inside
  // it wrapped this iteration, i.e. it advances.
  const int n = static_cast<int>(band.loops.size());
  std::vector<OpId> counter(static_cast<size_t>(n), kNoOp);
  OpId adv = kNoOp;  // innermost advances every iteration
  for (int p = n - 1; p >= 0; --p) {
    const Loop& loop = band.loops[static_cast<size_t>(p)];
    const std::int64_t t = loop.trip;
    if (t == 1) {
      counter[static_cast<size_t>(p)] = e.Const(0);
      adv = (p == n - 1) ? e.Const(1) : adv;  // wrap passes through
      continue;
    }
    Op eq;
    eq.opcode = Opcode::kCmpEq;
    eq.name = StrFormat("l%d_wrap", loop.id);
    eq.operands = {Operand{kNoOp, 1, t - 1}, Operand{e.Const(t - 1), 0, 0}};
    const OpId eq_id = dfg.AddOp(std::move(eq));
    Op inc;
    inc.opcode = Opcode::kAdd;
    inc.name = StrFormat("l%d_inc", loop.id);
    inc.operands = {Operand{kNoOp, 1, t - 1}, Operand{e.Const(1), 0, 0}};
    const OpId inc_id = dfg.AddOp(std::move(inc));
    const OpId next = dfg.AddSelect(eq_id, e.Const(0), inc_id,
                                    StrFormat("l%d_next", loop.id));
    OpId c;
    if (p == n - 1) {
      c = next;
      adv = eq_id;
    } else {
      Op sel;
      sel.opcode = Opcode::kSelect;
      sel.name = StrFormat("l%d", loop.id);
      sel.operands = {Operand{adv, 0, 0}, Operand{next, 0, 0},
                      Operand{kNoOp, 1, t - 1}};
      c = dfg.AddOp(std::move(sel));
      dfg.mutable_op(c).operands[2].producer = c;
      adv = dfg.AddBinary(Opcode::kAnd, adv, eq_id,
                          StrFormat("l%d_wrapped", loop.id));
    }
    dfg.mutable_op(eq_id).operands[0].producer = c;
    dfg.mutable_op(inc_id).operands[0].producer = c;
    counter[static_cast<size_t>(p)] = c;
  }

  // Recover original variable values from the counters.
  const std::vector<int> band_vars = band.Vars();
  for (const int v : band_vars) {
    const Affine& r = band.recover[static_cast<size_t>(v)];
    OpId acc = kNoOp;
    for (int p = 0; p < n; ++p) {
      const std::int64_t c = r.Coeff(band.loops[static_cast<size_t>(p)].id);
      if (c == 0) continue;
      OpId term = counter[static_cast<size_t>(p)];
      if (c != 1) term = dfg.AddBinary(Opcode::kMul, e.Const(c), term);
      acc = acc == kNoOp ? term : dfg.AddBinary(Opcode::kAdd, acc, term);
    }
    e.var_op[v] = acc == kNoOp ? e.Const(0) : acc;
  }

  for (const Statement& stmt : band.stmts) {
    const OpId rhs = e.EmitRhs(stmt);
    const OpId addr = e.EmitAffine(stmt.store_addr);
    if (!stmt.is_reduction) {
      dfg.AddStore(stmt.store_array, addr, rhs);
      e.forward[stmt.store_array] = rhs;
      continue;
    }
    // group_start: every reduction variable (absent from the address)
    // is at 0, i.e. this iteration starts a fresh address group.
    const std::vector<int> support = stmt.store_addr.Support();
    OpId gs = kNoOp;
    for (const int v : band_vars) {
      if (std::find(support.begin(), support.end(), v) != support.end()) {
        continue;
      }
      const OpId z =
          dfg.AddBinary(Opcode::kCmpEq, e.var_op.at(v), e.Const(0));
      gs = gs == kNoOp ? z : dfg.AddBinary(Opcode::kAnd, gs, z);
    }
    if (gs == kNoOp) gs = e.Const(1);
    Op base;
    base.opcode = Opcode::kSelect;
    base.name = "red_base";
    base.operands = {Operand{gs, 0, 0},
                     Operand{e.Const(stmt.reduction_init), 0, 0},
                     Operand{kNoOp, 1, stmt.reduction_init}};
    const OpId base_id = dfg.AddOp(std::move(base));
    const OpId acc =
        dfg.AddBinary(stmt.reduction_op, base_id, rhs, "red_acc");
    dfg.mutable_op(base_id).operands[2].producer = acc;
    dfg.AddStore(stmt.store_array, addr, acc);
  }

  if (Status s = dfg.Verify(); !s.ok()) {
    return Error::Internal(StrFormat("lowered band %d fails Dfg::Verify: %s",
                                     band_idx, s.error().message.c_str()));
  }

  kernel.input.iterations = static_cast<int>(domain);
  kernel.input.arrays.reserve(program.arrays.size());
  for (const ArrayDecl& a : program.arrays) {
    kernel.input.arrays.push_back(a.init);
  }
  if (band.unroll > 1) return UnrollKernel(kernel, band.unroll);
  return kernel;
}

Result<std::vector<Kernel>> LowerProgram(const NestProgram& program,
                                         const LoweringOptions& options) {
  std::vector<Kernel> kernels;
  for (int b = 0; b < static_cast<int>(program.bands.size()); ++b) {
    Result<Kernel> k = LowerBand(program, b, options);
    if (!k.ok()) return k.error();
    kernels.push_back(std::move(k).value());
  }
  return kernels;
}

Result<CdfgLowering> LowerProgramToCdfg(const NestProgram& program,
                                        const LoweringOptions& options) {
  if (Status s = program.Verify(); !s.ok()) return s.error();

  int max_depth = 0;
  for (const Band& band : program.bands) {
    max_depth = std::max(max_depth, static_cast<int>(band.loops.size()));
  }
  const int done_var = max_depth;  // variable-file slot for the branch

  CdfgLowering out;
  Cdfg& cdfg = out.cdfg;
  const int entry = cdfg.AddBlock("entry");
  cdfg.set_entry(entry);
  // Block whose fall-through reaches the next band: the entry block
  // (unconditional) or the previous band's body (taken when its loop
  // condition `prev_cond` says the band is done).
  int prev = entry;
  OpId prev_cond = kNoOp;

  for (int b = 0; b < static_cast<int>(program.bands.size()); ++b) {
    const Band& band = program.bands[static_cast<size_t>(b)];
    const int n = static_cast<int>(band.loops.size());

    // init: zero the counters this band uses.
    Dfg init;
    const OpId zero = init.AddConst(0, "zero");
    for (int p = 0; p < n; ++p) {
      Op vo;
      vo.opcode = Opcode::kVarOut;
      vo.slot = p;
      vo.name = StrFormat("cnt%d_reset", p);
      vo.operands = {Operand{zero, 0, 0}};
      init.AddOp(std::move(vo));
    }
    const int init_block =
        cdfg.AddBlock(StrFormat("band%d_init", b), std::move(init));

    // body: one domain point + odometer ripple + loop-exit branch.
    Dfg body;
    Emitter e{&body, options.inject_bug, {}, {}, {}};
    std::vector<OpId> cnt(static_cast<size_t>(n), kNoOp);
    for (int p = 0; p < n; ++p) {
      Op vi;
      vi.opcode = Opcode::kVarIn;
      vi.slot = p;
      vi.name = StrFormat("cnt%d", p);
      cnt[static_cast<size_t>(p)] = body.AddOp(std::move(vi));
    }
    for (const int v : band.Vars()) {
      const Affine& r = band.recover[static_cast<size_t>(v)];
      OpId acc = kNoOp;
      for (int p = 0; p < n; ++p) {
        const std::int64_t c = r.Coeff(band.loops[static_cast<size_t>(p)].id);
        if (c == 0) continue;
        OpId term = cnt[static_cast<size_t>(p)];
        if (c != 1) term = body.AddBinary(Opcode::kMul, e.Const(c), term);
        acc = acc == kNoOp ? term : body.AddBinary(Opcode::kAdd, acc, term);
      }
      e.var_op[v] = acc == kNoOp ? e.Const(0) : acc;
    }
    for (const Statement& stmt : band.stmts) {
      const OpId rhs = e.EmitRhs(stmt);
      const OpId addr = e.EmitAffine(stmt.store_addr);
      if (!stmt.is_reduction) {
        body.AddStore(stmt.store_array, addr, rhs);
        e.forward[stmt.store_array] = rhs;
        continue;
      }
      // Blocks run once per visit, so the accumulator lives in the
      // array itself: read-modify-write with a reset at group start.
      const std::vector<int> support = stmt.store_addr.Support();
      OpId gs = kNoOp;
      for (const int v : band.Vars()) {
        if (std::find(support.begin(), support.end(), v) != support.end()) {
          continue;
        }
        const OpId z =
            body.AddBinary(Opcode::kCmpEq, e.var_op.at(v), e.Const(0));
        gs = gs == kNoOp ? z : body.AddBinary(Opcode::kAnd, gs, z);
      }
      if (gs == kNoOp) gs = e.Const(1);
      const OpId current = body.AddLoad(stmt.store_array, addr);
      const OpId base =
          body.AddSelect(gs, e.Const(stmt.reduction_init), current);
      const OpId acc = body.AddBinary(stmt.reduction_op, base, rhs, "red_acc");
      body.AddStore(stmt.store_array, addr, acc);
    }
    // Ripple the odometer from the innermost loop outward; `carry` is
    // "every loop inside has wrapped" and, after the outermost, the
    // band's exit condition.
    OpId carry = e.Const(1);
    for (int p = n - 1; p >= 0; --p) {
      const std::int64_t t = band.loops[static_cast<size_t>(p)].trip;
      const OpId eq = body.AddBinary(Opcode::kCmpEq, cnt[static_cast<size_t>(p)],
                                     e.Const(t - 1));
      const OpId inc =
          body.AddBinary(Opcode::kAdd, cnt[static_cast<size_t>(p)], e.Const(1));
      const OpId bumped = body.AddSelect(eq, e.Const(0), inc);
      const OpId next =
          body.AddSelect(carry, bumped, cnt[static_cast<size_t>(p)]);
      Op vo;
      vo.opcode = Opcode::kVarOut;
      vo.slot = p;
      vo.name = StrFormat("cnt%d_next", p);
      vo.operands = {Operand{next, 0, 0}};
      body.AddOp(std::move(vo));
      carry = body.AddBinary(Opcode::kAnd, carry, eq);
    }
    // The sequencer observes branch conditions through the var file.
    Op done;
    done.opcode = Opcode::kVarOut;
    done.slot = done_var;
    done.name = "done";
    done.operands = {Operand{carry, 0, 0}};
    body.AddOp(std::move(done));
    const int body_block =
        cdfg.AddBlock(StrFormat("band%d_body", b), std::move(body));

    if (prev_cond == kNoOp) {
      cdfg.AddEdge({prev, init_block, ControlEdge::Cond::kAlways, kNoOp});
    } else {
      cdfg.AddEdge({prev, init_block, ControlEdge::Cond::kIfTrue, prev_cond});
    }
    cdfg.AddEdge({init_block, body_block, ControlEdge::Cond::kAlways, kNoOp});
    cdfg.AddEdge({body_block, body_block, ControlEdge::Cond::kIfFalse, carry});
    prev = body_block;
    prev_cond = carry;
  }
  const int exit = cdfg.AddBlock("exit");
  cdfg.set_exit(exit);
  if (prev_cond == kNoOp) {
    cdfg.AddEdge({prev, exit, ControlEdge::Cond::kAlways, kNoOp});
  } else {
    cdfg.AddEdge({prev, exit, ControlEdge::Cond::kIfTrue, prev_cond});
  }
  if (Status s = cdfg.Verify(); !s.ok()) {
    return Error::Internal(StrFormat("lowered CDFG fails Verify: %s",
                                     s.error().message.c_str()));
  }

  out.input.iterations = 1;
  out.input.vars.assign(static_cast<size_t>(done_var) + 1, 0);
  out.input.arrays.reserve(program.arrays.size());
  for (const ArrayDecl& a : program.arrays) {
    out.input.arrays.push_back(a.init);
  }
  return out;
}

}  // namespace cgra::frontend
