// Differential fuzzing over generated loop nests.
//
// One fuzz case is (program, transforms). The harness runs it through
// every execution the repo has and compares them pairwise, stopping at
// the first disagreement:
//
//   phase "transform":  EvaluateProgram(original) vs
//                       EvaluateProgram(transformed) — schedule
//                       transforms must preserve semantics.
//   phase "lowering":   per band, RunReference over the lowered
//                       loop-body DFG (previous bands' state threaded
//                       in from the evaluator) vs the evaluator's
//                       after-band snapshot.
//   phase "cdfg":       RunCdfgReference over the CDFG lowering vs the
//                       evaluator's final state.
//   phase "map":        SafeMap / SandboxedMap of each band kernel —
//                       kInternal results and fatal sandbox outcomes
//                       are crashes; kUnmappable / kResourceLimit are
//                       counted, not failed.
//   phase "mapped":     MappingMatchesReference — compile the mapping,
//                       round-trip the bitstream, simulate, compare.
//
// Any miscompare or crash is shrunk (drop transforms / bands /
// statements, simplify expressions, shrink extents, zero data — kept
// only while the SAME verdict+phase reproduces) and dumped as a
// self-contained repro manifest (frontend/serialize.hpp) that
// `cgra_fuzz --replay` re-runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "frontend/generate.hpp"
#include "frontend/lower.hpp"
#include "frontend/serialize.hpp"
#include "support/subprocess.hpp"

namespace cgra::frontend {

struct FuzzConfig {
  std::string fabric = "adres4x4";
  std::string mapper = "ims";
  int min_ii = 1;
  int max_ii = 16;
  double map_deadline_s = 5.0;  ///< per-band mapping budget
  std::uint64_t map_seed = 1;
  /// Run mappers in a fork()ed rlimit-capped child (survives SIGSEGV
  /// and alloc bombs; slower). Off for smoke runs, on when fuzzing
  /// hostile/fixture mappers.
  bool use_sandbox = false;
  SandboxLimits sandbox_limits;
  /// Map + simulate each band (the expensive phases). Off = oracle-only
  /// fuzzing of the frontend itself.
  bool map_and_simulate = true;
  /// Compare the CDFG lowering too (cheap, no mapping involved).
  bool check_cdfg = true;
  /// Derate the fabric with FaultModel::Random(dead_cells=fault_cells,
  /// seed=fault_seed) before mapping AND simulating; 0 cells = pristine.
  std::uint64_t fault_seed = 0;
  int fault_cells = 0;
  /// The deliberately-broken fixture: mis-lower every store by +1.
  LoweringOptions lowering;
  GeneratorOptions gen;
};

enum class FuzzVerdict {
  kOk,          ///< every execution agreed
  kRejected,    ///< structured rejection (lowering/mapper said no)
  kUnmapped,    ///< mapper gave up within its budget — not a failure
  kMiscompare,  ///< two executions disagree: a real bug somewhere
  kCrash,       ///< mapper threw / died / was killed
  kInfra,       ///< the harness itself failed (unknown fabric, ...)
};
std::string_view FuzzVerdictName(FuzzVerdict v);

struct FuzzOutcome {
  FuzzVerdict verdict = FuzzVerdict::kOk;
  std::string phase;  ///< "", "transform", "lowering", "cdfg", "map", "mapped"
  std::string detail;

  bool failed() const {
    return verdict == FuzzVerdict::kMiscompare ||
           verdict == FuzzVerdict::kCrash || verdict == FuzzVerdict::kInfra;
  }
};

/// Runs one case through every phase; returns at the first failure.
FuzzOutcome RunFuzzCase(const NestProgram& program,
                        const std::vector<TransformStep>& transforms,
                        const FuzzConfig& config);

/// Greedy shrink to a (near-)minimal case with the same verdict+phase.
/// Bounded by `max_runs` re-executions.
struct ShrinkResult {
  NestProgram program;
  std::vector<TransformStep> transforms;
  int runs = 0;  ///< re-executions spent
};
ShrinkResult ShrinkCase(const NestProgram& program,
                        const std::vector<TransformStep>& transforms,
                        const FuzzConfig& config, const FuzzOutcome& target,
                        int max_runs = 150);

/// Manifest for a (possibly shrunk) failing case.
ReproManifest MakeReproManifest(const NestProgram& program,
                                const std::vector<TransformStep>& transforms,
                                const FuzzConfig& config,
                                const FuzzOutcome& outcome);

/// Re-runs a manifest under its recorded configuration. `reproduced`
/// is true when verdict AND phase match the manifest's.
FuzzOutcome ReplayManifest(const ReproManifest& manifest, bool* reproduced);

struct FuzzCampaignResult {
  int cases = 0;
  int ok = 0;
  int rejected = 0;
  int unmapped = 0;
  int miscompare = 0;
  int crash = 0;
  int infra = 0;

  struct Failure {
    int case_index = 0;
    std::string digest;  ///< original program digest
    FuzzOutcome outcome;
    ReproManifest manifest;  ///< shrunk when shrinking was enabled
    int shrink_runs = 0;
  };
  std::vector<Failure> failures;
};

/// `count` cases from `seed` (case i is deterministic in (seed, i)
/// alone, so a campaign can be re-run partially). Failures are shrunk
/// when `shrink`. `progress` (may be empty) is called after each case.
FuzzCampaignResult RunFuzzCampaign(
    const FuzzConfig& config, std::uint64_t seed, int count, bool shrink,
    const std::function<void(int, const FuzzOutcome&)>& progress = {});

}  // namespace cgra::frontend
