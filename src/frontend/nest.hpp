// Polyhedral-lite loop-nest IR: the workload frontend.
//
// The hand-written kernel library (src/ir/kernels.cpp) caps scenario
// diversity at a dozen shapes; this IR is the automated supply. A
// NestProgram is a sequence of *bands* — perfect nests of bounded,
// step-1 loops — whose statements store affine-addressed expressions
// into arrays, in the style of AutoSA's space-time transformed loop
// nests (PAPERS.md). The IR is deliberately small: every construct
// must survive three independent executions that the differential
// fuzzer (frontend/fuzz.hpp) compares bit-exactly —
//   1. EvaluateProgram, the direct nest-level evaluator (this file),
//   2. RunReference over the lowered loop-body DFG (frontend/lower.hpp
//      -> ir/interp), and
//   3. the mapped-and-simulated configuration (sim/harness.hpp).
//
// Semantics:
//   * Loops iterate 0 .. trip-1 with step 1. A band executes its
//     statements, in order, at every point of its loop box, row-major
//     over the *current* (transformed) loop order. Bands execute in
//     sequence; arrays are the only state crossing bands.
//   * A non-reduction statement writes `A[addr] = rhs` with an affine
//     address that is injective over ALL the band's variables, so the
//     store order within the band cannot matter.
//   * A reduction statement computes `A[addr] = fold(op, init, rhs)`
//     over the loops absent from `addr` (its *reduction loops*). The
//     fold operator is restricted to commutative-associative opcodes
//     (wraparound int64), so any loop permutation a transform
//     produces folds to the same value.
//   * Statement right-hand sides read loop indices, constants, and
//     affine-addressed loads from input arrays or arrays written by
//     earlier statements.
//
// Transforms (frontend/transform.hpp) reorder execution; they never
// touch statement bodies. Statements are written against *original*
// loop variables (global ids, extents in `var_extent`), and each band
// carries a recovery map from its current loops back to those
// variables — the standard polyhedral split of domain vs. schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/op.hpp"
#include "support/status.hpp"

namespace cgra {

class ByteWriter;  // support/bytes.hpp

namespace frontend {

/// Affine form c0 + sum coeff[i] * x_i. The index space of `coeff`
/// depends on context: statement affines are over original variable
/// ids, band recovery affines are over loop ids.
struct Affine {
  std::int64_t c0 = 0;
  std::vector<std::int64_t> coeff;  ///< dense, trailing zeros implied

  std::int64_t Coeff(int i) const {
    return i >= 0 && i < static_cast<int>(coeff.size())
               ? coeff[static_cast<size_t>(i)]
               : 0;
  }
  void SetCoeff(int i, std::int64_t c);
  /// Indices with a nonzero coefficient.
  std::vector<int> Support() const;
  bool operator==(const Affine&) const = default;
};

/// Expression-tree node kinds for statement right-hand sides.
enum class ExprKind : std::uint8_t {
  kConst,   ///< imm
  kIndex,   ///< value of original loop variable `var`
  kLoad,    ///< array[addr], addr affine over original variables
  kUnary,   ///< op(a)
  kBinary,  ///< op(a, b)
};

/// One node of a statement's expression pool. Children (`a`, `b`)
/// index earlier nodes of the same pool, so the pool is a DAG in
/// construction order and trivially acyclic.
struct ExprNode {
  ExprKind kind = ExprKind::kConst;
  Opcode op = Opcode::kAdd;  ///< kUnary / kBinary opcode
  std::int64_t imm = 0;      ///< kConst payload
  int var = -1;              ///< kIndex: original variable id
  int array = -1;            ///< kLoad: array id
  Affine addr;               ///< kLoad: address over original variables
  int a = -1;                ///< first child
  int b = -1;                ///< second child (kBinary)
};

/// One statement: `store_array[store_addr] = rhs` or, when
/// `is_reduction`, `store_array[store_addr] = fold(reduction_op,
/// reduction_init, rhs over the loops absent from store_addr)`.
struct Statement {
  std::vector<ExprNode> nodes;
  int root = -1;
  int store_array = -1;
  Affine store_addr;  ///< over original variables; injective on support
  bool is_reduction = false;
  Opcode reduction_op = Opcode::kAdd;
  std::int64_t reduction_init = 0;
};

/// One loop of a band. `id` is stable under transforms and is the
/// coefficient index recovery affines use; position in Band::loops is
/// the (mutable) schedule order, outermost first.
struct Loop {
  int id = -1;
  std::int64_t trip = 1;
};

/// A perfect nest of loops plus the statements executed at each point.
struct Band {
  std::vector<Loop> loops;  ///< current order, outermost first
  /// recover[v] = value of original variable v as an affine over loop
  /// ids (c0 always 0). Empty coeff support = variable foreign to this
  /// band. INVARIANT: each loop id feeds exactly one variable.
  std::vector<Affine> recover;
  std::vector<Statement> stmts;
  /// Innermost unroll factor applied at lowering through cf/unroll's
  /// UnrollKernel (1 = none).
  int unroll = 1;

  /// Variables this band recovers (ids with nonzero recover support).
  std::vector<int> Vars() const;
  /// Loop ids feeding variable v, in loop order.
  std::vector<int> LoopsOf(int v) const;
  std::int64_t DomainSize() const;
};

/// Array declaration. Input arrays are read-only workload data; every
/// non-input array is written by exactly one statement (its owner).
struct ArrayDecl {
  std::string name;
  int size = 0;
  bool is_input = false;
  std::vector<std::int64_t> init;  ///< initial contents, `size` long
};

/// Reduction operators the IR admits: commutative + associative on
/// wraparound int64, so transformed loop orders fold identically.
bool IsReductionOpcode(Opcode op);

/// Largest band domain (product of trips) Verify accepts; keeps
/// lowered kernels simulable in fuzzing time budgets.
inline constexpr std::int64_t kMaxDomainSize = 1 << 16;

struct NestProgram {
  std::vector<ArrayDecl> arrays;
  std::vector<Band> bands;
  int num_vars = 0;                      ///< original variable count
  std::vector<std::int64_t> var_extent;  ///< original trip per variable

  /// Structural + legality checks (structured kInvalidArgument):
  /// positive trips (a zero-trip loop is rejected, not asserted),
  /// bounded domains, well-formed expression pools, loads restricted
  /// to input arrays / earlier-band arrays / exact-address forwarding
  /// within the band, injective store addresses, reduction operators
  /// commutative-associative, and — so lowering's carried accumulator
  /// is always contiguous — every reduction's address loops scheduled
  /// outside its reduction loops (the S-before-R prefix condition).
  Status Verify() const;

  /// Canonical byte encoding of every semantic field (names excluded),
  /// versioned; substrate of Digest().
  void AppendCanonicalBytes(ByteWriter& w) const;

  /// Stable 16-hex digest (generator-determinism tests, repro
  /// manifests, corpus dedup).
  std::string Digest() const;

  /// Pseudo-C rendering for logs and repro manifests.
  std::string ToString() const;
};

/// Result of direct nest-level evaluation.
struct NestEvalResult {
  /// Final contents of every array.
  std::vector<std::vector<std::int64_t>> arrays;
  /// Array state after each band (after_band[b] = state once bands
  /// 0..b have run); the per-band oracle the fuzzer compares lowered
  /// kernels against.
  std::vector<std::vector<std::vector<std::int64_t>>> after_band;
};

/// The nest-level oracle: executes `program` directly, without any
/// lowering. Verifies first; evaluation itself cannot fault after a
/// successful Verify (addresses are range-checked statically), but
/// out-of-range accesses are still guarded and reported as kInternal.
Result<NestEvalResult> EvaluateProgram(const NestProgram& program);

}  // namespace frontend
}  // namespace cgra
