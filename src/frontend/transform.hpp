// Schedule transforms over NestPrograms: tile, interchange, fuse,
// unroll. Each transform rewrites *where* statements execute (loop
// structure, recovery affines, band boundaries) and never touches
// statement bodies, so semantic preservation reduces to the legality
// rules NestProgram::Verify enforces — every transform re-verifies its
// result and returns a structured error (never a crash) when the
// schedule it would produce is illegal. This mirrors the polyhedral
// split the MLIR CGRA flows use (PAPERS.md): statements live in the
// original iteration domain, transforms only edit the schedule.
#pragma once

#include <string>
#include <vector>

#include "frontend/nest.hpp"

namespace cgra::frontend {

/// One schedule edit. Field use by kind:
///   kTile        band, a = loop id, factor = tile size (must divide
///                the loop's trip). Splits the loop into
///                outer (trip/factor) x inner (factor) at its position.
///   kInterchange band, a / b = loop *positions* in the current order.
///   kFuse        band = first of two adjacent bands; merges band and
///                band+1 when trips match positionally, both are
///                untiled (identity recovery) and un-unrolled, and the
///                merged band passes Verify (exact-address forwarding).
///   kUnroll      band, factor = innermost unroll applied at lowering;
///                must divide the band's domain size.
struct TransformStep {
  enum class Kind : std::uint8_t { kTile, kInterchange, kFuse, kUnroll };
  Kind kind = Kind::kTile;
  int band = 0;
  int a = 0;
  int b = 0;
  std::int64_t factor = 1;

  std::string ToString() const;
};

/// Apply one step. On success the result passed Verify; on failure the
/// input is untouched and the error says why the schedule is illegal.
Result<NestProgram> ApplyTransform(const NestProgram& program,
                                   const TransformStep& step);

/// Apply steps in order. `applied`, when non-null, receives the index
/// of every step that succeeded; failing steps are skipped (the
/// shrinker relies on this: dropping a prefix step must not invalidate
/// the whole case).
Result<NestProgram> ApplyTransforms(const NestProgram& program,
                                    const std::vector<TransformStep>& steps,
                                    std::vector<int>* applied = nullptr);

}  // namespace cgra::frontend
