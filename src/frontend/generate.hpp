// Seeded random NestProgram generator: the fuzzer's kernel supply.
//
// Deterministic per Rng seed (same seed => same program => same
// Digest(), asserted by tests), legal by construction (the result
// always passes NestProgram::Verify — generation is restricted to the
// shapes Verify admits: row-major injective stores, prefix-scheduled
// reductions, forwarding loads with exactly the producer's address),
// and size-bounded by knobs so CI smoke runs stay cheap while nightly
// runs push mappers with deeper nests and fatter expressions.
#pragma once

#include "frontend/nest.hpp"
#include "frontend/transform.hpp"
#include "support/rng.hpp"

namespace cgra::frontend {

struct GeneratorOptions {
  int max_bands = 2;        ///< bands per program (>= 1)
  int max_depth = 2;        ///< loops per band (>= 1)
  std::int64_t max_trip = 6;    ///< per-loop trip in [1, max_trip]
  std::int64_t max_domain = 256;  ///< cap on a band's iteration count
  int max_stmts = 2;        ///< statements per band (>= 1)
  int max_expr_ops = 4;     ///< interior (unary/binary) nodes per rhs
  int max_arrays = 4;       ///< cap on generated input arrays
  double reduction_prob = 0.45;
  double forward_prob = 0.3;  ///< same-band store-to-load forwarding
  std::int64_t max_value = 64;  ///< |array init| and |constants| bound
  int max_transforms = 3;

  /// CI shape presets. Small: smoke-sized kernels every PR maps in
  /// milliseconds. Medium: the nightly default. Large: deep nests and
  /// fat bodies for the extended nightly sweep.
  static GeneratorOptions Small();
  static GeneratorOptions Medium();
  static GeneratorOptions Large();
};

/// A generated fuzz case: the untransformed program plus the schedule
/// edits to apply to it (every step is applicable in sequence at
/// generation time; the shrinker may later drop some).
struct GeneratedCase {
  NestProgram program;
  std::vector<TransformStep> transforms;
};

/// Generates a legal program. Postcondition: Verify().ok().
NestProgram GenerateProgram(Rng& rng, const GeneratorOptions& options);

/// Generates transforms applicable to `program` in order.
std::vector<TransformStep> GenerateTransforms(Rng& rng,
                                              const NestProgram& program,
                                              const GeneratorOptions& options);

/// Program + transforms in one call.
GeneratedCase GenerateCase(Rng& rng, const GeneratorOptions& options);

}  // namespace cgra::frontend
